//! Batch-at-a-time columnar execution of [`CompiledPlan`]s.
//!
//! The row-at-a-time plan runner ([`crate::plan::Runner`]) clones every
//! table row on scan, materializes every join output row, and evaluates
//! expressions one row at a time. This module executes the *same* compiled
//! IR over the columnar table mirrors built by [`crate::catalog::Table::
//! columnar`]: scans are refcount bumps, joins carry row ids instead of
//! cloned rows, predicates evaluate [`CExpr`] kernels over column slices
//! into selection vectors, and rows are materialized only at final
//! projection.
//!
//! # Equivalence contract
//!
//! The vectorized path promises **byte-identical** behavior to the
//! row-at-a-time runner: the same `ResultSet`s, the same `EngineError`s
//! (including which error surfaces first), and the same
//! [`ExecLimits`](crate::ExecLimits) accounting — a finite budget trips at
//! the identical logical row. Two mechanisms make this cheap to guarantee:
//!
//! 1. **Pure-then-commit evaluation.** Vectorized expression evaluation is
//!    side-effect free: no meter charges, no telemetry, no subquery runs.
//!    Any node that *could* diverge — a subquery, a frozen plan-time error,
//!    or any per-row kernel error (overflow, type error) — aborts the
//!    vector attempt with [`Unvec`], and the affected scope is re-run
//!    through the scalar runner, which **is** the oracle semantics. Because
//!    vector evaluation is unmasked (it evaluates both `AND`/`OR` arms,
//!    every `CASE` branch, every `IN` list item), it evaluates a superset
//!    of what the short-circuiting scalar path evaluates, so every scalar
//!    error is seen as a vector abort — spurious aborts merely cost a
//!    scalar replay, never a wrong answer.
//! 2. **Identical charge sequences.** Bulk charges (scan, filter, group)
//!    happen at the same sequence points as the row path; per-row charges
//!    (hash-join probe) run in the same row order. Fallbacks are decided
//!    *before* the first charge of the affected scope, so a delegated scope
//!    replays the row path's exact charge/error interleaving.
//!
//! The nested-loop interpreter ([`crate::execute_with`]) and the row plan
//! runner remain available (`ExecOptions { vectorized: false, .. }`) as
//! differential-testing oracles; `tests/vector_equivalence.rs` fuzzes the
//! three against each other.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use snails_obs::Metric as Obs;
use snails_sql::{BinOp, JoinKind, UnionKind};

use crate::batch::{BatchPool, Bitmap, ColData, ColumnSet, Dict};
use crate::catalog::Database;
use crate::error::EngineError;
use crate::exec::{
    adaptive_batch_size, bool_value, eval_binary, eval_unary, finish_aggregate, like_match,
    record_statement, scalar_fn, truth, ExecOptions,
};
use crate::plan::{
    AggArg, CArg, CExpr, CItem, CJoin, COrder, CSelect, CSource, CUnit, CompiledPlan, ExprId,
    Frame, GExpr, Runner,
};
use crate::result::ResultSet;
use crate::value::{HashKey, Value};

/// Row-id sentinel for the NULL-padded side of an outer join.
pub(crate) const NONE_RID: u32 = u32::MAX;

/// Execute `plan` through the vectorized engine. Entry point for
/// [`CompiledPlan::execute`] when `opts.vectorized` is set.
pub(crate) fn execute_plan(
    plan: &CompiledPlan,
    db: &Database,
    opts: ExecOptions,
) -> Result<ResultSet, EngineError> {
    let runner = Runner::new(db, opts);
    let result = run_select(&runner, &plan.root);
    record_statement(&runner.meter, &result);
    result
}

// ---------------------------------------------------------------------------
// Relations: column sources + row-id permutations
// ---------------------------------------------------------------------------

/// A relation in late-materialized form: one or more columnar sources plus,
/// per source, a row-id vector mapping each logical row to a physical row of
/// that source (`NONE_RID` ≙ the all-NULL pad of an outer join). Joins and
/// filters permute row ids; values are gathered on demand.
pub(crate) struct Rel {
    pub(crate) srcs: Vec<Arc<ColumnSet>>,
    /// `rowids[s][i]` = physical row of source `s` backing logical row `i`.
    pub(crate) rowids: Vec<Vec<u32>>,
    pub(crate) len: usize,
    /// Combined-row column `c` lives at `col_map[c] = (src, local column)`.
    pub(crate) col_map: Vec<(u32, u32)>,
    pub(crate) width: usize,
}

impl Rel {
    /// Wrap one columnar source 1:1 (a base-table scan).
    pub(crate) fn from_set(cols: Arc<ColumnSet>) -> Rel {
        let len = cols.len;
        let width = cols.width();
        Rel {
            srcs: vec![cols],
            rowids: vec![(0..len as u32).collect()],
            len,
            col_map: (0..width).map(|c| (0u32, c as u32)).collect(),
            width,
        }
    }

    /// [`Rel::from_set`] with the identity row-id vector drawn from `pool`.
    fn from_set_pooled(cols: Arc<ColumnSet>, pool: &BatchPool) -> Rel {
        let len = cols.len;
        let width = cols.width();
        let mut ids = pool.take_u32();
        ids.extend(0..len as u32);
        Rel {
            srcs: vec![cols],
            rowids: vec![ids],
            len,
            col_map: (0..width).map(|c| (0u32, c as u32)).collect(),
            width,
        }
    }

    /// Columnarize materialized rows (derived tables, join fallbacks).
    fn from_rows(width: usize, rows: &[Vec<Value>]) -> Rel {
        Rel::from_set(Arc::new(ColumnSet::from_rows(width, rows)))
    }

    /// The zero-width single-row relation (`SELECT` with no `FROM`).
    fn unit() -> Rel {
        Rel { srcs: Vec::new(), rowids: Vec::new(), len: 1, col_map: Vec::new(), width: 0 }
    }

    /// Keep only the logical rows in `keep`, in order. The displaced
    /// row-id vectors recycle through `pool`.
    pub(crate) fn keep(self, keep: &[u32], pool: &BatchPool) -> Rel {
        let rowids = self
            .rowids
            .iter()
            .map(|ids| {
                let mut out = pool.take_u32();
                out.extend(keep.iter().map(|&i| ids[i as usize]));
                out
            })
            .collect();
        for ids in self.rowids {
            pool.put_u32(ids);
        }
        Rel { srcs: self.srcs, rowids, len: keep.len(), col_map: self.col_map, width: self.width }
    }

    /// Return the row-id vectors to `pool` once the relation is dead.
    pub(crate) fn recycle(self, pool: &BatchPool) {
        for ids in self.rowids {
            pool.put_u32(ids);
        }
    }

    /// Reconstruct logical row `i` as the row path's combined row.
    pub(crate) fn materialize_row(&self, i: usize) -> Vec<Value> {
        self.col_map
            .iter()
            .map(|&(s, c)| {
                let rid = self.rowids[s as usize][i];
                if rid == NONE_RID {
                    Value::Null
                } else {
                    self.srcs[s as usize].cols[c as usize].value(rid as usize)
                }
            })
            .collect()
    }

    /// Reconstruct every logical row (fallback to the scalar runner).
    pub(crate) fn materialize_all(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.materialize_row(i)).collect()
    }

    /// Reconstruct the selected logical rows, in selection order (fused
    /// pipelines falling back to the scalar runner mid-pipeline).
    pub(crate) fn materialize_sel(&self, rows: &[u32]) -> Vec<Vec<Value>> {
        rows.iter().map(|&i| self.materialize_row(i as usize)).collect()
    }

    /// Gather combined-row column `col` at the selected logical rows into a
    /// typed vector, drawing output buffers from `pool`.
    pub(crate) fn gather(&self, col: usize, sel: &[u32], pool: &BatchPool) -> VCol {
        let (s, c) = self.col_map[col];
        let ids = &self.rowids[s as usize];
        match &self.srcs[s as usize].cols[c as usize] {
            ColData::I64 { vals, valid } => {
                let mut out = pool.take_i64();
                let mut v = pool.take_bitmap();
                for &i in sel {
                    let rid = ids[i as usize];
                    if rid != NONE_RID && valid.get(rid as usize) {
                        out.push(vals[rid as usize]);
                        v.push(true);
                    } else {
                        out.push(0);
                        v.push(false);
                    }
                }
                VCol::I64 { vals: out, valid: v }
            }
            ColData::F64 { vals, valid } => {
                let mut out = pool.take_f64();
                let mut v = pool.take_bitmap();
                for &i in sel {
                    let rid = ids[i as usize];
                    if rid != NONE_RID && valid.get(rid as usize) {
                        out.push(vals[rid as usize]);
                        v.push(true);
                    } else {
                        out.push(0.0);
                        v.push(false);
                    }
                }
                VCol::F64 { vals: out, valid: v }
            }
            ColData::Str { codes, valid, dict } => {
                let mut out = pool.take_u32();
                let mut v = pool.take_bitmap();
                for &i in sel {
                    let rid = ids[i as usize];
                    if rid != NONE_RID && valid.get(rid as usize) {
                        out.push(codes[rid as usize]);
                        v.push(true);
                    } else {
                        out.push(0);
                        v.push(false);
                    }
                }
                VCol::Str { codes: out, valid: v, dict: Arc::clone(dict) }
            }
            ColData::Mixed { vals } => {
                let mut out = pool.take_vals();
                out.extend(sel.iter().map(|&i| {
                    let rid = ids[i as usize];
                    if rid == NONE_RID {
                        Value::Null
                    } else {
                        vals[rid as usize].clone()
                    }
                }));
                VCol::Vals(out)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized values
// ---------------------------------------------------------------------------

/// An evaluated expression over a selection: one entry per selected row
/// (`Const` broadcasts). Booleans are `I64` 0/1 with NULL as invalid,
/// matching [`bool_value`].
pub(crate) enum VCol {
    Const(Value),
    I64 { vals: Vec<i64>, valid: Bitmap },
    F64 { vals: Vec<f64>, valid: Bitmap },
    Str { codes: Vec<u32>, valid: Bitmap, dict: Arc<Dict> },
    Vals(Vec<Value>),
}

/// Vector evaluation aborted: the expression needs the scalar runner
/// (subquery, frozen error, or a row-level kernel error). Purely a control
/// signal — the scalar replay recomputes and surfaces the exact error.
pub(crate) struct Unvec;

pub(crate) type VRes = Result<VCol, Unvec>;

impl VCol {
    /// Reconstruct the value at selection position `i`.
    pub(crate) fn value_at(&self, i: usize) -> Value {
        match self {
            VCol::Const(v) => v.clone(),
            VCol::I64 { vals, valid } => {
                if valid.get(i) {
                    Value::Int(vals[i])
                } else {
                    Value::Null
                }
            }
            VCol::F64 { vals, valid } => {
                if valid.get(i) {
                    Value::Float(vals[i])
                } else {
                    Value::Null
                }
            }
            VCol::Str { codes, valid, dict } => {
                if valid.get(i) {
                    Value::Str(Arc::clone(&dict.strs[codes[i] as usize]))
                } else {
                    Value::Null
                }
            }
            VCol::Vals(vals) => vals[i].clone(),
        }
    }

    /// [`truth`] at selection position `i`, without materializing.
    pub(crate) fn truth_at(&self, i: usize) -> Option<bool> {
        match self {
            VCol::Const(v) => truth(v),
            VCol::I64 { vals, valid } => valid.get(i).then(|| vals[i] != 0),
            VCol::F64 { vals, valid } => valid.get(i).then(|| vals[i] != 0.0),
            VCol::Str { valid, .. } => valid.get(i).then_some(true),
            VCol::Vals(vals) => truth(&vals[i]),
        }
    }

    /// Return the column's buffers to `pool` once the column is dead.
    /// Missing a call site is only a lost reuse, never a bug.
    pub(crate) fn recycle(self, pool: &BatchPool) {
        match self {
            VCol::Const(_) => {}
            VCol::I64 { vals, valid } => {
                pool.put_i64(vals);
                pool.put_bitmap(valid);
            }
            VCol::F64 { vals, valid } => {
                pool.put_f64(vals);
                pool.put_bitmap(valid);
            }
            VCol::Str { codes, valid, .. } => {
                pool.put_u32(codes);
                pool.put_bitmap(valid);
            }
            VCol::Vals(vals) => pool.put_vals(vals),
        }
    }
}

/// Build a boolean column from per-row three-valued results, with buffers
/// drawn from `pool`.
fn bool_col(pool: &BatchPool, bits: impl Iterator<Item = Option<bool>>) -> VCol {
    let mut vals = pool.take_i64();
    let mut valid = pool.take_bitmap();
    for b in bits {
        match b {
            Some(x) => {
                vals.push(i64::from(x));
                valid.push(true);
            }
            None => {
                vals.push(0);
                valid.push(false);
            }
        }
    }
    VCol::I64 { vals, valid }
}

// ---------------------------------------------------------------------------
// Comparison cells (allocation-free sql_cmp over typed columns)
// ---------------------------------------------------------------------------

/// A borrowed scalar view for comparisons. `LowStr` is already lowercase
/// (dictionary `lower`, or a pre-lowered constant); `RawStr` still needs
/// lowercasing (values out of `Mixed` columns).
enum Cell<'a> {
    Null,
    Int(i64),
    Float(f64),
    LowStr(&'a str),
    RawStr(&'a str),
}

impl<'a> Cell<'a> {
    fn num(&self) -> Option<f64> {
        match self {
            Cell::Int(n) => Some(*n as f64),
            Cell::Float(x) => Some(*x),
            _ => None,
        }
    }
}

/// Mirror of [`Value::sql_cmp`] over cells: NULL propagates, Int×Int exact,
/// text case-insensitive, mixed numeric via f64, text×number incomparable.
fn cmp_cells(a: &Cell<'_>, b: &Cell<'_>) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Cell::Null, _) | (_, Cell::Null) => None,
        (Cell::Int(x), Cell::Int(y)) => Some(x.cmp(y)),
        (Cell::LowStr(x), Cell::LowStr(y)) => Some(x.cmp(y)),
        (Cell::LowStr(_) | Cell::RawStr(_), Cell::LowStr(_) | Cell::RawStr(_)) => {
            let lower = |c: &Cell<'_>| match c {
                Cell::LowStr(s) => (*s).to_owned(),
                Cell::RawStr(s) => s.to_ascii_lowercase(),
                _ => unreachable!(),
            };
            Some(lower(a).cmp(&lower(b)))
        }
        _ => a.num()?.partial_cmp(&b.num()?),
    }
}

/// The cell at selection position `i`. `const_lower` carries the pre-lowered
/// form of a constant string column, so broadcast constants compare without
/// per-row allocation.
fn cell_at<'a>(col: &'a VCol, i: usize, const_lower: &'a Option<String>) -> Cell<'a> {
    match col {
        VCol::Const(v) => match v {
            Value::Null => Cell::Null,
            Value::Int(n) => Cell::Int(*n),
            Value::Float(x) => Cell::Float(*x),
            Value::Str(_) => {
                Cell::LowStr(const_lower.as_deref().expect("const string pre-lowered"))
            }
        },
        VCol::I64 { vals, valid } => {
            if valid.get(i) {
                Cell::Int(vals[i])
            } else {
                Cell::Null
            }
        }
        VCol::F64 { vals, valid } => {
            if valid.get(i) {
                Cell::Float(vals[i])
            } else {
                Cell::Null
            }
        }
        VCol::Str { codes, valid, dict } => {
            if valid.get(i) {
                Cell::LowStr(&dict.lower[codes[i] as usize])
            } else {
                Cell::Null
            }
        }
        VCol::Vals(vals) => match &vals[i] {
            Value::Null => Cell::Null,
            Value::Int(n) => Cell::Int(*n),
            Value::Float(x) => Cell::Float(*x),
            Value::Str(s) => Cell::RawStr(s),
        },
    }
}

/// Pre-lowered form of a constant string column, computed once per kernel.
fn const_lower(col: &VCol) -> Option<String> {
    match col {
        VCol::Const(Value::Str(s)) => Some(s.to_ascii_lowercase()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Hash/group keys
// ---------------------------------------------------------------------------

/// One key component with [`HashKey`]'s equivalence classes: numerics
/// unified on normalized f64 bits, text lowercased (a refcount bump out of
/// the dictionary's precomputed `lower`, not a fresh `String`).
#[derive(Debug, PartialEq, Eq, Hash, Clone)]
pub(crate) enum VKey {
    Null,
    Num(u64),
    Str(Arc<str>),
}

impl VKey {
    pub(crate) fn num(x: f64) -> VKey {
        let x = if x == 0.0 { 0.0 } else { x };
        VKey::Num(x.to_bits())
    }

    /// Unmatchable as a *join* key (NULL or NaN), mirroring the row hash
    /// join's `side_key`. Group keys have no such rule — NULL groups with
    /// itself and NaN groups by bit pattern, as in [`Value::hash_key`].
    pub(crate) fn unmatchable(&self) -> bool {
        match self {
            VKey::Null => true,
            VKey::Num(bits) => f64::from_bits(*bits).is_nan(),
            VKey::Str(_) => false,
        }
    }
}

/// Multiplicative mixer for pre-hashed `u64` keys (single-column numeric
/// join/group keys). SipHash dominates the per-row cost of the build,
/// probe, and group loops at millions of rows; key *bits* already encode
/// the full equivalence class ([`VKey::num`]), so a strong mix of the bits
/// is enough. Lookup order never depends on hasher output — emission and
/// group order come from build/insertion order — so this cannot perturb
/// determinism.
#[derive(Default)]
struct U64Hasher(u64);

impl std::hash::Hasher for U64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut x = self.0 ^ n;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        x ^= x >> 32;
        self.0 = x;
    }
}

type FastMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<U64Hasher>>;

/// Join-unmatchable sentinel for pre-hashed numeric keys. `u64::MAX` is a
/// NaN bit pattern, which [`VKey::num`] can only produce for NaN floats —
/// and NaN is itself unmatchable — so the sentinel never collides with a
/// live key.
const DEAD_KEY: u64 = u64::MAX;

/// The key component at selection position `i`.
pub(crate) fn key_at(col: &VCol, i: usize) -> VKey {
    match col {
        VCol::Const(v) => match v {
            Value::Null => VKey::Null,
            Value::Int(n) => VKey::num(*n as f64),
            Value::Float(x) => VKey::num(*x),
            Value::Str(s) => VKey::Str(Arc::from(s.to_ascii_lowercase())),
        },
        VCol::I64 { vals, valid } => {
            if valid.get(i) {
                VKey::num(vals[i] as f64)
            } else {
                VKey::Null
            }
        }
        VCol::F64 { vals, valid } => {
            if valid.get(i) {
                VKey::num(vals[i])
            } else {
                VKey::Null
            }
        }
        VCol::Str { codes, valid, dict } => {
            if valid.get(i) {
                VKey::Str(Arc::clone(&dict.lower[codes[i] as usize]))
            } else {
                VKey::Null
            }
        }
        VCol::Vals(vals) => match &vals[i] {
            Value::Null => VKey::Null,
            Value::Int(n) => VKey::num(*n as f64),
            Value::Float(x) => VKey::num(*x),
            Value::Str(s) => VKey::Str(Arc::from(s.to_ascii_lowercase())),
        },
    }
}

/// A full join key: the single-component case skips the inner `Vec`.
#[derive(PartialEq, Eq, Hash)]
pub(crate) enum JoinKey {
    One(VKey),
    Many(Vec<VKey>),
}

// ---------------------------------------------------------------------------
// Scalar-only analysis
// ---------------------------------------------------------------------------

/// Per-node "must run through the scalar runner" flags for a block's arena:
/// true when the subtree contains a subquery, a frozen [`CExpr::Err`], an
/// outer-frame slot, or a construct that always errors. One forward pass —
/// the arena is post-order, so children precede parents.
pub(crate) fn scalar_flags(sel: &CSelect) -> Vec<bool> {
    let mut f = Vec::with_capacity(sel.arena.len());
    for node in &sel.arena {
        let flag = match node {
            CExpr::Err(_)
            | CExpr::Subquery { .. }
            | CExpr::InSubquery { .. }
            | CExpr::Exists { .. } => true,
            CExpr::Slot { up, .. } => *up > 0,
            CExpr::Const(_) => false,
            CExpr::Unary { expr, .. } | CExpr::IsNull { expr, .. } | CExpr::Like { expr, .. } => {
                f[*expr]
            }
            CExpr::And { left, right }
            | CExpr::Or { left, right }
            | CExpr::Binary { left, right, .. } => f[*left] || f[*right],
            CExpr::Func { args, .. } => args.iter().any(|a| match a {
                CArg::Wildcard => true,
                CArg::Expr(id) => f[*id],
            }),
            CExpr::InList { expr, list, .. } => f[*expr] || list.iter().any(|&i| f[i]),
            CExpr::Between { expr, low, high, .. } => f[*expr] || f[*low] || f[*high],
            CExpr::Case { operand, branches, else_expr } => {
                operand.map(|o| f[o]).unwrap_or(false)
                    || branches.iter().any(|&(w, t)| f[w] || f[t])
                    || else_expr.map(|e| f[e]).unwrap_or(false)
            }
        };
        f.push(flag);
    }
    f
}

/// True when a unit expression cannot be vectorized.
fn unit_scalar(u: &CUnit, flags: &[bool]) -> bool {
    match u {
        CUnit::Row(id) => flags[*id],
        CUnit::Grouped(g) => gexpr_scalar(g, flags),
    }
}

fn gexpr_scalar(g: &GExpr, flags: &[bool]) -> bool {
    match g {
        GExpr::Agg { arg, .. } => match arg {
            AggArg::CountStar => false,
            AggArg::Expr(id) => flags[*id],
            AggArg::StarInvalid | AggArg::Missing => true,
        },
        GExpr::And(l, r) | GExpr::Or(l, r) => gexpr_scalar(l, flags) || gexpr_scalar(r, flags),
        GExpr::Binary { left, right, .. } => {
            gexpr_scalar(left, flags) || gexpr_scalar(right, flags)
        }
        GExpr::Unary { expr, .. } => gexpr_scalar(expr, flags),
        GExpr::Row(id) => flags[*id],
    }
}

// ---------------------------------------------------------------------------
// Vectorized expression evaluation (pure: no charges, no subqueries)
// ---------------------------------------------------------------------------

/// Evaluator for one block's arena over one relation. All evaluation is
/// unmasked and side-effect free; see the module docs for why that is
/// sufficient for exact equivalence. Scratch buffers come from (and
/// return to) the execution's [`BatchPool`]; rows routed through
/// dictionary-code kernels accumulate in `dict_rows` for the caller to
/// flush into telemetry at its commit point (evaluation itself must stay
/// observation-free).
pub(crate) struct Ev<'a> {
    pub(crate) sel: &'a CSelect,
    pub(crate) rel: &'a Rel,
    pub(crate) flags: &'a [bool],
    pub(crate) pool: &'a BatchPool,
    pub(crate) dict_rows: std::cell::Cell<u64>,
}

impl<'a> Ev<'a> {
    pub(crate) fn new(sel: &'a CSelect, rel: &'a Rel, flags: &'a [bool], pool: &'a BatchPool) -> Ev<'a> {
        Ev { sel, rel, flags, pool, dict_rows: std::cell::Cell::new(0) }
    }

    /// Count `n` rows processed by a dictionary-code kernel.
    fn count_dict(&self, n: usize) {
        self.dict_rows.set(self.dict_rows.get() + n as u64);
    }

    /// Evaluate node `id` at the selected logical rows.
    pub(crate) fn eval(&self, id: ExprId, rows: &[u32]) -> VRes {
        if self.flags[id] {
            return Err(Unvec);
        }
        match &self.sel.arena[id] {
            CExpr::Const(v) => Ok(VCol::Const(v.clone())),
            CExpr::Slot { idx, .. } => Ok(self.rel.gather(*idx, rows, self.pool)),
            CExpr::Err(_)
            | CExpr::Subquery { .. }
            | CExpr::InSubquery { .. }
            | CExpr::Exists { .. } => Err(Unvec),
            CExpr::Unary { op, expr } => {
                let e = self.eval(*expr, rows)?;
                match op {
                    snails_sql::UnaryOp::Not => {
                        let out = bool_col(
                            self.pool,
                            (0..rows.len()).map(|i| e.truth_at(i).map(|b| !b)),
                        );
                        e.recycle(self.pool);
                        Ok(out)
                    }
                    snails_sql::UnaryOp::Neg => {
                        let mut out = self.pool.take_vals();
                        for i in 0..rows.len() {
                            match eval_unary(*op, &e.value_at(i)) {
                                Ok(v) => out.push(v),
                                Err(_) => {
                                    self.pool.put_vals(out);
                                    e.recycle(self.pool);
                                    return Err(Unvec);
                                }
                            }
                        }
                        e.recycle(self.pool);
                        Ok(VCol::Vals(out))
                    }
                }
            }
            CExpr::And { left, right } => {
                let l = self.eval(*left, rows)?;
                let r = self.eval(*right, rows)?;
                let out = bool_col(
                    self.pool,
                    (0..rows.len()).map(|i| match (l.truth_at(i), r.truth_at(i)) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    }),
                );
                l.recycle(self.pool);
                r.recycle(self.pool);
                Ok(out)
            }
            CExpr::Or { left, right } => {
                let l = self.eval(*left, rows)?;
                let r = self.eval(*right, rows)?;
                let out = bool_col(
                    self.pool,
                    (0..rows.len()).map(|i| match (l.truth_at(i), r.truth_at(i)) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    }),
                );
                l.recycle(self.pool);
                r.recycle(self.pool);
                Ok(out)
            }
            CExpr::Binary { left, op, right } => {
                let l = self.eval(*left, rows)?;
                let r = self.eval(*right, rows)?;
                if op.is_comparison() {
                    let out = self.compare(&l, *op, &r, rows.len());
                    l.recycle(self.pool);
                    r.recycle(self.pool);
                    Ok(out)
                } else {
                    let mut out = self.pool.take_vals();
                    for i in 0..rows.len() {
                        match eval_binary(&l.value_at(i), *op, &r.value_at(i)) {
                            Ok(v) => out.push(v),
                            Err(_) => {
                                self.pool.put_vals(out);
                                l.recycle(self.pool);
                                r.recycle(self.pool);
                                return Err(Unvec);
                            }
                        }
                    }
                    l.recycle(self.pool);
                    r.recycle(self.pool);
                    Ok(VCol::Vals(out))
                }
            }
            CExpr::Func { name, args } => {
                let mut cols = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        CArg::Wildcard => return Err(Unvec),
                        CArg::Expr(id) => cols.push(self.eval(*id, rows)?),
                    }
                }
                let mut out = self.pool.take_vals();
                let mut vals = Vec::with_capacity(cols.len());
                for i in 0..rows.len() {
                    vals.clear();
                    vals.extend(cols.iter().map(|c| c.value_at(i)));
                    match scalar_fn(name, &vals) {
                        Ok(v) => out.push(v),
                        Err(_) => {
                            self.pool.put_vals(out);
                            for c in cols {
                                c.recycle(self.pool);
                            }
                            return Err(Unvec);
                        }
                    }
                }
                for c in cols {
                    c.recycle(self.pool);
                }
                Ok(VCol::Vals(out))
            }
            CExpr::IsNull { expr, negated } => {
                let e = self.eval(*expr, rows)?;
                let out = bool_col(
                    self.pool,
                    (0..rows.len()).map(|i| {
                        let is_null = match &e {
                            VCol::Const(v) => v.is_null(),
                            VCol::I64 { valid, .. }
                            | VCol::F64 { valid, .. }
                            | VCol::Str { valid, .. } => !valid.get(i),
                            VCol::Vals(vals) => vals[i].is_null(),
                        };
                        Some(is_null != *negated)
                    }),
                );
                e.recycle(self.pool);
                Ok(out)
            }
            CExpr::InList { expr, list, negated } => {
                let v = self.eval(*expr, rows)?;
                let items: Vec<VCol> = match list
                    .iter()
                    .map(|&i| self.eval(i, rows))
                    .collect::<Result<_, _>>()
                {
                    Ok(items) => items,
                    Err(Unvec) => {
                        v.recycle(self.pool);
                        return Err(Unvec);
                    }
                };
                let out = self.in_list(&v, &items, *negated, rows.len());
                v.recycle(self.pool);
                for item in items {
                    item.recycle(self.pool);
                }
                Ok(out)
            }
            CExpr::Between { expr, low, high, negated } => {
                let v = self.eval(*expr, rows)?;
                let lo = match self.eval(*low, rows) {
                    Ok(c) => c,
                    Err(Unvec) => {
                        v.recycle(self.pool);
                        return Err(Unvec);
                    }
                };
                let hi = match self.eval(*high, rows) {
                    Ok(c) => c,
                    Err(Unvec) => {
                        v.recycle(self.pool);
                        lo.recycle(self.pool);
                        return Err(Unvec);
                    }
                };
                let (vl, lol, hil) = (const_lower(&v), const_lower(&lo), const_lower(&hi));
                let out = bool_col(
                    self.pool,
                    (0..rows.len()).map(|i| {
                        let c = cell_at(&v, i, &vl);
                        let ge = cmp_cells(&c, &cell_at(&lo, i, &lol))
                            .map(|o| o != std::cmp::Ordering::Less);
                        let le = cmp_cells(&c, &cell_at(&hi, i, &hil))
                            .map(|o| o != std::cmp::Ordering::Greater);
                        let b = match (ge, le) {
                            (Some(a), Some(b)) => Some(a && b),
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            _ => None,
                        };
                        b.map(|x| x != *negated)
                    }),
                );
                v.recycle(self.pool);
                lo.recycle(self.pool);
                hi.recycle(self.pool);
                Ok(out)
            }
            CExpr::Like { expr, pattern, negated } => {
                let e = self.eval(*expr, rows)?;
                let res = match &e {
                    VCol::Str { codes, valid, dict } => {
                        // Code-space kernel: each distinct string is tested
                        // once, against the precomputed lowercase form.
                        self.count_dict(rows.len());
                        let mut memo: Vec<Option<bool>> = vec![None; dict.len()];
                        Ok(bool_col(
                            self.pool,
                            (0..rows.len()).map(|i| {
                                if !valid.get(i) {
                                    return None;
                                }
                                let code = codes[i] as usize;
                                let m = *memo[code].get_or_insert_with(|| {
                                    like_match(&dict.lower[code], pattern)
                                });
                                Some(m != *negated)
                            }),
                        ))
                    }
                    VCol::Const(Value::Null) => Ok(VCol::Const(Value::Null)),
                    VCol::Const(Value::Str(s)) => {
                        let m = like_match(&s.to_ascii_lowercase(), pattern);
                        Ok(VCol::Const(bool_value(Some(m != *negated))))
                    }
                    VCol::Const(_) => Err(Unvec),
                    VCol::I64 { valid, .. } | VCol::F64 { valid, .. } => {
                        // Any valid row is a type error in the row path.
                        if (0..rows.len()).any(|i| valid.get(i)) {
                            Err(Unvec)
                        } else {
                            Ok(VCol::Const(Value::Null))
                        }
                    }
                    VCol::Vals(vals) => 'vals: {
                        let mut out = self.pool.take_vals();
                        for v in vals.iter().take(rows.len()) {
                            match v {
                                Value::Null => out.push(Value::Null),
                                Value::Str(s) => {
                                    let m = like_match(&s.to_ascii_lowercase(), pattern);
                                    out.push(bool_value(Some(m != *negated)));
                                }
                                _ => {
                                    self.pool.put_vals(out);
                                    break 'vals Err(Unvec);
                                }
                            }
                        }
                        Ok(VCol::Vals(out))
                    }
                };
                e.recycle(self.pool);
                res
            }
            CExpr::Case { operand, branches, else_expr } => {
                // On abort, children leak back to the pool lazily (a lost
                // reuse, never a bug) — CASE is cold enough not to warrant
                // per-child unwind plumbing.
                let op_col = match operand {
                    Some(o) => Some(self.eval(*o, rows)?),
                    None => None,
                };
                let mut whens = Vec::with_capacity(branches.len());
                let mut thens = Vec::with_capacity(branches.len());
                for &(w, t) in branches {
                    whens.push(self.eval(w, rows)?);
                    thens.push(self.eval(t, rows)?);
                }
                let else_col = match else_expr {
                    Some(e) => Some(self.eval(*e, rows)?),
                    None => None,
                };
                let opl = op_col.as_ref().and_then(const_lower);
                let wl: Vec<Option<String>> = whens.iter().map(const_lower).collect();
                let mut out = self.pool.take_vals();
                for i in 0..rows.len() {
                    let mut chosen: Option<Value> = None;
                    for (bi, w) in whens.iter().enumerate() {
                        let hit = match &op_col {
                            Some(oc) => {
                                cmp_cells(&cell_at(oc, i, &opl), &cell_at(w, i, &wl[bi]))
                                    == Some(std::cmp::Ordering::Equal)
                            }
                            None => w.truth_at(i) == Some(true),
                        };
                        if hit {
                            chosen = Some(thens[bi].value_at(i));
                            break;
                        }
                    }
                    out.push(chosen.unwrap_or_else(|| {
                        else_col.as_ref().map(|e| e.value_at(i)).unwrap_or(Value::Null)
                    }));
                }
                if let Some(c) = op_col {
                    c.recycle(self.pool);
                }
                for c in whens.into_iter().chain(thens) {
                    c.recycle(self.pool);
                }
                if let Some(c) = else_col {
                    c.recycle(self.pool);
                }
                Ok(VCol::Vals(out))
            }
        }
    }

    /// Vectorized three-valued comparison kernel. Typed fast paths cover
    /// the hot shapes — numeric column vs. numeric constant exactly as
    /// [`cmp_cells`] would order them, and dictionary strings vs. a string
    /// constant through a per-code ordering memo so each distinct string
    /// is compared once instead of once per row. Everything else goes
    /// through the generic cell loop.
    fn compare(&self, l: &VCol, op: BinOp, r: &VCol, n: usize) -> VCol {
        use std::cmp::Ordering;
        let test = |o: Ordering| match op {
            BinOp::Eq => o == Ordering::Equal,
            BinOp::NotEq => o != Ordering::Equal,
            BinOp::Lt => o == Ordering::Less,
            BinOp::LtEq => o != Ordering::Greater,
            BinOp::Gt => o == Ordering::Greater,
            BinOp::GtEq => o != Ordering::Less,
            _ => unreachable!("is_comparison"),
        };
        // Numeric column vs. numeric constant (either orientation).
        match (l, r) {
            (VCol::I64 { vals, valid }, VCol::Const(Value::Int(y))) => {
                return bool_col(
                    self.pool,
                    (0..n).map(|i| valid.get(i).then(|| test(vals[i].cmp(y)))),
                );
            }
            (VCol::Const(Value::Int(x)), VCol::I64 { vals, valid }) => {
                return bool_col(
                    self.pool,
                    (0..n).map(|i| valid.get(i).then(|| test(x.cmp(&vals[i])))),
                );
            }
            (VCol::I64 { vals, valid }, VCol::Const(Value::Float(y))) => {
                return bool_col(
                    self.pool,
                    (0..n).map(|i| {
                        if !valid.get(i) {
                            return None;
                        }
                        (vals[i] as f64).partial_cmp(y).map(test)
                    }),
                );
            }
            (VCol::Const(Value::Float(x)), VCol::I64 { vals, valid }) => {
                return bool_col(
                    self.pool,
                    (0..n).map(|i| {
                        if !valid.get(i) {
                            return None;
                        }
                        x.partial_cmp(&(vals[i] as f64)).map(test)
                    }),
                );
            }
            (VCol::F64 { vals, valid }, VCol::Const(c)) if c.as_f64().is_some() => {
                let y = c.as_f64().expect("numeric const");
                return bool_col(
                    self.pool,
                    (0..n).map(|i| {
                        if !valid.get(i) {
                            return None;
                        }
                        vals[i].partial_cmp(&y).map(test)
                    }),
                );
            }
            (VCol::Const(c), VCol::F64 { vals, valid }) if c.as_f64().is_some() => {
                let x = c.as_f64().expect("numeric const");
                return bool_col(
                    self.pool,
                    (0..n).map(|i| {
                        if !valid.get(i) {
                            return None;
                        }
                        x.partial_cmp(&vals[i]).map(test)
                    }),
                );
            }
            // Dictionary strings vs. a string constant: order each distinct
            // code against the pre-lowered constant once.
            (VCol::Str { codes, valid, dict }, VCol::Const(Value::Str(s)))
            | (VCol::Const(Value::Str(s)), VCol::Str { codes, valid, dict }) => {
                let flip = matches!(l, VCol::Const(_));
                let target = s.to_ascii_lowercase();
                self.count_dict(n);
                // -1/0/1 = Less/Equal/Greater of `code` vs. `target`;
                // 2 = not yet computed.
                let mut memo: Vec<i8> = vec![2; dict.len()];
                return bool_col(
                    self.pool,
                    (0..n).map(|i| {
                        if !valid.get(i) {
                            return None;
                        }
                        let code = codes[i] as usize;
                        if memo[code] == 2 {
                            memo[code] = match dict.lower[code].as_ref().cmp(target.as_str()) {
                                Ordering::Less => -1,
                                Ordering::Equal => 0,
                                Ordering::Greater => 1,
                            };
                        }
                        let o = match memo[code] {
                            -1 => Ordering::Less,
                            0 => Ordering::Equal,
                            _ => Ordering::Greater,
                        };
                        Some(test(if flip { o.reverse() } else { o }))
                    }),
                );
            }
            _ => {}
        }
        let (ll, rl) = (const_lower(l), const_lower(r));
        bool_col(
            self.pool,
            (0..n).map(|i| cmp_cells(&cell_at(l, i, &ll), &cell_at(r, i, &rl)).map(test)),
        )
    }

    /// Vectorized `IN (list)` kernel. When the probe is a dictionary
    /// string column and every list item is a constant, membership is
    /// memoized per dictionary code (the full three-valued logic — NULL
    /// items, incomparable numeric items — runs once per distinct string).
    fn in_list(&self, v: &VCol, items: &[VCol], negated: bool, n: usize) -> VCol {
        let il: Vec<Option<String>> = items.iter().map(const_lower).collect();
        if let VCol::Str { codes, valid, dict } = v {
            if items.iter().all(|it| matches!(it, VCol::Const(_))) {
                self.count_dict(n);
                // 0 = false, 1 = true, 2 = NULL result, 3 = not yet computed.
                let mut memo: Vec<i8> = vec![3; dict.len()];
                return bool_col(
                    self.pool,
                    (0..n).map(|i| {
                        if !valid.get(i) {
                            return None;
                        }
                        let code = codes[i] as usize;
                        if memo[code] == 3 {
                            let c = Cell::LowStr(&dict.lower[code]);
                            let mut saw_null = false;
                            let mut found = false;
                            for (item, lower) in items.iter().zip(&il) {
                                match cmp_cells(&c, &cell_at(item, 0, lower)) {
                                    Some(std::cmp::Ordering::Equal) => {
                                        found = true;
                                        break;
                                    }
                                    Some(_) => {}
                                    None => saw_null = true,
                                }
                            }
                            memo[code] = if found {
                                1
                            } else if saw_null {
                                2
                            } else {
                                0
                            };
                        }
                        match memo[code] {
                            2 => None,
                            m => Some((m == 1) != negated),
                        }
                    }),
                );
            }
        }
        let vl = const_lower(v);
        bool_col(
            self.pool,
            (0..n).map(|i| {
                let c = cell_at(v, i, &vl);
                let mut saw_null = matches!(c, Cell::Null);
                let mut found = false;
                for (item, lower) in items.iter().zip(&il) {
                    match cmp_cells(&c, &cell_at(item, i, lower)) {
                        Some(std::cmp::Ordering::Equal) => {
                            found = true;
                            break;
                        }
                        Some(_) => {}
                        None => saw_null = true,
                    }
                }
                let b = if found {
                    Some(true)
                } else if saw_null {
                    None
                } else {
                    Some(false)
                };
                b.map(|x| x != negated)
            }),
        )
    }
}

// ---------------------------------------------------------------------------
// Block execution
// ---------------------------------------------------------------------------

/// Depth-guarded vectorized execution of one block, mirroring
/// [`Runner::run_select`].
fn run_select(r: &Runner<'_>, sel: &CSelect) -> Result<ResultSet, EngineError> {
    r.meter.enter_block()?;
    let result = run_select_inner(r, sel);
    r.meter.exit_block();
    result
}

fn run_select_inner(r: &Runner<'_>, sel: &CSelect) -> Result<ResultSet, EngineError> {
    let batch = r.opts.batch_size.unwrap_or_else(|| adaptive_batch_size(sel.width)).max(1);
    let flags = scalar_flags(sel);

    // FROM and JOINs.
    let mut rel = match &sel.source {
        Some(src) => load_source(r, src, batch)?,
        None => Rel::unit(),
    };
    for join in &sel.joins {
        let right = load_source(r, &join.source, batch)?;
        rel = join_step(r, sel, rel, right, join, batch, &flags)?;
        snails_obs::observe(Obs::EngineOpJoinRows, rel.len as u64);
    }

    // WHERE → tail. With fusion on, the filter emits a selection vector
    // that feeds the tail directly — the intermediate filtered relation
    // (a full set of row-id vectors) is never materialized. With fusion
    // off, the filter materializes its output relation first (the
    // pre-fusion operator-at-a-time shape, kept as an A/B and test axis).
    let mut fused_sel: Option<Vec<u32>> = None;
    if let Some(pred) = sel.where_clause {
        if r.opts.fusion {
            fused_sel = Some(filter_sel(r, sel, &rel, pred, None, batch, &flags)?);
            snails_obs::add(Obs::EngineVecFusedPipelines, 1);
        } else {
            rel = filter(r, sel, rel, pred, batch, &flags)?;
        }
    }
    let result = tail(r, sel, &rel, fused_sel.as_deref(), &flags);
    if let Some(s) = fused_sel {
        r.pool.put_u32(s);
    }
    rel.recycle(&r.pool);
    let mut result = result?;

    // UNION [ALL] — mirror of the row path, recursing vectorized.
    if let Some((kind, rhs)) = &sel.union {
        let rhs_rs = run_select(r, rhs)?;
        if rhs_rs.column_count() != result.column_count() {
            return Err(EngineError::type_error(format!(
                "UNION arity mismatch: {} vs {} columns",
                result.column_count(),
                rhs_rs.column_count()
            )));
        }
        result.rows.extend(rhs_rs.rows);
        if *kind == UnionKind::Distinct {
            let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
            result.rows.retain(|row| seen.insert(row.iter().map(Value::hash_key).collect()));
        }
    }

    if let Some(budget) = r.opts.limits.max_output_rows {
        if result.rows.len() as u64 > budget {
            return Err(EngineError::resource_exhausted("output row budget", budget));
        }
    }

    Ok(result)
}

/// Load a `FROM`/`JOIN` source as a relation. Base tables are a refcount
/// bump of the cached columnar mirror — no row clone.
fn load_source(r: &Runner<'_>, src: &CSource, batch: usize) -> Result<Rel, EngineError> {
    match src {
        CSource::Table { name, .. } => {
            let t = r
                .db
                .table(name)
                .ok_or_else(|| EngineError::UnknownTable { name: name.clone() })?;
            let cols = t.columnar();
            r.meter.charge_steps(cols.len as u64)?;
            snails_obs::observe(Obs::EngineOpScanRows, cols.len as u64);
            let batches = cols.len.div_ceil(batch) as u64;
            snails_obs::add(Obs::EngineVecBatches, batches);
            snails_obs::add(Obs::EngineOpScanBatches, batches);
            for col in &cols.cols {
                if let ColData::Str { dict, .. } = col {
                    snails_obs::observe(Obs::EngineVecDictEntries, dict.len() as u64);
                }
            }
            Ok(Rel::from_set_pooled(cols, &r.pool))
        }
        CSource::Sub { plan, width } => {
            let rs = run_select(r, plan)?;
            snails_obs::observe(Obs::EngineOpScanRows, rs.rows.len() as u64);
            let batches = rs.rows.len().div_ceil(batch) as u64;
            snails_obs::add(Obs::EngineVecBatches, batches);
            snails_obs::add(Obs::EngineOpScanBatches, batches);
            Ok(Rel::from_rows(*width, &rs.rows))
        }
        CSource::Missing(name) => Err(EngineError::UnknownTable { name: name.clone() }),
    }
}

/// A filter pass producing a selection vector: bulk step charge (as the
/// row path), then batch-at-a-time predicate evaluation over `input` (a
/// prior pipeline stage's selection, or all rows when `None`), falling
/// back to per-row scalar evaluation for any batch the vector kernels
/// cannot prove error-free. The returned keep-vector comes from the
/// runner's pool; callers hand it to the next fused stage (or to
/// [`Rel::keep`]) and then recycle it.
pub(crate) fn filter_sel(
    r: &Runner<'_>,
    sel: &CSelect,
    rel: &Rel,
    pred: ExprId,
    input: Option<&[u32]>,
    batch: usize,
    flags: &[bool],
) -> Result<Vec<u32>, EngineError> {
    let n_input = input.map_or(rel.len, <[u32]>::len);
    r.meter.charge_steps(n_input as u64)?;
    let ev = Ev::new(sel, rel, flags, &r.pool);
    let mut keep = r.pool.take_u32();
    let mut scratch = r.pool.take_u32();
    let mut start = 0usize;
    while start < n_input {
        let end = (start + batch).min(n_input);
        let rows: &[u32] = match input {
            Some(s) => &s[start..end],
            None => {
                scratch.clear();
                scratch.extend(start as u32..end as u32);
                &scratch
            }
        };
        let before = keep.len();
        let dict_snap = ev.dict_rows.get();
        let vcol = if flags[pred] { Err(Unvec) } else { ev.eval(pred, rows) };
        match vcol {
            Ok(col) => {
                for (i, &row) in rows.iter().enumerate() {
                    if col.truth_at(i) == Some(true) {
                        keep.push(row);
                    }
                }
                col.recycle(&r.pool);
            }
            Err(Unvec) => {
                // Scalar replay in row order: identical evaluation (and,
                // via subqueries, identical charges) to the row path. Any
                // dict-kernel rows the aborted attempt counted are rolled
                // back — the batch was not vector-processed.
                ev.dict_rows.set(dict_snap);
                for &row in rows {
                    let vals = rel.materialize_row(row as usize);
                    let frame = Frame { row: &vals, parent: None };
                    if truth(&r.eval(sel, pred, &frame)?) == Some(true) {
                        keep.push(row);
                    }
                }
            }
        }
        snails_obs::add(Obs::EngineVecBatches, 1);
        snails_obs::add(Obs::EngineOpFilterBatches, 1);
        let kept = (keep.len() - before) as u64;
        snails_obs::observe(Obs::EngineVecSelectivityPct, kept * 100 / (end - start) as u64);
        start = end;
    }
    let dict = ev.dict_rows.get();
    if dict > 0 {
        snails_obs::add(Obs::EngineVecDictKernelRows, dict);
    }
    snails_obs::observe(Obs::EngineOpFilterRows, keep.len() as u64);
    r.pool.put_u32(scratch);
    Ok(keep)
}

/// `WHERE` materializing its output relation (the unfused shape): run
/// [`filter_sel`] over all rows, then compact the relation.
pub(crate) fn filter(
    r: &Runner<'_>,
    sel: &CSelect,
    rel: Rel,
    pred: ExprId,
    batch: usize,
    flags: &[bool],
) -> Result<Rel, EngineError> {
    let keep = filter_sel(r, sel, &rel, pred, None, batch, flags)?;
    let out = rel.keep(&keep, &r.pool);
    r.pool.put_u32(keep);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// One join step. Equi-key joins run the vectorized build/probe over row
/// ids; everything else (non-equi `ON`, cross joins, `hash_join: false`,
/// keys the vector kernels cannot prove error-free) materializes both sides
/// and delegates to the scalar runner, whose charge/error interleaving is
/// the contract.
fn join_step(
    r: &Runner<'_>,
    sel: &CSelect,
    left: Rel,
    right: Rel,
    join: &CJoin,
    batch: usize,
    flags: &[bool],
) -> Result<Rel, EngineError> {
    let width = join.left_width + join.source.width();
    if r.opts.hash_join && join.kind != JoinKind::Cross {
        if let (Some(keys), Some(_)) = (&join.hash_keys, join.on) {
            let lk = side_keys(sel, &left, keys, true, batch, flags, &r.pool);
            let rk = side_keys(sel, &right, keys, false, batch, flags, &r.pool);
            if let (Some(lk), Some(rk)) = (lk, rk) {
                return hash_join_vec(r, left, right, join, lk, rk);
            }
            // Key evaluation needs the scalar runner: delegate the whole
            // join before any charge, so accounting replays exactly.
            let lrows = left.materialize_all();
            let rrows = right.materialize_all();
            left.recycle(&r.pool);
            right.recycle(&r.pool);
            let rows = r.hash_join(sel, lrows, rrows, join, keys, None)?;
            return Ok(Rel::from_rows(width, &rows));
        }
    }
    let lrows = left.materialize_all();
    let rrows = right.materialize_all();
    left.recycle(&r.pool);
    right.recycle(&r.pool);
    let rows = r.nested_join(sel, lrows, rrows, join, None)?;
    Ok(Rel::from_rows(width, &rows))
}

/// One join side's evaluated keys, in the cheapest exact representation
/// the side admits: one typed [`KeyCol`] per key column, or the general
/// tuple form `Gen` (`None` = unmatchable) when any column's shape defies
/// the typed kernels.
pub(crate) enum SideKeys {
    Cols(Vec<KeyCol>),
    Gen(Vec<Option<JoinKey>>),
}

/// One evaluated key *column*. `Bits` carries numeric keys as their
/// [`VKey::num`] bit patterns ([`DEAD_KEY`] = NULL or NaN — both
/// unmatchable, and every NaN maps to the sentinel so no two NaN bit
/// patterns can spuriously match). `Codes` carries dictionary-string keys
/// as raw `u32` codes (`u32::MAX` = NULL) plus the shared dictionary —
/// the join loop never touches an `Arc<str>`.
pub(crate) enum KeyCol {
    Bits(Vec<u64>),
    Codes { codes: Vec<u32>, dict: Arc<Dict> },
}

/// NULL sentinel inside [`KeyCol::Codes`].
const NULL_CODE: u32 = u32::MAX;

impl KeyCol {
    pub(crate) fn len(&self) -> usize {
        match self {
            KeyCol::Bits(b) => b.len(),
            KeyCol::Codes { codes, .. } => codes.len(),
        }
    }

    /// The [`VKey`] at row `i`, or `None` for an unmatchable component.
    pub(crate) fn at(&self, i: usize) -> Option<VKey> {
        match self {
            KeyCol::Bits(b) => (b[i] != DEAD_KEY).then(|| VKey::Num(b[i])),
            KeyCol::Codes { codes, dict } => (codes[i] != NULL_CODE)
                .then(|| VKey::Str(Arc::clone(&dict.lower[codes[i] as usize]))),
        }
    }

    /// Can `append` extend this column with a batch of this shape?
    /// (Checked for every column *before* appending any, so a mid-tuple
    /// mismatch cannot leave columns at different lengths.)
    pub(crate) fn can_append(&self, col: &VCol) -> bool {
        match (self, col) {
            (KeyCol::Bits(_), VCol::I64 { .. } | VCol::F64 { .. }) => true,
            // An empty Bits column is shapeless: it adopts Codes form.
            (KeyCol::Bits(b), VCol::Str { .. }) => b.is_empty(),
            (KeyCol::Codes { dict, .. }, VCol::Str { dict: bd, .. }) => Arc::ptr_eq(dict, bd),
            _ => false,
        }
    }

    /// Append one batch (shape pre-checked by [`KeyCol::can_append`]).
    pub(crate) fn append(&mut self, col: &VCol, n: usize) {
        if matches!(self, KeyCol::Bits(b) if b.is_empty()) {
            if let VCol::Str { dict, .. } = col {
                *self = KeyCol::Codes { codes: Vec::new(), dict: Arc::clone(dict) };
            }
        }
        match (self, col) {
            (KeyCol::Bits(bits), VCol::I64 { vals, valid }) => {
                for (i, &v) in vals.iter().take(n).enumerate() {
                    bits.push(if valid.get(i) {
                        let VKey::Num(b) = VKey::num(v as f64) else { unreachable!() };
                        b
                    } else {
                        DEAD_KEY
                    });
                }
            }
            (KeyCol::Bits(bits), VCol::F64 { vals, valid }) => {
                for (i, &v) in vals.iter().take(n).enumerate() {
                    // NaN folds into DEAD_KEY: unmatchable, like NULL.
                    bits.push(if valid.get(i) && !v.is_nan() {
                        let VKey::Num(b) = VKey::num(v) else { unreachable!() };
                        b
                    } else {
                        DEAD_KEY
                    });
                }
            }
            (KeyCol::Codes { codes, .. }, VCol::Str { codes: bc, valid, .. }) => {
                for (i, &c) in bc.iter().take(n).enumerate() {
                    codes.push(if valid.get(i) { c } else { NULL_CODE });
                }
            }
            _ => unreachable!("append shape pre-checked by can_append"),
        }
    }
}

impl SideKeys {
    pub(crate) fn len(&self) -> usize {
        match self {
            SideKeys::Cols(cols) => cols.first().map_or(0, KeyCol::len),
            SideKeys::Gen(g) => g.len(),
        }
    }

    /// The single-column key at row `i` (`None` = unmatchable). Only
    /// meaningful for width-1 sides — index-probe callers guarantee that.
    pub(crate) fn one_at(&self, i: usize) -> Option<VKey> {
        match self {
            SideKeys::Cols(cols) => cols[0].at(i),
            SideKeys::Gen(g) => g[i].as_ref().map(|k| match k {
                JoinKey::One(v) => v.clone(),
                JoinKey::Many(_) => unreachable!("width-1 side holds One keys"),
            }),
        }
    }

    /// Degrade to the general representation (mixed shapes across
    /// batches, or a representation pairing the join loop cannot fuse).
    pub(crate) fn into_gen(self) -> Vec<Option<JoinKey>> {
        match self {
            SideKeys::Gen(g) => g,
            SideKeys::Cols(cols) => {
                let len = cols.first().map_or(0, KeyCol::len);
                (0..len)
                    .map(|i| -> Option<JoinKey> {
                        if let [col] = cols.as_slice() {
                            return col.at(i).map(JoinKey::One);
                        }
                        let mut tuple = Vec::with_capacity(cols.len());
                        for c in &cols {
                            tuple.push(c.at(i)?);
                        }
                        Some(JoinKey::Many(tuple))
                    })
                    .collect()
            }
        }
    }
}

/// Evaluate one side's key tuples, batch at a time. `None` aborts to the
/// scalar join (subquery in a key, or any row-level evaluation error);
/// evaluation is pure, so aborting is free. Single-column keys stay in
/// their typed form — numeric bit patterns or dictionary codes — for the
/// code-space join loops; composite or mixed-shape keys degrade to
/// [`SideKeys::Gen`], whose `None` entries mark unmatchable keys
/// (NULL/NaN component), as in the row path's `side_key`.
fn side_keys(
    sel: &CSelect,
    rel: &Rel,
    keys: &[(ExprId, ExprId)],
    left_side: bool,
    batch: usize,
    flags: &[bool],
    pool: &BatchPool,
) -> Option<SideKeys> {
    let pick = |k: &(ExprId, ExprId)| if left_side { k.0 } else { k.1 };
    if keys.iter().any(|k| flags[pick(k)]) {
        return None;
    }
    let ev = Ev::new(sel, rel, flags, pool);
    // Every column starts as an empty (shapeless) Bits accumulator; the
    // first batch picks each column's real form. A shape any column cannot
    // extend (a computed key flipping from typed to `Vals`, two sources
    // with different dictionaries feeding one key, a Const/Bool key)
    // degrades the whole side to Gen — checked before appending anything,
    // so the columns never go out of step.
    let mut acc = SideKeys::Cols(
        keys.iter()
            .map(|_| {
                let mut bits = pool.take_u64();
                bits.reserve(rel.len);
                KeyCol::Bits(bits)
            })
            .collect(),
    );
    let mut scratch = pool.take_u32();
    let mut start = 0usize;
    while start < rel.len {
        let end = (start + batch).min(rel.len);
        scratch.clear();
        scratch.extend(start as u32..end as u32);
        let rows: &[u32] = &scratch;
        let cols: Vec<VCol> =
            keys.iter().map(|k| ev.eval(pick(k), rows)).collect::<Result<_, _>>().ok()?;
        match &mut acc {
            SideKeys::Cols(kcols)
                if kcols.iter().zip(&cols).all(|(kc, c)| kc.can_append(c)) =>
            {
                for (kc, c) in kcols.iter_mut().zip(&cols) {
                    kc.append(c, rows.len());
                }
            }
            _ => {
                let mut gen =
                    std::mem::replace(&mut acc, SideKeys::Gen(Vec::new())).into_gen();
                append_gen(&mut gen, &cols, rows.len());
                acc = SideKeys::Gen(gen);
            }
        }
        for c in cols {
            c.recycle(pool);
        }
        snails_obs::add(Obs::EngineVecBatches, 1);
        snails_obs::add(Obs::EngineOpJoinBatches, 1);
        start = end;
    }
    pool.put_u32(scratch);
    Some(acc)
}

/// Append one batch of evaluated key columns in the general [`JoinKey`]
/// form (`None` = any component unmatchable).
pub(crate) fn append_gen(out: &mut Vec<Option<JoinKey>>, cols: &[VCol], n: usize) {
    if let [col] = cols {
        for i in 0..n {
            let k = key_at(col, i);
            out.push((!k.unmatchable()).then_some(JoinKey::One(k)));
        }
        return;
    }
    for i in 0..n {
        let mut tuple = Vec::with_capacity(cols.len());
        let mut dead = false;
        for c in cols {
            let k = key_at(c, i);
            if k.unmatchable() {
                dead = true;
                break;
            }
            tuple.push(k);
        }
        out.push(if dead { None } else { Some(JoinKey::Many(tuple)) });
    }
}

/// Build/probe hash join over row ids — identical structure, charge points,
/// and emission order to [`Runner::hash_join`], with keys pre-evaluated
/// (and pre-proven error-free) by [`side_keys`]. Each key column pairs
/// into `u64` atoms — numeric columns join directly on key bits,
/// dictionary-string columns on codes after a once-per-join code→code
/// translation, and a string column against a numeric column can never
/// match so it joins as all-unmatchable (pads and charge sequence are
/// preserved). One- and two-column keys then run the flat code-space
/// loops on `u64` / `(u64, u64)` atoms; wider keys (rare) and
/// non-atomizable sides hash [`JoinKey`]s.
fn hash_join_vec(
    r: &Runner<'_>,
    left: Rel,
    right: Rel,
    join: &CJoin,
    lk: SideKeys,
    rk: SideKeys,
) -> Result<Rel, EngineError> {
    let emits = match (lk, rk) {
        (SideKeys::Cols(lc), SideKeys::Cols(rc)) if lc.len() <= 2 => {
            debug_assert_eq!(lc.len(), rc.len(), "join sides share the key list");
            let build_right = join.kind != JoinKind::Right;
            let mut dict_rows = 0u64;
            let atoms: Vec<(Vec<u64>, Vec<u64>)> = lc
                .into_iter()
                .zip(rc)
                .map(|(l, right_col)| atom_pair(l, right_col, build_right, &mut dict_rows))
                .collect();
            // Commit-point telemetry: code columns stream through the
            // code-space loop (side_keys already proved vectorizability,
            // so the join itself cannot abort).
            if dict_rows > 0 {
                snails_obs::add(Obs::EngineVecDictKernelRows, dict_rows);
            }
            let emits = match atoms.as_slice() {
                [(l0, r0)] => join_atoms(r, join.kind, l0, r0)?,
                [(l0, r0), (l1, r1)] => {
                    let lz: Vec<(u64, u64)> =
                        l0.iter().zip(l1).map(|(&a, &b)| (a, b)).collect();
                    let rz: Vec<(u64, u64)> =
                        r0.iter().zip(r1).map(|(&a, &b)| (a, b)).collect();
                    join_atoms(r, join.kind, &lz, &rz)?
                }
                _ => unreachable!("guard admits one or two key columns"),
            };
            for (a, b) in atoms {
                r.pool.put_u64(a);
                r.pool.put_u64(b);
            }
            emits
        }
        (lk, rk) => {
            let (lg, rg) = (lk.into_gen(), rk.into_gen());
            hash_join_pairs::<JoinKey, std::collections::hash_map::RandomState>(
                r, join.kind, &lg, &rg,
            )?
        }
    };
    let joined = combine(left, right, &emits, &r.pool);
    r.pool.put_pairs(emits);
    Ok(joined)
}

/// Pair one key column across the two sides into `u64` atom vectors whose
/// equality is exactly [`VKey`] equality. `build_right` names the build
/// side for dictionary canonicalization (it does not affect emission
/// order). A string column against a numeric column can never match (the
/// row path's `HashKey` classes are disjoint), so the string side turns
/// all-[`DEAD_KEY`] — for emissions and charges, a live key that matches
/// nothing is indistinguishable from a dead one. Rows streamed through
/// the code translation accumulate into `dict_rows` (the caller decides
/// when that telemetry commits — the optimizer's pure phase defers it).
pub(crate) fn atom_pair(
    l: KeyCol,
    right_col: KeyCol,
    build_right: bool,
    dict_rows: &mut u64,
) -> (Vec<u64>, Vec<u64>) {
    match (l, right_col) {
        (KeyCol::Bits(lb), KeyCol::Bits(rb)) => (lb, rb),
        (
            KeyCol::Codes { codes: lc, dict: ld },
            KeyCol::Codes { codes: rc, dict: rd },
        ) => {
            *dict_rows += (lc.len() + rc.len()) as u64;
            // Canonicalize against the build side's dictionary; canonical
            // codes are < 2^32, so they never collide with DEAD_KEY.
            if build_right {
                let (bbits, pbits) = translate_codes(&rc, &rd, &lc, &ld);
                (pbits, bbits)
            } else {
                let (bbits, pbits) = translate_codes(&lc, &ld, &rc, &rd);
                (bbits, pbits)
            }
        }
        (KeyCol::Codes { codes, .. }, KeyCol::Bits(rb)) => (vec![DEAD_KEY; codes.len()], rb),
        (KeyCol::Bits(lb), KeyCol::Codes { codes, .. }) => {
            let n = codes.len();
            (lb, vec![DEAD_KEY; n])
        }
    }
}

/// Case-insensitive code→code translation for a dictionary join. Each
/// build code maps to its canonical code (the first build code sharing
/// its lowercase form — dictionaries dedupe raw strings, so two codes can
/// still collide case-insensitively); each probe code maps to the
/// canonical build code of its lowercase form, or [`DEAD_KEY`] when the
/// build dictionary has no such string. Built once per join — the
/// per-row loops are then pure `u32 → u64` lookups.
fn translate_codes(
    build: &[u32],
    bdict: &Dict,
    probe: &[u32],
    pdict: &Dict,
) -> (Vec<u64>, Vec<u64>) {
    let mut canon: HashMap<&str, u64> = HashMap::with_capacity(bdict.len());
    let mut bcanon: Vec<u64> = Vec::with_capacity(bdict.len());
    for c in 0..bdict.len() {
        let e = *canon.entry(bdict.lower[c].as_ref()).or_insert(c as u64);
        bcanon.push(e);
    }
    let ptrans: Vec<u64> = (0..pdict.len())
        .map(|p| canon.get(pdict.lower[p].as_ref()).copied().unwrap_or(DEAD_KEY))
        .collect();
    let bbits = build
        .iter()
        .map(|&c| if c == NULL_CODE { DEAD_KEY } else { bcanon[c as usize] })
        .collect();
    let pbits = probe
        .iter()
        .map(|&c| if c == NULL_CODE { DEAD_KEY } else { ptrans[c as usize] })
        .collect();
    (bbits, pbits)
}

/// A fixed-width join-key atom the flat code-space loops can build and
/// probe on: one `u64` per key column, compared bit-for-bit, with
/// [`DEAD_KEY`] in any column marking the whole key unmatchable.
/// [`U64Hasher`] folds each column into its running state, so the tuple
/// form hashes well with the same zero-cost hasher as the scalar form.
pub(crate) trait AtomKey: Copy + Eq + std::hash::Hash {
    fn dead(self) -> bool;
}

impl AtomKey for u64 {
    fn dead(self) -> bool {
        self == DEAD_KEY
    }
}

impl AtomKey for (u64, u64) {
    fn dead(self) -> bool {
        self.0 == DEAD_KEY || self.1 == DEAD_KEY
    }
}

/// Pure inner-join build/probe over atoms: build over the right side in
/// ascending row order, probe in left order — the same emission sequence
/// as the generic `JoinKey` table loop — with no charges and no
/// observability (the cost-based planner's pure phase defers both to its
/// commit point).
pub(crate) fn pure_inner_join_atoms<K: AtomKey>(
    lkeys: &[K],
    rkeys: &[K],
    pool: &BatchPool,
) -> Vec<(u32, u32)> {
    let mut table: HashMap<K, Vec<u32>, std::hash::BuildHasherDefault<U64Hasher>> =
        HashMap::default();
    for (ri, &k) in rkeys.iter().enumerate() {
        if !k.dead() {
            table.entry(k).or_default().push(ri as u32);
        }
    }
    let mut emits = pool.take_pairs();
    emits.reserve(lkeys.len());
    for (li, &k) in lkeys.iter().enumerate() {
        if !k.dead() {
            if let Some(hits) = table.get(&k) {
                for &ri in hits {
                    emits.push((li as u32, ri));
                }
            }
        }
    }
    emits
}

/// The atom build/probe loops ([`AtomKey::dead`] = unmatchable). The build
/// is two-pass — count per key, prefix-sum, scatter into one flat row-id
/// array — so a build side of `k` distinct keys costs three allocations
/// instead of `k` per-key vectors. Probe charges mirror the row path
/// per-row; when the budget is unlimited (nothing can trip) they
/// accumulate and charge once, keeping the meter totals identical.
fn join_atoms<K: AtomKey>(
    r: &Runner<'_>,
    kind: JoinKind,
    lbits: &[K],
    rbits: &[K],
) -> Result<Vec<(u32, u32)>, EngineError> {
    let bulk = r.opts.limits.is_unlimited();
    let bkeys = match kind {
        JoinKind::Right => lbits,
        _ => rbits,
    };
    r.meter.charge_join(bkeys.len() as u64)?;
    // Pass 1: group index per distinct key, count per group.
    let mut groups: HashMap<K, u32, std::hash::BuildHasherDefault<U64Hasher>> =
        HashMap::default();
    let mut counts = r.pool.take_u32();
    for &k in bkeys {
        if !k.dead() {
            match groups.entry(k) {
                Entry::Occupied(e) => counts[*e.get() as usize] += 1,
                Entry::Vacant(e) => {
                    e.insert(counts.len() as u32);
                    counts.push(1);
                }
            }
        }
    }
    // Pass 2: prefix-sum offsets, scatter build rows ascending.
    let mut starts = r.pool.take_u32();
    let mut acc = 0u32;
    for &c in &counts {
        starts.push(acc);
        acc += c;
    }
    let mut flat = r.pool.take_u32();
    flat.resize(acc as usize, 0);
    let mut cursor = r.pool.take_u32();
    cursor.extend_from_slice(&starts);
    for (bi, &k) in bkeys.iter().enumerate() {
        if !k.dead() {
            let g = groups[&k] as usize;
            flat[cursor[g] as usize] = bi as u32;
            cursor[g] += 1;
        }
    }
    r.pool.put_u32(cursor);
    let lookup = |k: K| -> &[u32] {
        if k.dead() {
            return &[];
        }
        match groups.get(&k) {
            Some(&g) => &flat[starts[g as usize] as usize..][..counts[g as usize] as usize],
            None => &[],
        }
    };
    // Most equi-joins emit about one row per probe (foreign-key shape);
    // reserving that much up front avoids the doubling-realloc chain on
    // the pooled buffer's first growth.
    let probe_len = if kind == JoinKind::Right { rbits.len() } else { lbits.len() };
    let mut emits = r.pool.take_pairs();
    emits.reserve(probe_len);
    let mut charge_acc = 0u64;
    match kind {
        JoinKind::Inner | JoinKind::Left | JoinKind::Full => {
            let mut right_matched =
                if kind == JoinKind::Full { vec![false; rbits.len()] } else { Vec::new() };
            for (li, &k) in lbits.iter().enumerate() {
                let hits = lookup(k);
                if bulk {
                    charge_acc += 1 + hits.len() as u64;
                } else {
                    r.meter.charge_join(1 + hits.len() as u64)?;
                }
                for &ri in hits {
                    emits.push((li as u32, ri));
                    if kind == JoinKind::Full {
                        right_matched[ri as usize] = true;
                    }
                }
                if hits.is_empty() && kind != JoinKind::Inner {
                    emits.push((li as u32, NONE_RID));
                }
            }
            if bulk {
                r.meter.charge_join(charge_acc)?;
            }
            if kind == JoinKind::Full {
                for (ri, m) in right_matched.iter().enumerate() {
                    if !m {
                        emits.push((NONE_RID, ri as u32));
                    }
                }
            }
        }
        JoinKind::Right => {
            for (ri, &k) in rbits.iter().enumerate() {
                let hits = lookup(k);
                if bulk {
                    charge_acc += 1 + hits.len() as u64;
                } else {
                    r.meter.charge_join(1 + hits.len() as u64)?;
                }
                for &li in hits {
                    emits.push((li, ri as u32));
                }
                if hits.is_empty() {
                    emits.push((NONE_RID, ri as u32));
                }
            }
            if bulk {
                r.meter.charge_join(charge_acc)?;
            }
        }
        JoinKind::Cross => unreachable!("cross joins never take the hash path"),
    }
    r.pool.put_u32(counts);
    r.pool.put_u32(starts);
    r.pool.put_u32(flat);
    Ok(emits)
}

/// The generic build/probe loops over [`JoinKey`]s (`None` = unmatchable).
/// Charge points and emission order are the row path's.
fn hash_join_pairs<K: std::hash::Hash + Eq, S: std::hash::BuildHasher + Default>(
    r: &Runner<'_>,
    kind: JoinKind,
    lkeys: &[Option<K>],
    rkeys: &[Option<K>],
) -> Result<Vec<(u32, u32)>, EngineError> {
    let mut emits = r.pool.take_pairs();
    match kind {
        JoinKind::Inner | JoinKind::Left | JoinKind::Full => {
            let mut table: HashMap<&K, Vec<u32>, S> = HashMap::default();
            r.meter.charge_join(rkeys.len() as u64)?;
            for (ri, k) in rkeys.iter().enumerate() {
                if let Some(k) = k {
                    table.entry(k).or_default().push(ri as u32);
                }
            }
            let mut right_matched = vec![false; rkeys.len()];
            for (li, k) in lkeys.iter().enumerate() {
                let hits: &[u32] = match k {
                    Some(k) => table.get(k).map(Vec::as_slice).unwrap_or(&[]),
                    None => &[],
                };
                r.meter.charge_join(1 + hits.len() as u64)?;
                for &ri in hits {
                    emits.push((li as u32, ri));
                    right_matched[ri as usize] = true;
                }
                if hits.is_empty() && kind != JoinKind::Inner {
                    emits.push((li as u32, NONE_RID));
                }
            }
            if kind == JoinKind::Full {
                for (ri, m) in right_matched.iter().enumerate() {
                    if !m {
                        emits.push((NONE_RID, ri as u32));
                    }
                }
            }
        }
        JoinKind::Right => {
            let mut table: HashMap<&K, Vec<u32>, S> = HashMap::default();
            r.meter.charge_join(lkeys.len() as u64)?;
            for (li, k) in lkeys.iter().enumerate() {
                if let Some(k) = k {
                    table.entry(k).or_default().push(li as u32);
                }
            }
            for (ri, k) in rkeys.iter().enumerate() {
                let hits: &[u32] = match k {
                    Some(k) => table.get(k).map(Vec::as_slice).unwrap_or(&[]),
                    None => &[],
                };
                r.meter.charge_join(1 + hits.len() as u64)?;
                for &li in hits {
                    emits.push((li, ri as u32));
                }
                if hits.is_empty() {
                    emits.push((NONE_RID, ri as u32));
                }
            }
        }
        JoinKind::Cross => unreachable!("cross joins never take the hash path"),
    }
    Ok(emits)
}

/// Stitch two relations into the joined relation described by `emits`
/// (pairs of logical row ids, `NONE_RID` for outer-join pads). The output
/// row-id vectors come from `pool`; the inputs' vectors recycle into it.
fn combine(left: Rel, right: Rel, emits: &[(u32, u32)], pool: &BatchPool) -> Rel {
    let mut rowids: Vec<Vec<u32>> = Vec::with_capacity(left.srcs.len() + right.srcs.len());
    for ids in &left.rowids {
        let mut out = pool.take_u32();
        out.extend(
            emits.iter().map(|&(l, _)| if l == NONE_RID { NONE_RID } else { ids[l as usize] }),
        );
        rowids.push(out);
    }
    for ids in &right.rowids {
        let mut out = pool.take_u32();
        out.extend(
            emits.iter().map(|&(_, rr)| if rr == NONE_RID { NONE_RID } else { ids[rr as usize] }),
        );
        rowids.push(out);
    }
    for ids in left.rowids.into_iter().chain(right.rowids) {
        pool.put_u32(ids);
    }
    let shift = left.srcs.len() as u32;
    let mut col_map = left.col_map;
    col_map.extend(right.col_map.iter().map(|&(s, c)| (s + shift, c)));
    let mut srcs = left.srcs;
    srcs.extend(right.srcs);
    Rel { srcs, rowids, len: emits.len(), col_map, width: left.width + right.width }
}

// ---------------------------------------------------------------------------
// Tail: GROUP BY / HAVING / projection / DISTINCT / ORDER BY / TOP
// ---------------------------------------------------------------------------

/// Does the tail reference anything the vector kernels refuse to touch?
fn tail_needs_scalar(sel: &CSelect, flags: &[bool]) -> bool {
    if sel.group_by.iter().any(|&g| flags[g]) {
        return true;
    }
    if let Some(h) = &sel.having {
        if unit_scalar(h, flags) {
            return true;
        }
    }
    if let Ok((_, items)) = &sel.projection {
        for item in items {
            if let CItem::Expr(u) = item {
                if unit_scalar(u, flags) {
                    return true;
                }
            }
        }
    }
    sel.order_by.iter().any(|(key, _)| match key {
        COrder::Output(_) => false,
        COrder::Unit(u) => unit_scalar(u, flags),
    })
}

/// The tail of one block, over `input` (a fused filter's selection
/// vector) or all of `rel` when `None`. Everything up to the commit point
/// is *pure* pre-evaluation; any [`Unvec`] (or plain evaluation error)
/// falls back to [`Runner::tail`] over the materialized selection, which
/// — having made no charges yet — replays the row path's exact
/// charge/error interleaving.
pub(crate) fn tail(
    r: &Runner<'_>,
    sel: &CSelect,
    rel: &Rel,
    input: Option<&[u32]>,
    flags: &[bool],
) -> Result<ResultSet, EngineError> {
    // Plan-time projection errors surface here, exactly as in the row path.
    let (out_columns, items) = match &sel.projection {
        Ok(p) => p,
        Err(e) => return Err(e.clone()),
    };
    let n_input = input.map_or(rel.len, <[u32]>::len);
    if tail_needs_scalar(sel, flags) {
        return match input {
            Some(s) => r.tail(sel, rel.materialize_sel(s), None),
            None => r.tail(sel, rel.materialize_all(), None),
        };
    }
    // Global aggregate over zero rows: the representative is a synthetic
    // all-NULL row no selection vector can address — delegate (free: no
    // charges precede it and there is nothing to materialize).
    if sel.grouped && sel.group_by.is_empty() && n_input == 0 {
        return r.tail(sel, Vec::new(), None);
    }

    let ev = Ev::new(sel, rel, flags, &r.pool);
    let iota_buf: Option<Vec<u32>> = match input {
        Some(_) => None,
        None => {
            let mut v = r.pool.take_u32();
            v.extend(0..rel.len as u32);
            Some(v)
        }
    };
    let all: &[u32] = match input {
        Some(s) => s,
        None => iota_buf.as_deref().expect("iota built"),
    };
    let fallback = || match input {
        Some(s) => r.tail(sel, rel.materialize_sel(s), None),
        None => r.tail(sel, rel.materialize_all(), None),
    };

    // -- Pure phase ------------------------------------------------------
    // Units as representative row ids plus, when grouped, member row ids
    // flattened into one pooled array with per-unit spans (two-pass: count
    // and assign group indices, then prefix-sum and stable-scatter — so a
    // grouping of `k` groups costs O(1) allocations, not `k` per-group
    // vectors). The ungrouped 1:1 case carries no member sets at all —
    // aggregates cannot appear ungrouped, so they are never consulted and
    // the per-row singleton vectors the row path builds would be pure
    // allocator churn.
    let group_data: Option<GroupData> = if sel.grouped {
        if sel.group_by.is_empty() {
            let mut flat = r.pool.take_u32();
            flat.extend_from_slice(all);
            Some((vec![all[0]], flat, vec![(0, n_input as u32)]))
        } else {
            let cols: Vec<VCol> = match sel
                .group_by
                .iter()
                .map(|&g| ev.eval(g, all))
                .collect::<Result<_, Unvec>>()
            {
                Ok(c) => c,
                Err(Unvec) => return fallback(),
            };
            // Pass 1: group index per input position, in first-occurrence
            // order (the row path's unit order).
            let mut gidx = r.pool.take_u32();
            let mut reps: Vec<u32> = Vec::new();
            let mut counts: Vec<u32> = Vec::new();
            match cols.as_slice() {
                // Single integer key: group on pre-hashed key bits (the
                // bits *are* the `hash_key` equivalence class; `DEAD_KEY`
                // is a NaN pattern no integer can reach, so it can stand
                // in for the NULL group).
                [VCol::I64 { vals, valid }] => {
                    let mut groups: FastMap<u32> = FastMap::default();
                    for (i, &row) in all.iter().enumerate() {
                        let bits = if valid.get(i) {
                            let VKey::Num(b) = VKey::num(vals[i] as f64) else { unreachable!() };
                            b
                        } else {
                            DEAD_KEY
                        };
                        let g = match groups.entry(bits) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                let g = reps.len() as u32;
                                e.insert(g);
                                reps.push(row);
                                counts.push(0);
                                g
                            }
                        };
                        counts[g as usize] += 1;
                        gidx.push(g);
                    }
                }
                // Single dictionary-string key: group codes through a
                // lazily built code→group map. Two codes sharing a
                // lowercase form land in one group — the same
                // case-insensitive equivalence class `HashKey` (and the
                // NDV statistics in `crate::stats`) use.
                [VCol::Str { codes, valid, dict }] => {
                    ev.count_dict(all.len());
                    const UNSEEN: u32 = u32::MAX;
                    let mut code_group: Vec<u32> = vec![UNSEEN; dict.len()];
                    let mut lower_group: HashMap<&str, u32> = HashMap::new();
                    let mut null_group = UNSEEN;
                    for (i, &row) in all.iter().enumerate() {
                        let g = if valid.get(i) {
                            let c = codes[i] as usize;
                            let mut g = code_group[c];
                            if g == UNSEEN {
                                g = match lower_group.entry(dict.lower[c].as_ref()) {
                                    Entry::Occupied(e) => *e.get(),
                                    Entry::Vacant(e) => {
                                        let g = reps.len() as u32;
                                        e.insert(g);
                                        reps.push(row);
                                        counts.push(0);
                                        g
                                    }
                                };
                                code_group[c] = g;
                            }
                            g
                        } else {
                            if null_group == UNSEEN {
                                null_group = reps.len() as u32;
                                reps.push(row);
                                counts.push(0);
                            }
                            null_group
                        };
                        counts[g as usize] += 1;
                        gidx.push(g);
                    }
                }
                _ => {
                    let mut groups: HashMap<Vec<VKey>, u32> = HashMap::new();
                    for (i, &row) in all.iter().enumerate() {
                        let key: Vec<VKey> = cols.iter().map(|c| key_at(c, i)).collect();
                        let g = match groups.entry(key) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                let g = reps.len() as u32;
                                e.insert(g);
                                reps.push(row);
                                counts.push(0);
                                g
                            }
                        };
                        counts[g as usize] += 1;
                        gidx.push(g);
                    }
                }
            }
            for c in cols {
                c.recycle(&r.pool);
            }
            // Pass 2: prefix-sum spans, stable scatter (within-group row
            // order is input order, as the row path's push-per-row built).
            let mut spans: Vec<(u32, u32)> = Vec::with_capacity(counts.len());
            let mut acc = 0u32;
            for &c in &counts {
                spans.push((acc, acc + c));
                acc += c;
            }
            let mut cursor: Vec<u32> = spans.iter().map(|s| s.0).collect();
            let mut flat = r.pool.take_u32();
            flat.resize(n_input, 0);
            for (i, &row) in all.iter().enumerate() {
                let g = gidx[i] as usize;
                flat[cursor[g] as usize] = row;
                cursor[g] += 1;
            }
            r.pool.put_u32(gidx);
            Some((reps, flat, spans))
        }
    } else {
        None
    };
    let reps: &[u32] = match &group_data {
        Some((reps, _, _)) => reps,
        None => all,
    };
    let units = Units {
        reps,
        members: group_data.as_ref().map(|(_, flat, spans)| (flat.as_slice(), spans.as_slice())),
    };
    let n_units = units.reps.len();

    let having: Option<Vec<Value>> = match &sel.having {
        Some(h) => match eval_unit_vec(&ev, h, &units) {
            Ok(v) => Some(v),
            Err(Unvec) => return fallback(),
        },
        None => None,
    };

    // Projection and ORDER BY unit keys over *all* units — a pure superset
    // of the row path's post-HAVING evaluation, so extra work on filtered
    // units is unobservable.
    let mut item_vals: Vec<Vec<Value>> = Vec::with_capacity(items.len());
    for item in items {
        let vals = match item {
            CItem::Passthrough(idx) => {
                let col = rel.gather(*idx, units.reps, &r.pool);
                let vals = (0..n_units).map(|i| col.value_at(i)).collect();
                col.recycle(&r.pool);
                vals
            }
            CItem::Expr(u) => match eval_unit_vec(&ev, u, &units) {
                Ok(v) => v,
                Err(Unvec) => return fallback(),
            },
        };
        item_vals.push(vals);
    }
    let mut order_vals: Vec<Option<Vec<Value>>> = Vec::with_capacity(sel.order_by.len());
    for (key, _) in &sel.order_by {
        order_vals.push(match key {
            COrder::Output(_) => None,
            COrder::Unit(u) => match eval_unit_vec(&ev, u, &units) {
                Ok(v) => Some(v),
                Err(Unvec) => return fallback(),
            },
        });
    }

    // -- Commit phase ----------------------------------------------------
    // Charges and observations in the row path's exact order. The pure
    // phase succeeded, so its dict-kernel row counts commit here too.
    let dict = ev.dict_rows.replace(0);
    if dict > 0 {
        snails_obs::add(Obs::EngineVecDictKernelRows, dict);
    }
    if sel.grouped && !sel.group_by.is_empty() {
        r.meter.charge_steps(n_input as u64)?;
    }
    if sel.grouped {
        snails_obs::observe(Obs::EngineOpGroupUnits, n_units as u64);
    }
    let kept: Vec<usize> = match &having {
        Some(hv) => (0..n_units).filter(|&i| truth(&hv[i]) == Some(true)).collect(),
        None => (0..n_units).collect(),
    };
    r.meter.charge_steps(kept.len() as u64)?;

    let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(kept.len());
    for &u in &kept {
        let out_row: Vec<Value> = item_vals.iter().map(|col| col[u].clone()).collect();
        let mut keys = Vec::with_capacity(sel.order_by.len());
        for (k, (key, _)) in sel.order_by.iter().enumerate() {
            match key {
                COrder::Output(i) => keys.push(out_row[*i].clone()),
                COrder::Unit(_) => {
                    keys.push(order_vals[k].as_ref().expect("unit key precomputed")[u].clone())
                }
            }
        }
        projected.push((out_row, keys));
    }
    snails_obs::observe(Obs::EngineOpProjectRows, projected.len() as u64);

    if sel.distinct {
        let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
        projected.retain(|(row, _)| seen.insert(row.iter().map(Value::hash_key).collect()));
    }

    if !sel.order_by.is_empty() {
        snails_obs::observe(Obs::EngineOpSortRows, projected.len() as u64);
        projected.sort_by(|(_, ka), (_, kb)| {
            for (i, (_, desc)) in sel.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let mut out_rows: Vec<Vec<Value>> = projected.into_iter().map(|(row, _)| row).collect();
    if let Some(n) = sel.top {
        out_rows.truncate(n as usize);
    }
    if let Some((_, flat, _)) = group_data {
        r.pool.put_u32(flat);
    }
    if let Some(v) = iota_buf {
        r.pool.put_u32(v);
    }
    Ok(ResultSet { columns: out_columns.clone(), rows: out_rows })
}

/// Owned grouped-unit layout out of the grouping pass: `(reps, flat,
/// spans)` in the row path's first-occurrence unit order.
type GroupData = (Vec<u32>, Vec<u32>, Vec<(u32, u32)>);

/// Grouped-unit member layout: `(flat, spans)` — member row ids of unit
/// `u` are `flat[spans[u].0 as usize..spans[u].1 as usize]`.
type MemberView<'a> = (&'a [u32], &'a [(u32, u32)]);

/// Tail evaluation units: one representative row id per unit plus, when
/// grouped, the member row-id set per unit (absent in the ungrouped 1:1
/// case, where no aggregate can reference it).
struct Units<'a> {
    reps: &'a [u32],
    members: Option<MemberView<'a>>,
}

/// Evaluate one projection/`HAVING`/`ORDER BY` unit over every unit's
/// representative (scalar units) or member set (grouped units). Pure.
fn eval_unit_vec(ev: &Ev<'_>, u: &CUnit, units: &Units<'_>) -> Result<Vec<Value>, Unvec> {
    match u {
        CUnit::Row(id) => {
            let col = ev.eval(*id, units.reps)?;
            let out = (0..units.reps.len()).map(|i| col.value_at(i)).collect();
            col.recycle(ev.pool);
            Ok(out)
        }
        CUnit::Grouped(g) => eval_gexpr(ev, g, units),
    }
}

/// Evaluate a grouped expression per unit. Aggregate arguments evaluate
/// once over the pre-flattened member array, then typed kernels reduce
/// each span; anything the kernels cannot prove error-free (overflow,
/// text arithmetic, `DISTINCT` over mixed data) falls back to
/// [`finish_aggregate`] on gathered values, and its errors abort to the
/// scalar runner.
fn eval_gexpr(ev: &Ev<'_>, g: &GExpr, units: &Units<'_>) -> Result<Vec<Value>, Unvec> {
    let n = units.reps.len();
    match g {
        GExpr::Row(id) => {
            let col = ev.eval(*id, units.reps)?;
            let out = (0..n).map(|i| col.value_at(i)).collect();
            col.recycle(ev.pool);
            Ok(out)
        }
        GExpr::Agg { name, distinct, arg } => {
            // A grouped unit outside a grouped block would mean the plan
            // lowered an aggregate the block cannot host; the scalar
            // runner owns that error.
            let Some((flat, spans)) = units.members else { return Err(Unvec) };
            match arg {
                AggArg::CountStar => {
                    Ok(spans.iter().map(|&(s, e)| Value::Int(i64::from(e - s))).collect())
                }
                // Always-erroring forms: the scalar runner owns the message.
                AggArg::StarInvalid | AggArg::Missing => Err(Unvec),
                AggArg::Expr(id) => {
                    let col = ev.eval(*id, flat)?;
                    let mut out = Vec::with_capacity(n);
                    for &(start, end) in spans {
                        match reduce_segment(name, *distinct, &col, start as usize, end as usize)
                        {
                            Ok(v) => out.push(v),
                            Err(Unvec) => {
                                col.recycle(ev.pool);
                                return Err(Unvec);
                            }
                        }
                    }
                    col.recycle(ev.pool);
                    Ok(out)
                }
            }
        }
        GExpr::And(left, right) => {
            let l = eval_gexpr(ev, left, units)?;
            let r = eval_gexpr(ev, right, units)?;
            Ok((0..n)
                .map(|i| {
                    let (lt, rt) = (truth(&l[i]), truth(&r[i]));
                    bool_value(match (lt, rt) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    })
                })
                .collect())
        }
        GExpr::Or(left, right) => {
            let l = eval_gexpr(ev, left, units)?;
            let r = eval_gexpr(ev, right, units)?;
            Ok((0..n)
                .map(|i| {
                    let (lt, rt) = (truth(&l[i]), truth(&r[i]));
                    bool_value(match (lt, rt) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    })
                })
                .collect())
        }
        GExpr::Binary { left, op, right } => {
            let l = eval_gexpr(ev, left, units)?;
            let r = eval_gexpr(ev, right, units)?;
            (0..n).map(|i| eval_binary(&l[i], *op, &r[i]).map_err(|_| Unvec)).collect()
        }
        GExpr::Unary { op, expr } => {
            let v = eval_gexpr(ev, expr, units)?;
            (0..n).map(|i| eval_unary(*op, &v[i]).map_err(|_| Unvec)).collect()
        }
    }
}

/// Reduce one aggregate over the segment `[start, end)` of the evaluated
/// argument column. Typed kernels handle the hot numeric cases; everything
/// else gathers the non-NULL values and defers to [`finish_aggregate`],
/// whose result — and NULL-skipping, empty-input, and overflow semantics —
/// the kernels replicate exactly.
fn reduce_segment(
    name: &str,
    distinct: bool,
    col: &VCol,
    start: usize,
    end: usize,
) -> Result<Value, Unvec> {
    if !distinct {
        match col {
            VCol::I64 { vals, valid } => return reduce_i64(name, vals, valid, start, end),
            VCol::F64 { vals, valid } => return reduce_f64(name, vals, valid, start, end),
            _ => {}
        }
        if name.eq_ignore_ascii_case("COUNT") {
            let n = (start..end).filter(|&i| !matches!(col.value_at(i), Value::Null)).count();
            return Ok(Value::Int(n as i64));
        }
    }
    let values: Vec<Value> = (start..end)
        .map(|i| col.value_at(i))
        .filter(|v| !v.is_null())
        .collect();
    finish_aggregate(name, distinct, values).map_err(|_| Unvec)
}

/// Typed aggregate kernel over an `i64` slice with validity.
fn reduce_i64(
    name: &str,
    vals: &[i64],
    valid: &Bitmap,
    start: usize,
    end: usize,
) -> Result<Value, Unvec> {
    let live = (start..end).filter(|&i| valid.get(i));
    // Matched without uppercasing: this runs once per group span, and a
    // per-span String would be the grouped path's only hot allocation.
    if name.eq_ignore_ascii_case("COUNT") {
        return Ok(Value::Int(live.count() as i64));
    }
    let mut n = 0u64;
    if name.eq_ignore_ascii_case("SUM") || name.eq_ignore_ascii_case("AVG") {
        // Mirror `finish_aggregate`: an exact integer running sum (its
        // overflow is the statement's overflow) plus an f64 sum
        // accumulated in input order for AVG.
        let mut int_sum: i64 = 0;
        let mut sum = 0.0f64;
        for i in live {
            int_sum = int_sum.checked_add(vals[i]).ok_or(Unvec)?;
            sum += vals[i] as f64;
            n += 1;
        }
        return Ok(match (n, name.eq_ignore_ascii_case("AVG")) {
            (0, _) => Value::Null,
            (_, true) => Value::Float(sum / n as f64),
            (_, false) => Value::Int(int_sum),
        });
    }
    if name.eq_ignore_ascii_case("MIN") || name.eq_ignore_ascii_case("MAX") {
        let want_min = name.eq_ignore_ascii_case("MIN");
        let mut best: Option<i64> = None;
        for i in live {
            let v = vals[i];
            best = Some(match best {
                None => v,
                Some(b) if (want_min && v < b) || (!want_min && v > b) => v,
                Some(b) => b,
            });
        }
        return Ok(best.map_or(Value::Null, Value::Int));
    }
    Err(Unvec)
}

/// Typed aggregate kernel over an `f64` slice with validity. Comparisons
/// use `partial_cmp` with keep-on-incomparable, matching the scalar fold's
/// `sql_cmp` (a NaN never displaces the running best, and a NaN first
/// element is kept).
fn reduce_f64(
    name: &str,
    vals: &[f64],
    valid: &Bitmap,
    start: usize,
    end: usize,
) -> Result<Value, Unvec> {
    let live = (start..end).filter(|&i| valid.get(i));
    // As in `reduce_i64`: no uppercased String per span.
    if name.eq_ignore_ascii_case("COUNT") {
        return Ok(Value::Int(live.count() as i64));
    }
    let mut n = 0u64;
    if name.eq_ignore_ascii_case("SUM") || name.eq_ignore_ascii_case("AVG") {
        let mut sum = 0.0f64;
        for i in live {
            sum += vals[i];
            n += 1;
        }
        return Ok(match (n, name.eq_ignore_ascii_case("AVG")) {
            (0, _) => Value::Null,
            (_, true) => Value::Float(sum / n as f64),
            (_, false) => Value::Float(sum),
        });
    }
    if name.eq_ignore_ascii_case("MIN") || name.eq_ignore_ascii_case("MAX") {
        let want = if name.eq_ignore_ascii_case("MIN") {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        };
        let mut best: Option<f64> = None;
        for i in live {
            let v = vals[i];
            best = Some(match best {
                None => v,
                Some(b) if v.partial_cmp(&b) == Some(want) => v,
                Some(b) => b,
            });
        }
        return Ok(best.map_or(Value::Null, Value::Float));
    }
    Err(Unvec)
}

