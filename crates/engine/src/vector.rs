//! Batch-at-a-time columnar execution of [`CompiledPlan`]s.
//!
//! The row-at-a-time plan runner ([`crate::plan::Runner`]) clones every
//! table row on scan, materializes every join output row, and evaluates
//! expressions one row at a time. This module executes the *same* compiled
//! IR over the columnar table mirrors built by [`crate::catalog::Table::
//! columnar`]: scans are refcount bumps, joins carry row ids instead of
//! cloned rows, predicates evaluate [`CExpr`] kernels over column slices
//! into selection vectors, and rows are materialized only at final
//! projection.
//!
//! # Equivalence contract
//!
//! The vectorized path promises **byte-identical** behavior to the
//! row-at-a-time runner: the same `ResultSet`s, the same `EngineError`s
//! (including which error surfaces first), and the same
//! [`ExecLimits`](crate::ExecLimits) accounting — a finite budget trips at
//! the identical logical row. Two mechanisms make this cheap to guarantee:
//!
//! 1. **Pure-then-commit evaluation.** Vectorized expression evaluation is
//!    side-effect free: no meter charges, no telemetry, no subquery runs.
//!    Any node that *could* diverge — a subquery, a frozen plan-time error,
//!    or any per-row kernel error (overflow, type error) — aborts the
//!    vector attempt with [`Unvec`], and the affected scope is re-run
//!    through the scalar runner, which **is** the oracle semantics. Because
//!    vector evaluation is unmasked (it evaluates both `AND`/`OR` arms,
//!    every `CASE` branch, every `IN` list item), it evaluates a superset
//!    of what the short-circuiting scalar path evaluates, so every scalar
//!    error is seen as a vector abort — spurious aborts merely cost a
//!    scalar replay, never a wrong answer.
//! 2. **Identical charge sequences.** Bulk charges (scan, filter, group)
//!    happen at the same sequence points as the row path; per-row charges
//!    (hash-join probe) run in the same row order. Fallbacks are decided
//!    *before* the first charge of the affected scope, so a delegated scope
//!    replays the row path's exact charge/error interleaving.
//!
//! The nested-loop interpreter ([`crate::execute_with`]) and the row plan
//! runner remain available (`ExecOptions { vectorized: false, .. }`) as
//! differential-testing oracles; `tests/vector_equivalence.rs` fuzzes the
//! three against each other.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use snails_obs::Metric as Obs;
use snails_sql::{BinOp, JoinKind, UnionKind};

use crate::batch::{Bitmap, ColData, ColumnSet, Dict};
use crate::catalog::Database;
use crate::error::EngineError;
use crate::exec::{
    bool_value, eval_binary, eval_unary, finish_aggregate, like_match, record_statement,
    scalar_fn, truth, ExecOptions,
};
use crate::plan::{
    AggArg, CArg, CExpr, CItem, CJoin, COrder, CSelect, CSource, CUnit, CompiledPlan, ExprId,
    Frame, GExpr, Runner,
};
use crate::result::ResultSet;
use crate::value::{HashKey, Value};

/// Row-id sentinel for the NULL-padded side of an outer join.
pub(crate) const NONE_RID: u32 = u32::MAX;

/// Execute `plan` through the vectorized engine. Entry point for
/// [`CompiledPlan::execute`] when `opts.vectorized` is set.
pub(crate) fn execute_plan(
    plan: &CompiledPlan,
    db: &Database,
    opts: ExecOptions,
) -> Result<ResultSet, EngineError> {
    let runner = Runner::new(db, opts);
    let result = run_select(&runner, &plan.root);
    record_statement(&runner.meter, &result);
    result
}

// ---------------------------------------------------------------------------
// Relations: column sources + row-id permutations
// ---------------------------------------------------------------------------

/// A relation in late-materialized form: one or more columnar sources plus,
/// per source, a row-id vector mapping each logical row to a physical row of
/// that source (`NONE_RID` ≙ the all-NULL pad of an outer join). Joins and
/// filters permute row ids; values are gathered on demand.
pub(crate) struct Rel {
    pub(crate) srcs: Vec<Arc<ColumnSet>>,
    /// `rowids[s][i]` = physical row of source `s` backing logical row `i`.
    pub(crate) rowids: Vec<Vec<u32>>,
    pub(crate) len: usize,
    /// Combined-row column `c` lives at `col_map[c] = (src, local column)`.
    pub(crate) col_map: Vec<(u32, u32)>,
    pub(crate) width: usize,
}

impl Rel {
    /// Wrap one columnar source 1:1 (a base-table scan).
    pub(crate) fn from_set(cols: Arc<ColumnSet>) -> Rel {
        let len = cols.len;
        let width = cols.width();
        Rel {
            srcs: vec![cols],
            rowids: vec![(0..len as u32).collect()],
            len,
            col_map: (0..width).map(|c| (0u32, c as u32)).collect(),
            width,
        }
    }

    /// Columnarize materialized rows (derived tables, join fallbacks).
    fn from_rows(width: usize, rows: &[Vec<Value>]) -> Rel {
        Rel::from_set(Arc::new(ColumnSet::from_rows(width, rows)))
    }

    /// The zero-width single-row relation (`SELECT` with no `FROM`).
    fn unit() -> Rel {
        Rel { srcs: Vec::new(), rowids: Vec::new(), len: 1, col_map: Vec::new(), width: 0 }
    }

    /// Keep only the logical rows in `keep`, in order.
    pub(crate) fn keep(self, keep: &[u32]) -> Rel {
        let rowids = self
            .rowids
            .iter()
            .map(|ids| keep.iter().map(|&i| ids[i as usize]).collect())
            .collect();
        Rel { srcs: self.srcs, rowids, len: keep.len(), col_map: self.col_map, width: self.width }
    }

    /// Reconstruct logical row `i` as the row path's combined row.
    pub(crate) fn materialize_row(&self, i: usize) -> Vec<Value> {
        self.col_map
            .iter()
            .map(|&(s, c)| {
                let rid = self.rowids[s as usize][i];
                if rid == NONE_RID {
                    Value::Null
                } else {
                    self.srcs[s as usize].cols[c as usize].value(rid as usize)
                }
            })
            .collect()
    }

    /// Reconstruct every logical row (fallback to the scalar runner).
    pub(crate) fn materialize_all(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.materialize_row(i)).collect()
    }

    /// Gather combined-row column `col` at the selected logical rows into a
    /// typed vector.
    pub(crate) fn gather(&self, col: usize, sel: &[u32]) -> VCol {
        let (s, c) = self.col_map[col];
        let ids = &self.rowids[s as usize];
        match &self.srcs[s as usize].cols[c as usize] {
            ColData::I64 { vals, valid } => {
                let mut out = Vec::with_capacity(sel.len());
                let mut v = Bitmap::with_capacity(sel.len());
                for &i in sel {
                    let rid = ids[i as usize];
                    if rid != NONE_RID && valid.get(rid as usize) {
                        out.push(vals[rid as usize]);
                        v.push(true);
                    } else {
                        out.push(0);
                        v.push(false);
                    }
                }
                VCol::I64 { vals: out, valid: v }
            }
            ColData::F64 { vals, valid } => {
                let mut out = Vec::with_capacity(sel.len());
                let mut v = Bitmap::with_capacity(sel.len());
                for &i in sel {
                    let rid = ids[i as usize];
                    if rid != NONE_RID && valid.get(rid as usize) {
                        out.push(vals[rid as usize]);
                        v.push(true);
                    } else {
                        out.push(0.0);
                        v.push(false);
                    }
                }
                VCol::F64 { vals: out, valid: v }
            }
            ColData::Str { codes, valid, dict } => {
                let mut out = Vec::with_capacity(sel.len());
                let mut v = Bitmap::with_capacity(sel.len());
                for &i in sel {
                    let rid = ids[i as usize];
                    if rid != NONE_RID && valid.get(rid as usize) {
                        out.push(codes[rid as usize]);
                        v.push(true);
                    } else {
                        out.push(0);
                        v.push(false);
                    }
                }
                VCol::Str { codes: out, valid: v, dict: Arc::clone(dict) }
            }
            ColData::Mixed { vals } => VCol::Vals(
                sel.iter()
                    .map(|&i| {
                        let rid = ids[i as usize];
                        if rid == NONE_RID {
                            Value::Null
                        } else {
                            vals[rid as usize].clone()
                        }
                    })
                    .collect(),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized values
// ---------------------------------------------------------------------------

/// An evaluated expression over a selection: one entry per selected row
/// (`Const` broadcasts). Booleans are `I64` 0/1 with NULL as invalid,
/// matching [`bool_value`].
pub(crate) enum VCol {
    Const(Value),
    I64 { vals: Vec<i64>, valid: Bitmap },
    F64 { vals: Vec<f64>, valid: Bitmap },
    Str { codes: Vec<u32>, valid: Bitmap, dict: Arc<Dict> },
    Vals(Vec<Value>),
}

/// Vector evaluation aborted: the expression needs the scalar runner
/// (subquery, frozen error, or a row-level kernel error). Purely a control
/// signal — the scalar replay recomputes and surfaces the exact error.
pub(crate) struct Unvec;

pub(crate) type VRes = Result<VCol, Unvec>;

impl VCol {
    /// Reconstruct the value at selection position `i`.
    pub(crate) fn value_at(&self, i: usize) -> Value {
        match self {
            VCol::Const(v) => v.clone(),
            VCol::I64 { vals, valid } => {
                if valid.get(i) {
                    Value::Int(vals[i])
                } else {
                    Value::Null
                }
            }
            VCol::F64 { vals, valid } => {
                if valid.get(i) {
                    Value::Float(vals[i])
                } else {
                    Value::Null
                }
            }
            VCol::Str { codes, valid, dict } => {
                if valid.get(i) {
                    Value::Str(Arc::clone(&dict.strs[codes[i] as usize]))
                } else {
                    Value::Null
                }
            }
            VCol::Vals(vals) => vals[i].clone(),
        }
    }

    /// [`truth`] at selection position `i`, without materializing.
    pub(crate) fn truth_at(&self, i: usize) -> Option<bool> {
        match self {
            VCol::Const(v) => truth(v),
            VCol::I64 { vals, valid } => valid.get(i).then(|| vals[i] != 0),
            VCol::F64 { vals, valid } => valid.get(i).then(|| vals[i] != 0.0),
            VCol::Str { valid, .. } => valid.get(i).then_some(true),
            VCol::Vals(vals) => truth(&vals[i]),
        }
    }
}

/// Build a boolean column from per-row three-valued results.
fn bool_col(bits: impl Iterator<Item = Option<bool>>, cap: usize) -> VCol {
    let mut vals = Vec::with_capacity(cap);
    let mut valid = Bitmap::with_capacity(cap);
    for b in bits {
        match b {
            Some(x) => {
                vals.push(i64::from(x));
                valid.push(true);
            }
            None => {
                vals.push(0);
                valid.push(false);
            }
        }
    }
    VCol::I64 { vals, valid }
}

// ---------------------------------------------------------------------------
// Comparison cells (allocation-free sql_cmp over typed columns)
// ---------------------------------------------------------------------------

/// A borrowed scalar view for comparisons. `LowStr` is already lowercase
/// (dictionary `lower`, or a pre-lowered constant); `RawStr` still needs
/// lowercasing (values out of `Mixed` columns).
enum Cell<'a> {
    Null,
    Int(i64),
    Float(f64),
    LowStr(&'a str),
    RawStr(&'a str),
}

impl<'a> Cell<'a> {
    fn num(&self) -> Option<f64> {
        match self {
            Cell::Int(n) => Some(*n as f64),
            Cell::Float(x) => Some(*x),
            _ => None,
        }
    }
}

/// Mirror of [`Value::sql_cmp`] over cells: NULL propagates, Int×Int exact,
/// text case-insensitive, mixed numeric via f64, text×number incomparable.
fn cmp_cells(a: &Cell<'_>, b: &Cell<'_>) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Cell::Null, _) | (_, Cell::Null) => None,
        (Cell::Int(x), Cell::Int(y)) => Some(x.cmp(y)),
        (Cell::LowStr(x), Cell::LowStr(y)) => Some(x.cmp(y)),
        (Cell::LowStr(_) | Cell::RawStr(_), Cell::LowStr(_) | Cell::RawStr(_)) => {
            let lower = |c: &Cell<'_>| match c {
                Cell::LowStr(s) => (*s).to_owned(),
                Cell::RawStr(s) => s.to_ascii_lowercase(),
                _ => unreachable!(),
            };
            Some(lower(a).cmp(&lower(b)))
        }
        _ => a.num()?.partial_cmp(&b.num()?),
    }
}

/// The cell at selection position `i`. `const_lower` carries the pre-lowered
/// form of a constant string column, so broadcast constants compare without
/// per-row allocation.
fn cell_at<'a>(col: &'a VCol, i: usize, const_lower: &'a Option<String>) -> Cell<'a> {
    match col {
        VCol::Const(v) => match v {
            Value::Null => Cell::Null,
            Value::Int(n) => Cell::Int(*n),
            Value::Float(x) => Cell::Float(*x),
            Value::Str(_) => {
                Cell::LowStr(const_lower.as_deref().expect("const string pre-lowered"))
            }
        },
        VCol::I64 { vals, valid } => {
            if valid.get(i) {
                Cell::Int(vals[i])
            } else {
                Cell::Null
            }
        }
        VCol::F64 { vals, valid } => {
            if valid.get(i) {
                Cell::Float(vals[i])
            } else {
                Cell::Null
            }
        }
        VCol::Str { codes, valid, dict } => {
            if valid.get(i) {
                Cell::LowStr(&dict.lower[codes[i] as usize])
            } else {
                Cell::Null
            }
        }
        VCol::Vals(vals) => match &vals[i] {
            Value::Null => Cell::Null,
            Value::Int(n) => Cell::Int(*n),
            Value::Float(x) => Cell::Float(*x),
            Value::Str(s) => Cell::RawStr(s),
        },
    }
}

/// Pre-lowered form of a constant string column, computed once per kernel.
fn const_lower(col: &VCol) -> Option<String> {
    match col {
        VCol::Const(Value::Str(s)) => Some(s.to_ascii_lowercase()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Hash/group keys
// ---------------------------------------------------------------------------

/// One key component with [`HashKey`]'s equivalence classes: numerics
/// unified on normalized f64 bits, text lowercased (a refcount bump out of
/// the dictionary's precomputed `lower`, not a fresh `String`).
#[derive(Debug, PartialEq, Eq, Hash, Clone)]
pub(crate) enum VKey {
    Null,
    Num(u64),
    Str(Arc<str>),
}

impl VKey {
    pub(crate) fn num(x: f64) -> VKey {
        let x = if x == 0.0 { 0.0 } else { x };
        VKey::Num(x.to_bits())
    }

    /// Unmatchable as a *join* key (NULL or NaN), mirroring the row hash
    /// join's `side_key`. Group keys have no such rule — NULL groups with
    /// itself and NaN groups by bit pattern, as in [`Value::hash_key`].
    pub(crate) fn unmatchable(&self) -> bool {
        match self {
            VKey::Null => true,
            VKey::Num(bits) => f64::from_bits(*bits).is_nan(),
            VKey::Str(_) => false,
        }
    }
}

/// Multiplicative mixer for pre-hashed `u64` keys (single-column numeric
/// join/group keys). SipHash dominates the per-row cost of the build,
/// probe, and group loops at millions of rows; key *bits* already encode
/// the full equivalence class ([`VKey::num`]), so a strong mix of the bits
/// is enough. Lookup order never depends on hasher output — emission and
/// group order come from build/insertion order — so this cannot perturb
/// determinism.
#[derive(Default)]
struct U64Hasher(u64);

impl std::hash::Hasher for U64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut x = self.0 ^ n;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        x ^= x >> 32;
        self.0 = x;
    }
}

type FastMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<U64Hasher>>;

/// Join-unmatchable sentinel for pre-hashed numeric keys. `u64::MAX` is a
/// NaN bit pattern, which [`VKey::num`] can only produce for NaN floats —
/// and NaN is itself unmatchable — so the sentinel never collides with a
/// live key.
const DEAD_KEY: u64 = u64::MAX;

/// The key component at selection position `i`.
pub(crate) fn key_at(col: &VCol, i: usize) -> VKey {
    match col {
        VCol::Const(v) => match v {
            Value::Null => VKey::Null,
            Value::Int(n) => VKey::num(*n as f64),
            Value::Float(x) => VKey::num(*x),
            Value::Str(s) => VKey::Str(Arc::from(s.to_ascii_lowercase())),
        },
        VCol::I64 { vals, valid } => {
            if valid.get(i) {
                VKey::num(vals[i] as f64)
            } else {
                VKey::Null
            }
        }
        VCol::F64 { vals, valid } => {
            if valid.get(i) {
                VKey::num(vals[i])
            } else {
                VKey::Null
            }
        }
        VCol::Str { codes, valid, dict } => {
            if valid.get(i) {
                VKey::Str(Arc::clone(&dict.lower[codes[i] as usize]))
            } else {
                VKey::Null
            }
        }
        VCol::Vals(vals) => match &vals[i] {
            Value::Null => VKey::Null,
            Value::Int(n) => VKey::num(*n as f64),
            Value::Float(x) => VKey::num(*x),
            Value::Str(s) => VKey::Str(Arc::from(s.to_ascii_lowercase())),
        },
    }
}

/// A full join key: the single-component case skips the inner `Vec`.
#[derive(PartialEq, Eq, Hash)]
pub(crate) enum JoinKey {
    One(VKey),
    Many(Vec<VKey>),
}

// ---------------------------------------------------------------------------
// Scalar-only analysis
// ---------------------------------------------------------------------------

/// Per-node "must run through the scalar runner" flags for a block's arena:
/// true when the subtree contains a subquery, a frozen [`CExpr::Err`], an
/// outer-frame slot, or a construct that always errors. One forward pass —
/// the arena is post-order, so children precede parents.
pub(crate) fn scalar_flags(sel: &CSelect) -> Vec<bool> {
    let mut f = Vec::with_capacity(sel.arena.len());
    for node in &sel.arena {
        let flag = match node {
            CExpr::Err(_)
            | CExpr::Subquery { .. }
            | CExpr::InSubquery { .. }
            | CExpr::Exists { .. } => true,
            CExpr::Slot { up, .. } => *up > 0,
            CExpr::Const(_) => false,
            CExpr::Unary { expr, .. } | CExpr::IsNull { expr, .. } | CExpr::Like { expr, .. } => {
                f[*expr]
            }
            CExpr::And { left, right }
            | CExpr::Or { left, right }
            | CExpr::Binary { left, right, .. } => f[*left] || f[*right],
            CExpr::Func { args, .. } => args.iter().any(|a| match a {
                CArg::Wildcard => true,
                CArg::Expr(id) => f[*id],
            }),
            CExpr::InList { expr, list, .. } => f[*expr] || list.iter().any(|&i| f[i]),
            CExpr::Between { expr, low, high, .. } => f[*expr] || f[*low] || f[*high],
            CExpr::Case { operand, branches, else_expr } => {
                operand.map(|o| f[o]).unwrap_or(false)
                    || branches.iter().any(|&(w, t)| f[w] || f[t])
                    || else_expr.map(|e| f[e]).unwrap_or(false)
            }
        };
        f.push(flag);
    }
    f
}

/// True when a unit expression cannot be vectorized.
fn unit_scalar(u: &CUnit, flags: &[bool]) -> bool {
    match u {
        CUnit::Row(id) => flags[*id],
        CUnit::Grouped(g) => gexpr_scalar(g, flags),
    }
}

fn gexpr_scalar(g: &GExpr, flags: &[bool]) -> bool {
    match g {
        GExpr::Agg { arg, .. } => match arg {
            AggArg::CountStar => false,
            AggArg::Expr(id) => flags[*id],
            AggArg::StarInvalid | AggArg::Missing => true,
        },
        GExpr::And(l, r) | GExpr::Or(l, r) => gexpr_scalar(l, flags) || gexpr_scalar(r, flags),
        GExpr::Binary { left, right, .. } => {
            gexpr_scalar(left, flags) || gexpr_scalar(right, flags)
        }
        GExpr::Unary { expr, .. } => gexpr_scalar(expr, flags),
        GExpr::Row(id) => flags[*id],
    }
}

// ---------------------------------------------------------------------------
// Vectorized expression evaluation (pure: no charges, no subqueries)
// ---------------------------------------------------------------------------

/// Evaluator for one block's arena over one relation. All evaluation is
/// unmasked and side-effect free; see the module docs for why that is
/// sufficient for exact equivalence.
pub(crate) struct Ev<'a> {
    pub(crate) sel: &'a CSelect,
    pub(crate) rel: &'a Rel,
    pub(crate) flags: &'a [bool],
}

impl<'a> Ev<'a> {
    /// Evaluate node `id` at the selected logical rows.
    pub(crate) fn eval(&self, id: ExprId, rows: &[u32]) -> VRes {
        if self.flags[id] {
            return Err(Unvec);
        }
        match &self.sel.arena[id] {
            CExpr::Const(v) => Ok(VCol::Const(v.clone())),
            CExpr::Slot { idx, .. } => Ok(self.rel.gather(*idx, rows)),
            CExpr::Err(_)
            | CExpr::Subquery { .. }
            | CExpr::InSubquery { .. }
            | CExpr::Exists { .. } => Err(Unvec),
            CExpr::Unary { op, expr } => {
                let e = self.eval(*expr, rows)?;
                match op {
                    snails_sql::UnaryOp::Not => Ok(bool_col(
                        (0..rows.len()).map(|i| e.truth_at(i).map(|b| !b)),
                        rows.len(),
                    )),
                    snails_sql::UnaryOp::Neg => {
                        let mut out = Vec::with_capacity(rows.len());
                        for i in 0..rows.len() {
                            out.push(eval_unary(*op, &e.value_at(i)).map_err(|_| Unvec)?);
                        }
                        Ok(VCol::Vals(out))
                    }
                }
            }
            CExpr::And { left, right } => {
                let l = self.eval(*left, rows)?;
                let r = self.eval(*right, rows)?;
                Ok(bool_col(
                    (0..rows.len()).map(|i| match (l.truth_at(i), r.truth_at(i)) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    }),
                    rows.len(),
                ))
            }
            CExpr::Or { left, right } => {
                let l = self.eval(*left, rows)?;
                let r = self.eval(*right, rows)?;
                Ok(bool_col(
                    (0..rows.len()).map(|i| match (l.truth_at(i), r.truth_at(i)) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    }),
                    rows.len(),
                ))
            }
            CExpr::Binary { left, op, right } => {
                let l = self.eval(*left, rows)?;
                let r = self.eval(*right, rows)?;
                if op.is_comparison() {
                    Ok(compare(&l, *op, &r, rows.len()))
                } else {
                    let mut out = Vec::with_capacity(rows.len());
                    for i in 0..rows.len() {
                        out.push(
                            eval_binary(&l.value_at(i), *op, &r.value_at(i))
                                .map_err(|_| Unvec)?,
                        );
                    }
                    Ok(VCol::Vals(out))
                }
            }
            CExpr::Func { name, args } => {
                let mut cols = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        CArg::Wildcard => return Err(Unvec),
                        CArg::Expr(id) => cols.push(self.eval(*id, rows)?),
                    }
                }
                let mut out = Vec::with_capacity(rows.len());
                let mut vals = Vec::with_capacity(cols.len());
                for i in 0..rows.len() {
                    vals.clear();
                    vals.extend(cols.iter().map(|c| c.value_at(i)));
                    out.push(scalar_fn(name, &vals).map_err(|_| Unvec)?);
                }
                Ok(VCol::Vals(out))
            }
            CExpr::IsNull { expr, negated } => {
                let e = self.eval(*expr, rows)?;
                Ok(bool_col(
                    (0..rows.len()).map(|i| {
                        let is_null = match &e {
                            VCol::Const(v) => v.is_null(),
                            VCol::I64 { valid, .. }
                            | VCol::F64 { valid, .. }
                            | VCol::Str { valid, .. } => !valid.get(i),
                            VCol::Vals(vals) => vals[i].is_null(),
                        };
                        Some(is_null != *negated)
                    }),
                    rows.len(),
                ))
            }
            CExpr::InList { expr, list, negated } => {
                let v = self.eval(*expr, rows)?;
                let items: Vec<VCol> =
                    list.iter().map(|&i| self.eval(i, rows)).collect::<Result<_, _>>()?;
                let vl = const_lower(&v);
                let il: Vec<Option<String>> = items.iter().map(const_lower).collect();
                Ok(bool_col(
                    (0..rows.len()).map(|i| {
                        let c = cell_at(&v, i, &vl);
                        let mut saw_null = matches!(c, Cell::Null);
                        let mut found = false;
                        for (item, lower) in items.iter().zip(&il) {
                            match cmp_cells(&c, &cell_at(item, i, lower)) {
                                Some(std::cmp::Ordering::Equal) => {
                                    found = true;
                                    break;
                                }
                                Some(_) => {}
                                None => saw_null = true,
                            }
                        }
                        let b = if found {
                            Some(true)
                        } else if saw_null {
                            None
                        } else {
                            Some(false)
                        };
                        b.map(|x| x != *negated)
                    }),
                    rows.len(),
                ))
            }
            CExpr::Between { expr, low, high, negated } => {
                let v = self.eval(*expr, rows)?;
                let lo = self.eval(*low, rows)?;
                let hi = self.eval(*high, rows)?;
                let (vl, lol, hil) = (const_lower(&v), const_lower(&lo), const_lower(&hi));
                Ok(bool_col(
                    (0..rows.len()).map(|i| {
                        let c = cell_at(&v, i, &vl);
                        let ge = cmp_cells(&c, &cell_at(&lo, i, &lol))
                            .map(|o| o != std::cmp::Ordering::Less);
                        let le = cmp_cells(&c, &cell_at(&hi, i, &hil))
                            .map(|o| o != std::cmp::Ordering::Greater);
                        let b = match (ge, le) {
                            (Some(a), Some(b)) => Some(a && b),
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            _ => None,
                        };
                        b.map(|x| x != *negated)
                    }),
                    rows.len(),
                ))
            }
            CExpr::Like { expr, pattern, negated } => {
                let e = self.eval(*expr, rows)?;
                match &e {
                    VCol::Str { codes, valid, dict } => {
                        // Memoize the match per dictionary code: each
                        // distinct string is tested once, against the
                        // precomputed lowercase form.
                        let mut memo: Vec<Option<bool>> = vec![None; dict.len()];
                        Ok(bool_col(
                            (0..rows.len()).map(|i| {
                                if !valid.get(i) {
                                    return None;
                                }
                                let code = codes[i] as usize;
                                let m = *memo[code].get_or_insert_with(|| {
                                    like_match(&dict.lower[code], pattern)
                                });
                                Some(m != *negated)
                            }),
                            rows.len(),
                        ))
                    }
                    VCol::Const(Value::Null) => Ok(VCol::Const(Value::Null)),
                    VCol::Const(Value::Str(s)) => {
                        let m = like_match(&s.to_ascii_lowercase(), pattern);
                        Ok(VCol::Const(bool_value(Some(m != *negated))))
                    }
                    VCol::Const(_) => Err(Unvec),
                    VCol::I64 { valid, .. } | VCol::F64 { valid, .. } => {
                        // Any valid row is a type error in the row path.
                        if (0..rows.len()).any(|i| valid.get(i)) {
                            Err(Unvec)
                        } else {
                            Ok(VCol::Const(Value::Null))
                        }
                    }
                    VCol::Vals(vals) => {
                        let mut out = Vec::with_capacity(rows.len());
                        for v in vals.iter().take(rows.len()) {
                            match v {
                                Value::Null => out.push(Value::Null),
                                Value::Str(s) => {
                                    let m = like_match(&s.to_ascii_lowercase(), pattern);
                                    out.push(bool_value(Some(m != *negated)));
                                }
                                _ => return Err(Unvec),
                            }
                        }
                        Ok(VCol::Vals(out))
                    }
                }
            }
            CExpr::Case { operand, branches, else_expr } => {
                let op_col = match operand {
                    Some(o) => Some(self.eval(*o, rows)?),
                    None => None,
                };
                let mut whens = Vec::with_capacity(branches.len());
                let mut thens = Vec::with_capacity(branches.len());
                for &(w, t) in branches {
                    whens.push(self.eval(w, rows)?);
                    thens.push(self.eval(t, rows)?);
                }
                let else_col = match else_expr {
                    Some(e) => Some(self.eval(*e, rows)?),
                    None => None,
                };
                let opl = op_col.as_ref().and_then(const_lower);
                let wl: Vec<Option<String>> = whens.iter().map(const_lower).collect();
                let mut out = Vec::with_capacity(rows.len());
                for i in 0..rows.len() {
                    let mut chosen: Option<Value> = None;
                    for (bi, w) in whens.iter().enumerate() {
                        let hit = match &op_col {
                            Some(oc) => {
                                cmp_cells(&cell_at(oc, i, &opl), &cell_at(w, i, &wl[bi]))
                                    == Some(std::cmp::Ordering::Equal)
                            }
                            None => w.truth_at(i) == Some(true),
                        };
                        if hit {
                            chosen = Some(thens[bi].value_at(i));
                            break;
                        }
                    }
                    out.push(chosen.unwrap_or_else(|| {
                        else_col.as_ref().map(|e| e.value_at(i)).unwrap_or(Value::Null)
                    }));
                }
                Ok(VCol::Vals(out))
            }
        }
    }
}

/// Vectorized three-valued comparison kernel.
fn compare(l: &VCol, op: BinOp, r: &VCol, n: usize) -> VCol {
    use std::cmp::Ordering;
    let (ll, rl) = (const_lower(l), const_lower(r));
    bool_col(
        (0..n).map(|i| {
            cmp_cells(&cell_at(l, i, &ll), &cell_at(r, i, &rl)).map(|o| match op {
                BinOp::Eq => o == Ordering::Equal,
                BinOp::NotEq => o != Ordering::Equal,
                BinOp::Lt => o == Ordering::Less,
                BinOp::LtEq => o != Ordering::Greater,
                BinOp::Gt => o == Ordering::Greater,
                BinOp::GtEq => o != Ordering::Less,
                _ => unreachable!("is_comparison"),
            })
        }),
        n,
    )
}

// ---------------------------------------------------------------------------
// Block execution
// ---------------------------------------------------------------------------

/// Depth-guarded vectorized execution of one block, mirroring
/// [`Runner::run_select`].
fn run_select(r: &Runner<'_>, sel: &CSelect) -> Result<ResultSet, EngineError> {
    r.meter.enter_block()?;
    let result = run_select_inner(r, sel);
    r.meter.exit_block();
    result
}

fn run_select_inner(r: &Runner<'_>, sel: &CSelect) -> Result<ResultSet, EngineError> {
    let batch = r.opts.batch_size.max(1);
    let flags = scalar_flags(sel);

    // FROM and JOINs.
    let mut rel = match &sel.source {
        Some(src) => load_source(r, src, batch)?,
        None => Rel::unit(),
    };
    for join in &sel.joins {
        let right = load_source(r, &join.source, batch)?;
        rel = join_step(r, sel, rel, right, join, batch, &flags)?;
        snails_obs::observe(Obs::EngineOpJoinRows, rel.len as u64);
    }

    // WHERE.
    if let Some(pred) = sel.where_clause {
        rel = filter(r, sel, rel, pred, batch, &flags)?;
    }

    let mut result = tail(r, sel, &rel, &flags)?;

    // UNION [ALL] — mirror of the row path, recursing vectorized.
    if let Some((kind, rhs)) = &sel.union {
        let rhs_rs = run_select(r, rhs)?;
        if rhs_rs.column_count() != result.column_count() {
            return Err(EngineError::type_error(format!(
                "UNION arity mismatch: {} vs {} columns",
                result.column_count(),
                rhs_rs.column_count()
            )));
        }
        result.rows.extend(rhs_rs.rows);
        if *kind == UnionKind::Distinct {
            let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
            result.rows.retain(|row| seen.insert(row.iter().map(Value::hash_key).collect()));
        }
    }

    if let Some(budget) = r.opts.limits.max_output_rows {
        if result.rows.len() as u64 > budget {
            return Err(EngineError::resource_exhausted("output row budget", budget));
        }
    }

    Ok(result)
}

/// Load a `FROM`/`JOIN` source as a relation. Base tables are a refcount
/// bump of the cached columnar mirror — no row clone.
fn load_source(r: &Runner<'_>, src: &CSource, batch: usize) -> Result<Rel, EngineError> {
    match src {
        CSource::Table { name, .. } => {
            let t = r
                .db
                .table(name)
                .ok_or_else(|| EngineError::UnknownTable { name: name.clone() })?;
            let cols = t.columnar();
            r.meter.charge_steps(cols.len as u64)?;
            snails_obs::observe(Obs::EngineOpScanRows, cols.len as u64);
            let batches = cols.len.div_ceil(batch) as u64;
            snails_obs::add(Obs::EngineVecBatches, batches);
            snails_obs::add(Obs::EngineOpScanBatches, batches);
            for col in &cols.cols {
                if let ColData::Str { dict, .. } = col {
                    snails_obs::observe(Obs::EngineVecDictEntries, dict.len() as u64);
                }
            }
            Ok(Rel::from_set(cols))
        }
        CSource::Sub { plan, width } => {
            let rs = run_select(r, plan)?;
            snails_obs::observe(Obs::EngineOpScanRows, rs.rows.len() as u64);
            let batches = rs.rows.len().div_ceil(batch) as u64;
            snails_obs::add(Obs::EngineVecBatches, batches);
            snails_obs::add(Obs::EngineOpScanBatches, batches);
            Ok(Rel::from_rows(*width, &rs.rows))
        }
        CSource::Missing(name) => Err(EngineError::UnknownTable { name: name.clone() }),
    }
}

/// `WHERE` over a relation: bulk step charge (as the row path), then
/// batch-at-a-time predicate evaluation into a selection vector, falling
/// back to per-row scalar evaluation for any batch the vector kernels
/// cannot prove error-free.
pub(crate) fn filter(
    r: &Runner<'_>,
    sel: &CSelect,
    rel: Rel,
    pred: ExprId,
    batch: usize,
    flags: &[bool],
) -> Result<Rel, EngineError> {
    r.meter.charge_steps(rel.len as u64)?;
    let ev = Ev { sel, rel: &rel, flags };
    let mut keep: Vec<u32> = Vec::new();
    let mut start = 0usize;
    while start < rel.len {
        let end = (start + batch).min(rel.len);
        let rows: Vec<u32> = (start as u32..end as u32).collect();
        let before = keep.len();
        let vcol = if flags[pred] { Err(Unvec) } else { ev.eval(pred, &rows) };
        match vcol {
            Ok(col) => {
                for (i, &row) in rows.iter().enumerate() {
                    if col.truth_at(i) == Some(true) {
                        keep.push(row);
                    }
                }
            }
            Err(Unvec) => {
                // Scalar replay in row order: identical evaluation (and,
                // via subqueries, identical charges) to the row path.
                for &row in &rows {
                    let vals = rel.materialize_row(row as usize);
                    let frame = Frame { row: &vals, parent: None };
                    if truth(&r.eval(sel, pred, &frame)?) == Some(true) {
                        keep.push(row);
                    }
                }
            }
        }
        snails_obs::add(Obs::EngineVecBatches, 1);
        snails_obs::add(Obs::EngineOpFilterBatches, 1);
        let kept = (keep.len() - before) as u64;
        snails_obs::observe(Obs::EngineVecSelectivityPct, kept * 100 / (end - start) as u64);
        start = end;
    }
    snails_obs::observe(Obs::EngineOpFilterRows, keep.len() as u64);
    Ok(rel.keep(&keep))
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// One join step. Equi-key joins run the vectorized build/probe over row
/// ids; everything else (non-equi `ON`, cross joins, `hash_join: false`,
/// keys the vector kernels cannot prove error-free) materializes both sides
/// and delegates to the scalar runner, whose charge/error interleaving is
/// the contract.
fn join_step(
    r: &Runner<'_>,
    sel: &CSelect,
    left: Rel,
    right: Rel,
    join: &CJoin,
    batch: usize,
    flags: &[bool],
) -> Result<Rel, EngineError> {
    let width = join.left_width + join.source.width();
    if r.opts.hash_join && join.kind != JoinKind::Cross {
        if let (Some(keys), Some(_)) = (&join.hash_keys, join.on) {
            let lk = side_keys(sel, &left, keys, true, batch, flags);
            let rk = side_keys(sel, &right, keys, false, batch, flags);
            if let (Some(lk), Some(rk)) = (lk, rk) {
                return hash_join_vec(r, left, right, join, lk, rk);
            }
            // Key evaluation needs the scalar runner: delegate the whole
            // join before any charge, so accounting replays exactly.
            let rows = r.hash_join(
                sel,
                left.materialize_all(),
                right.materialize_all(),
                join,
                keys,
                None,
            )?;
            return Ok(Rel::from_rows(width, &rows));
        }
    }
    let rows = r.nested_join(sel, left.materialize_all(), right.materialize_all(), join, None)?;
    Ok(Rel::from_rows(width, &rows))
}

/// Evaluate one side's key tuples, batch at a time. `None` aborts to the
/// scalar join (subquery in a key, or any row-level evaluation error);
/// evaluation is pure, so aborting is free. Per-row `None` entries mark
/// unmatchable keys (NULL/NaN component), as in the row path's `side_key`.
fn side_keys(
    sel: &CSelect,
    rel: &Rel,
    keys: &[(ExprId, ExprId)],
    left_side: bool,
    batch: usize,
    flags: &[bool],
) -> Option<Vec<Option<JoinKey>>> {
    let pick = |k: &(ExprId, ExprId)| if left_side { k.0 } else { k.1 };
    if keys.iter().any(|k| flags[pick(k)]) {
        return None;
    }
    let ev = Ev { sel, rel, flags };
    let mut out: Vec<Option<JoinKey>> = Vec::with_capacity(rel.len);
    let mut start = 0usize;
    while start < rel.len {
        let end = (start + batch).min(rel.len);
        let rows: Vec<u32> = (start as u32..end as u32).collect();
        let cols: Vec<VCol> =
            keys.iter().map(|k| ev.eval(pick(k), &rows)).collect::<Result<_, _>>().ok()?;
        for i in 0..rows.len() {
            if let [col] = cols.as_slice() {
                // Single-column key: no tuple allocation.
                let k = key_at(col, i);
                out.push((!k.unmatchable()).then_some(JoinKey::One(k)));
                continue;
            }
            let mut tuple = Vec::with_capacity(cols.len());
            let mut dead = false;
            for c in &cols {
                let k = key_at(c, i);
                if k.unmatchable() {
                    dead = true;
                    break;
                }
                tuple.push(k);
            }
            out.push(if dead { None } else { Some(JoinKey::Many(tuple)) });
        }
        snails_obs::add(Obs::EngineVecBatches, 1);
        snails_obs::add(Obs::EngineOpJoinBatches, 1);
        start = end;
    }
    Some(out)
}

/// Build/probe hash join over row ids — identical structure, charge points,
/// and emission order to [`Runner::hash_join`], with keys pre-evaluated
/// (and pre-proven error-free) by [`side_keys`]. Single-column numeric keys
/// take a pre-hashed `u64` fast path; everything else hashes [`JoinKey`]s.
fn hash_join_vec(
    r: &Runner<'_>,
    left: Rel,
    right: Rel,
    join: &CJoin,
    lkeys: Vec<Option<JoinKey>>,
    rkeys: Vec<Option<JoinKey>>,
) -> Result<Rel, EngineError> {
    let emits = match (fast_bits(&lkeys), fast_bits(&rkeys)) {
        (Some(lb), Some(rb)) => {
            hash_join_pairs::<u64, std::hash::BuildHasherDefault<U64Hasher>>(
                r, join.kind, &lb, &rb,
            )?
        }
        _ => hash_join_pairs::<JoinKey, std::collections::hash_map::RandomState>(
            r, join.kind, &lkeys, &rkeys,
        )?,
    };
    Ok(combine(left, right, &emits))
}

/// Pre-hashed bits for one side's keys when every live key is a single
/// numeric component; `None` when any key is textual or composite.
fn fast_bits(keys: &[Option<JoinKey>]) -> Option<Vec<Option<u64>>> {
    keys.iter()
        .map(|k| match k {
            None => Some(None),
            Some(JoinKey::One(VKey::Num(b))) => Some(Some(*b)),
            Some(_) => None,
        })
        .collect()
}

/// The build/probe loops, generic over the key representation (`None` =
/// unmatchable). Charge points and emission order are the row path's.
fn hash_join_pairs<K: std::hash::Hash + Eq, S: std::hash::BuildHasher + Default>(
    r: &Runner<'_>,
    kind: JoinKind,
    lkeys: &[Option<K>],
    rkeys: &[Option<K>],
) -> Result<Vec<(u32, u32)>, EngineError> {
    let mut emits: Vec<(u32, u32)> = Vec::new();
    match kind {
        JoinKind::Inner | JoinKind::Left | JoinKind::Full => {
            let mut table: HashMap<&K, Vec<u32>, S> = HashMap::default();
            r.meter.charge_join(rkeys.len() as u64)?;
            for (ri, k) in rkeys.iter().enumerate() {
                if let Some(k) = k {
                    table.entry(k).or_default().push(ri as u32);
                }
            }
            let mut right_matched = vec![false; rkeys.len()];
            for (li, k) in lkeys.iter().enumerate() {
                let hits: &[u32] = match k {
                    Some(k) => table.get(k).map(Vec::as_slice).unwrap_or(&[]),
                    None => &[],
                };
                r.meter.charge_join(1 + hits.len() as u64)?;
                for &ri in hits {
                    emits.push((li as u32, ri));
                    right_matched[ri as usize] = true;
                }
                if hits.is_empty() && kind != JoinKind::Inner {
                    emits.push((li as u32, NONE_RID));
                }
            }
            if kind == JoinKind::Full {
                for (ri, m) in right_matched.iter().enumerate() {
                    if !m {
                        emits.push((NONE_RID, ri as u32));
                    }
                }
            }
        }
        JoinKind::Right => {
            let mut table: HashMap<&K, Vec<u32>, S> = HashMap::default();
            r.meter.charge_join(lkeys.len() as u64)?;
            for (li, k) in lkeys.iter().enumerate() {
                if let Some(k) = k {
                    table.entry(k).or_default().push(li as u32);
                }
            }
            for (ri, k) in rkeys.iter().enumerate() {
                let hits: &[u32] = match k {
                    Some(k) => table.get(k).map(Vec::as_slice).unwrap_or(&[]),
                    None => &[],
                };
                r.meter.charge_join(1 + hits.len() as u64)?;
                for &li in hits {
                    emits.push((li, ri as u32));
                }
                if hits.is_empty() {
                    emits.push((NONE_RID, ri as u32));
                }
            }
        }
        JoinKind::Cross => unreachable!("cross joins never take the hash path"),
    }
    Ok(emits)
}

/// Stitch two relations into the joined relation described by `emits`
/// (pairs of logical row ids, `NONE_RID` for outer-join pads).
fn combine(left: Rel, right: Rel, emits: &[(u32, u32)]) -> Rel {
    let mut rowids: Vec<Vec<u32>> = Vec::with_capacity(left.srcs.len() + right.srcs.len());
    for ids in &left.rowids {
        rowids.push(
            emits
                .iter()
                .map(|&(l, _)| if l == NONE_RID { NONE_RID } else { ids[l as usize] })
                .collect(),
        );
    }
    for ids in &right.rowids {
        rowids.push(
            emits
                .iter()
                .map(|&(_, rr)| if rr == NONE_RID { NONE_RID } else { ids[rr as usize] })
                .collect(),
        );
    }
    let shift = left.srcs.len() as u32;
    let mut col_map = left.col_map;
    col_map.extend(right.col_map.iter().map(|&(s, c)| (s + shift, c)));
    let mut srcs = left.srcs;
    srcs.extend(right.srcs);
    Rel { srcs, rowids, len: emits.len(), col_map, width: left.width + right.width }
}

// ---------------------------------------------------------------------------
// Tail: GROUP BY / HAVING / projection / DISTINCT / ORDER BY / TOP
// ---------------------------------------------------------------------------

/// Does the tail reference anything the vector kernels refuse to touch?
fn tail_needs_scalar(sel: &CSelect, flags: &[bool]) -> bool {
    if sel.group_by.iter().any(|&g| flags[g]) {
        return true;
    }
    if let Some(h) = &sel.having {
        if unit_scalar(h, flags) {
            return true;
        }
    }
    if let Ok((_, items)) = &sel.projection {
        for item in items {
            if let CItem::Expr(u) = item {
                if unit_scalar(u, flags) {
                    return true;
                }
            }
        }
    }
    sel.order_by.iter().any(|(key, _)| match key {
        COrder::Output(_) => false,
        COrder::Unit(u) => unit_scalar(u, flags),
    })
}

/// The tail of one block. Everything up to the commit point is *pure*
/// pre-evaluation; any [`Unvec`] (or plain evaluation error) falls back to
/// [`Runner::tail`] over materialized rows, which — having made no charges
/// yet — replays the row path's exact charge/error interleaving.
pub(crate) fn tail(
    r: &Runner<'_>,
    sel: &CSelect,
    rel: &Rel,
    flags: &[bool],
) -> Result<ResultSet, EngineError> {
    // Plan-time projection errors surface here, exactly as in the row path.
    let (out_columns, items) = match &sel.projection {
        Ok(p) => p,
        Err(e) => return Err(e.clone()),
    };
    if tail_needs_scalar(sel, flags) {
        return r.tail(sel, rel.materialize_all(), None);
    }
    // Global aggregate over zero rows: the representative is a synthetic
    // all-NULL row no selection vector can address — delegate (free: no
    // charges precede it and there is nothing to materialize).
    if sel.grouped && sel.group_by.is_empty() && rel.len == 0 {
        return r.tail(sel, Vec::new(), None);
    }

    let ev = Ev { sel, rel, flags };
    let all: Vec<u32> = (0..rel.len as u32).collect();

    // -- Pure phase ------------------------------------------------------
    // Units as representative row ids plus, when grouped, member row-id
    // sets. The ungrouped 1:1 case carries no member sets at all —
    // aggregates cannot appear ungrouped, so they are never consulted and
    // the per-row singleton vectors the row path builds would be pure
    // allocator churn.
    let group_units: Option<Vec<(u32, Vec<u32>)>> = if sel.grouped {
        Some(if sel.group_by.is_empty() {
            vec![(0, all.clone())]
        } else {
            let cols: Vec<VCol> = match sel
                .group_by
                .iter()
                .map(|&g| ev.eval(g, &all))
                .collect::<Result<_, Unvec>>()
            {
                Ok(c) => c,
                Err(Unvec) => return r.tail(sel, rel.materialize_all(), None),
            };
            let mut units: Vec<(u32, Vec<u32>)> = Vec::new();
            // Single integer key: group on pre-hashed key bits (the bits
            // *are* the `hash_key` equivalence class; `DEAD_KEY` is a NaN
            // pattern no integer can reach, so it can stand in for the
            // NULL group).
            if let [VCol::I64 { vals, valid }] = cols.as_slice() {
                let mut groups: FastMap<usize> = FastMap::default();
                for (i, &val) in vals.iter().enumerate().take(rel.len) {
                    let bits = if valid.get(i) {
                        let VKey::Num(b) = VKey::num(val as f64) else { unreachable!() };
                        b
                    } else {
                        DEAD_KEY
                    };
                    match groups.entry(bits) {
                        Entry::Occupied(e) => units[*e.get()].1.push(i as u32),
                        Entry::Vacant(e) => {
                            e.insert(units.len());
                            units.push((i as u32, vec![i as u32]));
                        }
                    }
                }
            } else {
                let mut groups: HashMap<Vec<VKey>, usize> = HashMap::new();
                for i in 0..rel.len {
                    let key: Vec<VKey> = cols.iter().map(|c| key_at(c, i)).collect();
                    match groups.entry(key) {
                        Entry::Occupied(e) => units[*e.get()].1.push(i as u32),
                        Entry::Vacant(e) => {
                            e.insert(units.len());
                            units.push((i as u32, vec![i as u32]));
                        }
                    }
                }
            }
            units
        })
    } else {
        None
    };
    let reps: Vec<u32> = match &group_units {
        Some(units) => units.iter().map(|u| u.0).collect(),
        None => all,
    };
    let units = Units { reps: &reps, members: group_units.as_deref() };
    let n_units = units.reps.len();

    let having: Option<Vec<Value>> = match &sel.having {
        Some(h) => match eval_unit_vec(&ev, h, &units) {
            Ok(v) => Some(v),
            Err(Unvec) => return r.tail(sel, rel.materialize_all(), None),
        },
        None => None,
    };

    // Projection and ORDER BY unit keys over *all* units — a pure superset
    // of the row path's post-HAVING evaluation, so extra work on filtered
    // units is unobservable.
    let mut item_vals: Vec<Vec<Value>> = Vec::with_capacity(items.len());
    for item in items {
        let vals = match item {
            CItem::Passthrough(idx) => {
                let col = rel.gather(*idx, units.reps);
                (0..n_units).map(|i| col.value_at(i)).collect()
            }
            CItem::Expr(u) => match eval_unit_vec(&ev, u, &units) {
                Ok(v) => v,
                Err(Unvec) => return r.tail(sel, rel.materialize_all(), None),
            },
        };
        item_vals.push(vals);
    }
    let mut order_vals: Vec<Option<Vec<Value>>> = Vec::with_capacity(sel.order_by.len());
    for (key, _) in &sel.order_by {
        order_vals.push(match key {
            COrder::Output(_) => None,
            COrder::Unit(u) => match eval_unit_vec(&ev, u, &units) {
                Ok(v) => Some(v),
                Err(Unvec) => return r.tail(sel, rel.materialize_all(), None),
            },
        });
    }

    // -- Commit phase ----------------------------------------------------
    // Charges and observations in the row path's exact order.
    if sel.grouped && !sel.group_by.is_empty() {
        r.meter.charge_steps(rel.len as u64)?;
    }
    if sel.grouped {
        snails_obs::observe(Obs::EngineOpGroupUnits, n_units as u64);
    }
    let kept: Vec<usize> = match &having {
        Some(hv) => (0..n_units).filter(|&i| truth(&hv[i]) == Some(true)).collect(),
        None => (0..n_units).collect(),
    };
    r.meter.charge_steps(kept.len() as u64)?;

    let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(kept.len());
    for &u in &kept {
        let out_row: Vec<Value> = item_vals.iter().map(|col| col[u].clone()).collect();
        let mut keys = Vec::with_capacity(sel.order_by.len());
        for (k, (key, _)) in sel.order_by.iter().enumerate() {
            match key {
                COrder::Output(i) => keys.push(out_row[*i].clone()),
                COrder::Unit(_) => {
                    keys.push(order_vals[k].as_ref().expect("unit key precomputed")[u].clone())
                }
            }
        }
        projected.push((out_row, keys));
    }
    snails_obs::observe(Obs::EngineOpProjectRows, projected.len() as u64);

    if sel.distinct {
        let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
        projected.retain(|(row, _)| seen.insert(row.iter().map(Value::hash_key).collect()));
    }

    if !sel.order_by.is_empty() {
        snails_obs::observe(Obs::EngineOpSortRows, projected.len() as u64);
        projected.sort_by(|(_, ka), (_, kb)| {
            for (i, (_, desc)) in sel.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let mut out_rows: Vec<Vec<Value>> = projected.into_iter().map(|(row, _)| row).collect();
    if let Some(n) = sel.top {
        out_rows.truncate(n as usize);
    }
    Ok(ResultSet { columns: out_columns.clone(), rows: out_rows })
}

/// Tail evaluation units: one representative row id per unit plus, when
/// grouped, the member row-id set per unit (absent in the ungrouped 1:1
/// case, where no aggregate can reference it).
struct Units<'a> {
    reps: &'a [u32],
    members: Option<&'a [(u32, Vec<u32>)]>,
}

/// Evaluate one projection/`HAVING`/`ORDER BY` unit over every unit's
/// representative (scalar units) or member set (grouped units). Pure.
fn eval_unit_vec(ev: &Ev<'_>, u: &CUnit, units: &Units<'_>) -> Result<Vec<Value>, Unvec> {
    match u {
        CUnit::Row(id) => {
            let col = ev.eval(*id, units.reps)?;
            Ok((0..units.reps.len()).map(|i| col.value_at(i)).collect())
        }
        CUnit::Grouped(g) => eval_gexpr(ev, g, units),
    }
}

/// Evaluate a grouped expression per unit. Aggregate arguments evaluate
/// once over the concatenation of all member sets, then typed kernels
/// reduce each segment; anything the kernels cannot prove error-free
/// (overflow, text arithmetic, `DISTINCT` over mixed data) falls back to
/// [`finish_aggregate`] on gathered values, and its errors abort to the
/// scalar runner.
fn eval_gexpr(ev: &Ev<'_>, g: &GExpr, units: &Units<'_>) -> Result<Vec<Value>, Unvec> {
    let n = units.reps.len();
    match g {
        GExpr::Row(id) => {
            let col = ev.eval(*id, units.reps)?;
            Ok((0..n).map(|i| col.value_at(i)).collect())
        }
        GExpr::Agg { name, distinct, arg } => {
            // A grouped unit outside a grouped block would mean the plan
            // lowered an aggregate the block cannot host; the scalar
            // runner owns that error.
            let Some(members) = units.members else { return Err(Unvec) };
            match arg {
                AggArg::CountStar => {
                    Ok(members.iter().map(|u| Value::Int(u.1.len() as i64)).collect())
                }
                // Always-erroring forms: the scalar runner owns the message.
                AggArg::StarInvalid | AggArg::Missing => Err(Unvec),
                AggArg::Expr(id) => {
                    let mut concat: Vec<u32> = Vec::new();
                    let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(n);
                    for (_, group) in members {
                        let start = concat.len();
                        concat.extend_from_slice(group);
                        bounds.push((start, concat.len()));
                    }
                    let col = ev.eval(*id, &concat)?;
                    let mut out = Vec::with_capacity(n);
                    for &(start, end) in &bounds {
                        out.push(reduce_segment(name, *distinct, &col, start, end)?);
                    }
                    Ok(out)
                }
            }
        }
        GExpr::And(left, right) => {
            let l = eval_gexpr(ev, left, units)?;
            let r = eval_gexpr(ev, right, units)?;
            Ok((0..n)
                .map(|i| {
                    let (lt, rt) = (truth(&l[i]), truth(&r[i]));
                    bool_value(match (lt, rt) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    })
                })
                .collect())
        }
        GExpr::Or(left, right) => {
            let l = eval_gexpr(ev, left, units)?;
            let r = eval_gexpr(ev, right, units)?;
            Ok((0..n)
                .map(|i| {
                    let (lt, rt) = (truth(&l[i]), truth(&r[i]));
                    bool_value(match (lt, rt) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    })
                })
                .collect())
        }
        GExpr::Binary { left, op, right } => {
            let l = eval_gexpr(ev, left, units)?;
            let r = eval_gexpr(ev, right, units)?;
            (0..n).map(|i| eval_binary(&l[i], *op, &r[i]).map_err(|_| Unvec)).collect()
        }
        GExpr::Unary { op, expr } => {
            let v = eval_gexpr(ev, expr, units)?;
            (0..n).map(|i| eval_unary(*op, &v[i]).map_err(|_| Unvec)).collect()
        }
    }
}

/// Reduce one aggregate over the segment `[start, end)` of the evaluated
/// argument column. Typed kernels handle the hot numeric cases; everything
/// else gathers the non-NULL values and defers to [`finish_aggregate`],
/// whose result — and NULL-skipping, empty-input, and overflow semantics —
/// the kernels replicate exactly.
fn reduce_segment(
    name: &str,
    distinct: bool,
    col: &VCol,
    start: usize,
    end: usize,
) -> Result<Value, Unvec> {
    if !distinct {
        match col {
            VCol::I64 { vals, valid } => return reduce_i64(name, vals, valid, start, end),
            VCol::F64 { vals, valid } => return reduce_f64(name, vals, valid, start, end),
            _ => {}
        }
        if name.eq_ignore_ascii_case("COUNT") {
            let n = (start..end).filter(|&i| !matches!(col.value_at(i), Value::Null)).count();
            return Ok(Value::Int(n as i64));
        }
    }
    let values: Vec<Value> = (start..end)
        .map(|i| col.value_at(i))
        .filter(|v| !v.is_null())
        .collect();
    finish_aggregate(name, distinct, values).map_err(|_| Unvec)
}

/// Typed aggregate kernel over an `i64` slice with validity.
fn reduce_i64(
    name: &str,
    vals: &[i64],
    valid: &Bitmap,
    start: usize,
    end: usize,
) -> Result<Value, Unvec> {
    let live = (start..end).filter(|&i| valid.get(i));
    if name.eq_ignore_ascii_case("COUNT") {
        return Ok(Value::Int(live.count() as i64));
    }
    let mut n = 0u64;
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        "SUM" | "AVG" => {
            // Mirror `finish_aggregate`: an exact integer running sum (its
            // overflow is the statement's overflow) plus an f64 sum
            // accumulated in input order for AVG.
            let mut int_sum: i64 = 0;
            let mut sum = 0.0f64;
            for i in live {
                int_sum = int_sum.checked_add(vals[i]).ok_or(Unvec)?;
                sum += vals[i] as f64;
                n += 1;
            }
            Ok(match (n, upper.as_str()) {
                (0, _) => Value::Null,
                (_, "AVG") => Value::Float(sum / n as f64),
                _ => Value::Int(int_sum),
            })
        }
        "MIN" | "MAX" => {
            let want_min = upper == "MIN";
            let mut best: Option<i64> = None;
            for i in live {
                let v = vals[i];
                best = Some(match best {
                    None => v,
                    Some(b) if (want_min && v < b) || (!want_min && v > b) => v,
                    Some(b) => b,
                });
            }
            Ok(best.map_or(Value::Null, Value::Int))
        }
        _ => Err(Unvec),
    }
}

/// Typed aggregate kernel over an `f64` slice with validity. Comparisons
/// use `partial_cmp` with keep-on-incomparable, matching the scalar fold's
/// `sql_cmp` (a NaN never displaces the running best, and a NaN first
/// element is kept).
fn reduce_f64(
    name: &str,
    vals: &[f64],
    valid: &Bitmap,
    start: usize,
    end: usize,
) -> Result<Value, Unvec> {
    let live = (start..end).filter(|&i| valid.get(i));
    if name.eq_ignore_ascii_case("COUNT") {
        return Ok(Value::Int(live.count() as i64));
    }
    let mut n = 0u64;
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        "SUM" | "AVG" => {
            let mut sum = 0.0f64;
            for i in live {
                sum += vals[i];
                n += 1;
            }
            Ok(match (n, upper.as_str()) {
                (0, _) => Value::Null,
                (_, "AVG") => Value::Float(sum / n as f64),
                _ => Value::Float(sum),
            })
        }
        "MIN" | "MAX" => {
            let want = if upper == "MIN" {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            };
            let mut best: Option<f64> = None;
            for i in live {
                let v = vals[i];
                best = Some(match best {
                    None => v,
                    Some(b) if v.partial_cmp(&b) == Some(want) => v,
                    Some(b) => b,
                });
            }
            Ok(best.map_or(Value::Null, Value::Float))
        }
        _ => Err(Unvec),
    }
}

