//! Query execution.
//!
//! Volcano-style would be overkill for the SNAILS instances (small tables, a
//! few thousand rows); the executor fully materializes each stage:
//! FROM/JOIN → WHERE → GROUP/HAVING → projection → DISTINCT → ORDER BY → TOP.
//! Correlated subqueries are supported through a lexical scope chain.

use crate::catalog::Database;
use crate::error::EngineError;
use crate::result::ResultSet;
use crate::value::{ArithOp, HashKey, Value};
use snails_obs::Metric as Obs;
use snails_sql::{
    BinOp, ColumnRef, Expr, FunctionArg, JoinKind, SelectItem, SelectStatement, Statement,
    TableSource, UnaryOp,
};
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Resource budgets for one statement execution.
///
/// Every field defaults to `None` (unlimited), so gold queries and existing
/// callers are unaffected. The benchmark pipeline runs *predicted* queries —
/// untrusted model output — under [`ExecLimits::guarded`] so a hostile plan
/// (an unconstrained cross join, a runaway correlated subquery) degrades to
/// [`EngineError::ResourceExhausted`] instead of hanging a worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum rows in any result set produced by a query block.
    pub max_output_rows: Option<u64>,
    /// Budget on join work: rows built/probed by the hash join and inner-loop
    /// iterations of the nested loop, summed over all joins in the statement.
    pub max_join_rows: Option<u64>,
    /// Maximum nesting depth of query blocks (subqueries, derived tables,
    /// view expansions all count).
    pub max_subquery_depth: Option<u32>,
    /// Cooperative step budget: rows materialized, filtered, grouped, or
    /// projected, summed over the whole statement.
    pub max_steps: Option<u64>,
}

impl ExecLimits {
    /// No limits — the default; identical to pre-limit behavior.
    pub const UNLIMITED: ExecLimits = ExecLimits {
        max_output_rows: None,
        max_join_rows: None,
        max_subquery_depth: None,
        max_steps: None,
    };

    /// Generous defensive budgets for untrusted (model-predicted) queries.
    /// Orders of magnitude above anything a gold query needs on the SNAILS
    /// databases, but small enough to stop a cross-join bomb in well under a
    /// second.
    pub const fn guarded() -> ExecLimits {
        ExecLimits {
            max_output_rows: Some(100_000),
            max_join_rows: Some(20_000_000),
            max_subquery_depth: Some(24),
            max_steps: Some(50_000_000),
        }
    }

    /// True when every budget is `None`.
    pub fn is_unlimited(&self) -> bool {
        *self == ExecLimits::UNLIMITED
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Run equi-key `ON` predicates through the build/probe hash join.
    /// Joins whose predicate is not a pure conjunction of equi-key
    /// conjuncts always fall back to the nested loop, as does everything
    /// when this is `false` (the flag exists for A/B timing and for the
    /// hash/nested equivalence tests).
    pub hash_join: bool,
    /// Run compiled plans ([`crate::plan::CompiledPlan::execute`]) through
    /// the batch-at-a-time columnar executor (`crate::vector`), the
    /// default. The vectorized path produces byte-identical result sets,
    /// errors, and budget-exhaustion points to the row-at-a-time plan
    /// runner; the flag exists for A/B timing and differential testing.
    /// The AST interpreter ([`execute_with`]) ignores it — it *is* the
    /// row-at-a-time oracle.
    pub vectorized: bool,
    /// Batch granularity (rows per batch) for the vectorized executor.
    /// Purely a blocking factor: results are identical for any value ≥ 1
    /// (values below 1 are clamped). `None` — the default — picks the
    /// size per query block from the block's live column width via
    /// [`adaptive_batch_size`], so a batch's working set fits in L2
    /// regardless of how wide the combined row is; `Some(n)` forces `n`
    /// (the A/B sweep and the equivalence tests use this).
    pub batch_size: Option<usize>,
    /// Run vectorized query blocks as fused pipelines: `WHERE` (and the
    /// optimizer's residual conjuncts) carry a selection vector straight
    /// into the block tail instead of materializing an intermediate
    /// relation per operator. On by default; results are byte-identical
    /// either way — the flag exists for A/B timing and for the
    /// fused-vs-unfused axis of the equivalence tests.
    pub fusion: bool,
    /// Run eligible compiled plans through the cost-based planner
    /// ([`crate::optimize`]): predicate pushdown past joins, greedy join
    /// reordering by estimated cardinality, and index/scan access-path
    /// selection. On by default. The optimizer only engages when
    /// `hash_join` is set and `limits` is [`ExecLimits::UNLIMITED`] —
    /// under a finite budget the unoptimized plan runs, so *which* budget
    /// trips first never depends on planner decisions (same gating rule
    /// as subquery memoization; DESIGN.md §10). Results are byte-identical
    /// either way; the flag exists for A/B timing and differential tests.
    pub optimize: bool,
    /// Resource budgets; [`ExecLimits::UNLIMITED`] by default.
    pub limits: ExecLimits,
}

/// Bounds of the adaptive batch-size policy. The floor keeps per-batch
/// dispatch amortized; the ceiling keeps even a one-column pipeline's
/// working set comfortably inside L2.
pub const MIN_BATCH_SIZE: usize = 256;
/// Upper bound of [`adaptive_batch_size`]; see [`MIN_BATCH_SIZE`].
pub const MAX_BATCH_SIZE: usize = 4096;

/// Rows-per-batch working-set budget: roughly half a typical 256 KiB L2,
/// leaving the other half for the dictionaries, hash tables, and output
/// buffers a pipeline touches alongside its batch-sized scratch columns.
const BATCH_L2_BUDGET: usize = 128 * 1024;

/// Pick a batch size for a pipeline whose combined row spans `width` live
/// columns, so the batch's working set — a handful of evaluated scratch
/// columns plus a selection vector, each ~8–16 bytes per row per live
/// column — fits the L2 budget. Pure function of `width` (never of data,
/// threads, or prior statements), so every batch-count telemetry key stays
/// byte-identical across thread counts. Power-of-two result clamped to
/// [`MIN_BATCH_SIZE`]..=[`MAX_BATCH_SIZE`]; the measured sweep behind the
/// constants is in DESIGN.md §5 and §11.
pub fn adaptive_batch_size(width: usize) -> usize {
    // ~24 bytes of scratch per row per live column (value + validity +
    // selection/key share), plus fixed per-row overhead.
    let per_row = 24 * width.max(1) + 16;
    let raw = (BATCH_L2_BUDGET / per_row).max(1);
    // Round *down* to a power of two: overshooting the budget is the
    // failure mode the sweep caught (1024 slower than 256).
    let pow2 = if raw.is_power_of_two() { raw } else { raw.next_power_of_two() / 2 };
    pow2.clamp(MIN_BATCH_SIZE, MAX_BATCH_SIZE)
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            hash_join: true,
            vectorized: true,
            batch_size: None,
            fusion: true,
            optimize: true,
            limits: ExecLimits::UNLIMITED,
        }
    }
}

/// Execute a statement against `db`.
///
/// `CREATE VIEW` requires mutation; use [`apply_ddl`] for that. `execute`
/// returns an error for DDL to keep the read path `&Database`.
pub fn execute(db: &Database, stmt: &Statement) -> Result<ResultSet, EngineError> {
    execute_with(db, stmt, ExecOptions::default())
}

/// [`execute`] with explicit [`ExecOptions`].
pub fn execute_with(
    db: &Database,
    stmt: &Statement,
    opts: ExecOptions,
) -> Result<ResultSet, EngineError> {
    match stmt {
        Statement::Select(s) => {
            let exec = Executor::new(db, opts);
            let result = exec.select(s, None);
            record_statement(&exec.meter, &result);
            result
        }
        Statement::CreateView { .. } => Err(EngineError::unsupported(
            "CREATE VIEW requires apply_ddl (mutable database)",
        )),
    }
}

/// Apply a DDL statement (currently `CREATE VIEW`) to `db`.
pub fn apply_ddl(db: &mut Database, stmt: &Statement) -> Result<(), EngineError> {
    match stmt {
        Statement::CreateView { schema, name, query } => {
            db.create_view(crate::catalog::ViewDef {
                schema: schema.clone(),
                name: name.clone(),
                query: query.clone(),
            });
            Ok(())
        }
        Statement::Select(_) => Err(EngineError::unsupported("apply_ddl expects DDL")),
    }
}

/// One named relation in scope: binding name plus its column names.
/// Shared with the compile-once planner (`crate::plan`), which resolves
/// column references against the same structure at plan time.
#[derive(Debug, Clone)]
pub(crate) struct Binding {
    pub(crate) name: String,
    pub(crate) columns: Vec<String>,
}

/// The bindings of one `FROM`/`JOIN` block and its accumulated rows.
#[derive(Debug, Clone)]
struct RowSet {
    bindings: Vec<Binding>,
    rows: Vec<Vec<Value>>,
    width: usize,
}

impl RowSet {
    fn empty() -> Self {
        RowSet { bindings: Vec::new(), rows: vec![Vec::new()], width: 0 }
    }
}

/// Lexical scope for expression evaluation: the bindings and current row of
/// the innermost query block, with a pointer to the enclosing block.
#[derive(Clone, Copy)]
struct Scope<'a> {
    bindings: &'a [Binding],
    row: &'a [Value],
    parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// Resolve a column reference to its value.
    fn resolve(&self, col: &ColumnRef) -> Result<Value, EngineError> {
        if let Some(q) = &col.qualifier {
            let mut offset = 0usize;
            for b in self.bindings {
                if b.name.eq_ignore_ascii_case(q) {
                    if let Some(i) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(&col.name)) {
                        return Ok(self.row[offset + i].clone());
                    }
                    // Qualifier matched but column missing: do not fall
                    // through to the parent with the same qualifier unless
                    // the parent also binds it.
                    break;
                }
                offset += b.columns.len();
            }
            if let Some(p) = self.parent {
                return p.resolve(col);
            }
            return Err(EngineError::UnknownColumn { name: format!("{q}.{}", col.name) });
        }
        // Unqualified: search all bindings at this level.
        let mut found: Option<usize> = None;
        let mut offset = 0usize;
        for b in self.bindings {
            if let Some(i) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(&col.name)) {
                if found.is_some() {
                    return Err(EngineError::AmbiguousColumn { name: col.name.clone() });
                }
                found = Some(offset + i);
            }
            offset += b.columns.len();
        }
        if let Some(i) = found {
            return Ok(self.row[i].clone());
        }
        if let Some(p) = self.parent {
            return p.resolve(col);
        }
        Err(EngineError::UnknownColumn { name: col.name.clone() })
    }
}

/// Truthiness under SQL three-valued logic.
pub(crate) fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(n) => Some(*n != 0),
        Value::Float(x) => Some(*x != 0.0),
        Value::Str(_) => Some(true),
    }
}

pub(crate) fn bool_value(b: Option<bool>) -> Value {
    match b {
        None => Value::Null,
        Some(true) => Value::Int(1),
        Some(false) => Value::Int(0),
    }
}

const AGGREGATES: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX"];

pub(crate) fn is_aggregate_name(name: &str) -> bool {
    AGGREGATES.contains(&name)
}

/// True when `e` contains an aggregate call at this query level (does not
/// descend into subqueries).
pub(crate) fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function { name, args, .. } => {
            if is_aggregate_name(name) {
                return true;
            }
            args.iter().any(|a| match a {
                FunctionArg::Expr(e) => contains_aggregate(e),
                FunctionArg::Wildcard => false,
            })
        }
        Expr::Subquery(_) | Expr::Exists { .. } | Expr::InSubquery { .. } => false,
        _ => {
            let mut found = false;
            e.visit_children(&mut |c| found |= contains_aggregate(c));
            found
        }
    }
}

/// Which side of a join an expression's columns come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JoinSide {
    Left,
    Right,
}

/// Static classification of an `ON`-predicate operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SideClass {
    /// No column references — evaluates the same in any row scope.
    Constant,
    /// Every column reference resolves inside this one side.
    One(JoinSide),
    /// Mixed sides, or a construct the static analysis cannot see through
    /// (subqueries, aggregates, ambiguous or correlated columns).
    Unknown,
}

impl SideClass {
    fn merge(self, other: SideClass) -> SideClass {
        match (self, other) {
            (SideClass::Unknown, _) | (_, SideClass::Unknown) => SideClass::Unknown,
            (SideClass::Constant, s) | (s, SideClass::Constant) => s,
            (SideClass::One(a), SideClass::One(b)) if a == b => SideClass::One(a),
            _ => SideClass::Unknown,
        }
    }
}

/// Statically replicate [`Scope::resolve`] over the combined join bindings:
/// which side would this column read from? `None` when resolution would be
/// ambiguous, correlated (parent scope), or an error — the caller then
/// falls back to the nested loop, which reproduces the exact semantics.
fn column_side(col: &ColumnRef, left: &[Binding], right: &[Binding]) -> Option<JoinSide> {
    let sides = [(JoinSide::Left, left), (JoinSide::Right, right)];
    if let Some(q) = &col.qualifier {
        for (side, bindings) in sides {
            for b in bindings.iter() {
                if b.name.eq_ignore_ascii_case(q) {
                    // `resolve` stops at the first qualifier match; the key
                    // is side-local only when the column lives there.
                    return b
                        .columns
                        .iter()
                        .any(|c| c.eq_ignore_ascii_case(&col.name))
                        .then_some(side);
                }
            }
        }
        None
    } else {
        let mut found = None;
        for (side, bindings) in sides {
            for b in bindings.iter() {
                if b.columns.iter().any(|c| c.eq_ignore_ascii_case(&col.name)) {
                    if found.is_some() {
                        return None; // ambiguous — let the nested loop report it
                    }
                    found = Some(side);
                }
            }
        }
        found
    }
}

/// Classify which join side `e` reads from.
fn expr_side(e: &Expr, left: &[Binding], right: &[Binding]) -> SideClass {
    match e {
        Expr::Column(c) => match column_side(c, left, right) {
            Some(side) => SideClass::One(side),
            None => SideClass::Unknown,
        },
        Expr::Subquery(_) | Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::Wildcard => {
            SideClass::Unknown
        }
        Expr::Function { name, .. } if is_aggregate_name(name) => SideClass::Unknown,
        Expr::Function { args, .. }
            if args.iter().any(|a| matches!(a, FunctionArg::Wildcard)) =>
        {
            SideClass::Unknown
        }
        _ => {
            let mut acc = SideClass::Constant;
            e.visit_children(&mut |c| acc = acc.merge(expr_side(c, left, right)));
            acc
        }
    }
}

/// Split an `AND` tree into its conjuncts.
fn flatten_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary { left, op: BinOp::And, right } = e {
        flatten_conjuncts(left, out);
        flatten_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Extract hash-join key pairs from an `ON` predicate: every `AND` conjunct
/// must be an equality with one operand readable from each side (a constant
/// operand joins whichever side the other operand is not). Anything else —
/// a non-equality conjunct, a same-side equality, OR at the top level, a
/// subquery — returns `None` and the whole join stays on the nested loop,
/// so filters and error cases keep their exact serial semantics.
///
/// Operates on binding lists (not row sets) so the planner can run the same
/// classification at compile time and reach the identical hash/nested
/// decision the interpreter reaches per execution.
pub(crate) fn equi_join_keys<'e>(
    pred: &'e Expr,
    left: &[Binding],
    right: &[Binding],
) -> Option<Vec<(&'e Expr, &'e Expr)>> {
    let mut conjuncts = Vec::new();
    flatten_conjuncts(pred, &mut conjuncts);
    let mut keys = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        let Expr::Binary { left: a, op: BinOp::Eq, right: b } = c else {
            return None;
        };
        use JoinSide::{Left, Right};
        use SideClass::{Constant, One};
        let pair = match (expr_side(a, left, right), expr_side(b, left, right)) {
            (One(Left), One(Right) | Constant) | (Constant, One(Right)) => (&**a, &**b),
            (One(Right), One(Left) | Constant) | (Constant, One(Left)) => (&**b, &**a),
            _ => return None,
        };
        keys.push(pair);
    }
    Some(keys)
}

/// Shared [`ExecLimits`] accounting, used identically by the AST
/// interpreter ([`Executor`]) and the compiled-plan runner
/// (`crate::plan`). Keeping the charge arithmetic in one place is what
/// makes the two paths' `ResourceExhausted` behavior byte-identical: the
/// same budgets, the same saturating counters, the same error messages.
pub(crate) struct Meter {
    limits: ExecLimits,
    /// Cooperative step counter (rows materialized/filtered/grouped),
    /// shared across subquery recursion — hence interior mutability.
    steps: Cell<u64>,
    /// Join work counter (build/probe rows, nested-loop iterations).
    join_rows: Cell<u64>,
    /// Current query-block nesting depth.
    depth: Cell<u32>,
}

impl Meter {
    pub(crate) fn new(limits: ExecLimits) -> Self {
        Meter {
            limits,
            steps: Cell::new(0),
            join_rows: Cell::new(0),
            depth: Cell::new(0),
        }
    }

    /// Charge `n` units against the cooperative step budget.
    pub(crate) fn charge_steps(&self, n: u64) -> Result<(), EngineError> {
        let total = self.steps.get().saturating_add(n);
        self.steps.set(total);
        match self.limits.max_steps {
            Some(budget) if total > budget => {
                Err(EngineError::resource_exhausted("step budget", budget))
            }
            _ => Ok(()),
        }
    }

    /// Charge `n` units against the join build/probe budget (also counts
    /// toward the step budget — join work is work).
    pub(crate) fn charge_join(&self, n: u64) -> Result<(), EngineError> {
        let total = self.join_rows.get().saturating_add(n);
        self.join_rows.set(total);
        if let Some(budget) = self.limits.max_join_rows {
            if total > budget {
                return Err(EngineError::resource_exhausted("join row budget", budget));
            }
        }
        self.charge_steps(n)
    }

    /// Enter a query block: enforces the subquery depth budget. On `Err`
    /// the depth counter is untouched, so no unwind is needed.
    pub(crate) fn enter_block(&self) -> Result<(), EngineError> {
        let depth = self.depth.get() + 1;
        if let Some(budget) = self.limits.max_subquery_depth {
            if depth > budget {
                return Err(EngineError::resource_exhausted(
                    "subquery depth budget",
                    u64::from(budget),
                ));
            }
        }
        self.depth.set(depth);
        Ok(())
    }

    /// Leave a query block entered with [`Meter::enter_block`].
    pub(crate) fn exit_block(&self) {
        self.depth.set(self.depth.get() - 1);
    }

    /// Total step budget consumed so far.
    pub(crate) fn steps_used(&self) -> u64 {
        self.steps.get()
    }

    /// Total join budget consumed so far.
    pub(crate) fn join_rows_used(&self) -> u64 {
        self.join_rows.get()
    }
}

/// Record statement-level telemetry after one execution through `meter`
/// (shared by the interpreter and the compiled-plan runner, so both paths
/// report through the identical accounting). No-ops without an installed
/// observability scope.
pub(crate) fn record_statement<T>(meter: &Meter, result: &Result<T, EngineError>) {
    use snails_obs::Metric;
    snails_obs::add(Metric::EngineExecStatements, 1);
    snails_obs::observe(Metric::EngineExecSteps, meter.steps_used());
    snails_obs::observe(Metric::EngineExecJoinRows, meter.join_rows_used());
    if matches!(result, Err(e) if e.is_resource_exhausted()) {
        snails_obs::add(Metric::EngineLimitsExhausted, 1);
    }
}

struct Executor<'a> {
    db: &'a Database,
    opts: ExecOptions,
    meter: Meter,
}

impl<'a> Executor<'a> {
    fn new(db: &'a Database, opts: ExecOptions) -> Self {
        Executor { db, opts, meter: Meter::new(opts.limits) }
    }

    /// Charge `n` units against the cooperative step budget.
    fn charge_steps(&self, n: u64) -> Result<(), EngineError> {
        self.meter.charge_steps(n)
    }

    /// Charge `n` units against the join build/probe budget.
    fn charge_join(&self, n: u64) -> Result<(), EngineError> {
        self.meter.charge_join(n)
    }

    /// Depth-guarded entry point for a query block: enforces the subquery
    /// depth budget and guarantees the depth counter unwinds on error.
    fn select(
        &self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> Result<ResultSet, EngineError> {
        self.meter.enter_block()?;
        let result = self.select_inner(stmt, outer);
        self.meter.exit_block();
        result
    }

    fn select_inner(
        &self,
        stmt: &SelectStatement,
        outer: Option<&Scope<'_>>,
    ) -> Result<ResultSet, EngineError> {
        // FROM and JOINs.
        let mut rowset = match &stmt.from {
            Some(src) => self.load_source(src)?,
            None => RowSet::empty(),
        };
        for join in &stmt.joins {
            let right = self.load_source(&join.source)?;
            rowset = self.join(rowset, right, join.kind, join.on.as_ref(), outer)?;
            snails_obs::observe(Obs::EngineOpJoinRows, rowset.rows.len() as u64);
        }

        // WHERE.
        if let Some(pred) = &stmt.where_clause {
            self.charge_steps(rowset.rows.len() as u64)?;
            let mut kept = Vec::new();
            for row in rowset.rows {
                let scope = Scope { bindings: &rowset.bindings, row: &row, parent: outer };
                if truth(&self.eval(pred, &scope)?) == Some(true) {
                    kept.push(row);
                }
            }
            rowset.rows = kept;
            snails_obs::observe(Obs::EngineOpFilterRows, rowset.rows.len() as u64);
        }

        let has_aggregates = stmt.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            _ => false,
        }) || stmt.having.as_ref().is_some_and(contains_aggregate)
            || stmt.order_by.iter().any(|o| contains_aggregate(&o.expr));

        let grouped = has_aggregates || !stmt.group_by.is_empty();

        // Output column names.
        let (out_columns, item_exprs) = self.projection_plan(stmt, &rowset)?;

        // Units: each unit is (representative row, group rows) — for
        // ungrouped queries every row is its own unit with a single-row group.
        let units: Vec<(Vec<Value>, Vec<Vec<Value>>)> = if grouped {
            if stmt.group_by.is_empty() {
                // One global group (possibly empty).
                let rep = rowset.rows.first().cloned().unwrap_or_else(|| {
                    vec![Value::Null; rowset.width]
                });
                vec![(rep, rowset.rows.clone())]
            } else {
                // Typed keys; first-appearance order via index indirection.
                self.charge_steps(rowset.rows.len() as u64)?;
                let mut units: Vec<Vec<Vec<Value>>> = Vec::new();
                let mut groups: HashMap<Vec<HashKey>, usize> = HashMap::new();
                for row in &rowset.rows {
                    let scope = Scope { bindings: &rowset.bindings, row, parent: outer };
                    let mut key = Vec::with_capacity(stmt.group_by.len());
                    for g in &stmt.group_by {
                        key.push(self.eval(g, &scope)?.hash_key());
                    }
                    match groups.entry(key) {
                        Entry::Occupied(e) => units[*e.get()].push(row.clone()),
                        Entry::Vacant(e) => {
                            e.insert(units.len());
                            units.push(vec![row.clone()]);
                        }
                    }
                }
                units.into_iter().map(|rows| (rows[0].clone(), rows)).collect()
            }
        } else {
            rowset.rows.iter().map(|r| (r.clone(), vec![r.clone()])).collect()
        };
        if grouped {
            snails_obs::observe(Obs::EngineOpGroupUnits, units.len() as u64);
        }

        // HAVING.
        let units: Vec<_> = if let Some(h) = &stmt.having {
            let mut kept = Vec::new();
            for unit in units {
                let v = self.eval_unit(h, &unit, &rowset.bindings, outer)?;
                if truth(&v) == Some(true) {
                    kept.push(unit);
                }
            }
            kept
        } else {
            units
        };

        // Projection + ORDER BY keys.
        self.charge_steps(units.len() as u64)?;
        let alias_positions: HashMap<String, usize> = out_columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.to_ascii_uppercase(), i))
            .collect();
        let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(units.len());
        for unit in &units {
            let mut out_row = Vec::with_capacity(item_exprs.len());
            for item in &item_exprs {
                match item {
                    PlanItem::Passthrough(idx) => out_row.push(unit.0[*idx].clone()),
                    PlanItem::Expr(e) => {
                        out_row.push(self.eval_unit(e, unit, &rowset.bindings, outer)?)
                    }
                }
            }
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for o in &stmt.order_by {
                // Alias reference?
                if let Expr::Column(c) = &o.expr {
                    if c.qualifier.is_none() {
                        if let Some(&i) = alias_positions.get(&c.name.to_ascii_uppercase()) {
                            keys.push(out_row[i].clone());
                            continue;
                        }
                    }
                }
                keys.push(self.eval_unit(&o.expr, unit, &rowset.bindings, outer)?);
            }
            projected.push((out_row, keys));
        }
        snails_obs::observe(Obs::EngineOpProjectRows, projected.len() as u64);

        // DISTINCT.
        if stmt.distinct {
            let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
            projected.retain(|(row, _)| {
                seen.insert(row.iter().map(Value::hash_key).collect())
            });
        }

        // ORDER BY (stable).
        if !stmt.order_by.is_empty() {
            snails_obs::observe(Obs::EngineOpSortRows, projected.len() as u64);
            let descending: Vec<bool> = stmt.order_by.iter().map(|o| o.descending).collect();
            projected.sort_by(|(_, ka), (_, kb)| {
                for (i, desc) in descending.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        // TOP.
        let mut rows: Vec<Vec<Value>> = projected.into_iter().map(|(r, _)| r).collect();
        if let Some(n) = stmt.top {
            rows.truncate(n as usize);
        }

        let mut result = ResultSet { columns: out_columns, rows };

        // UNION [ALL]: arity-checked concatenation, set semantics for plain
        // UNION (column names come from the first block, as in T-SQL).
        if let Some((kind, rhs)) = &stmt.union {
            let rhs_rs = self.select(rhs, outer)?;
            if rhs_rs.column_count() != result.column_count() {
                return Err(EngineError::type_error(format!(
                    "UNION arity mismatch: {} vs {} columns",
                    result.column_count(),
                    rhs_rs.column_count()
                )));
            }
            result.rows.extend(rhs_rs.rows);
            if *kind == snails_sql::UnionKind::Distinct {
                let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
                result.rows.retain(|row| {
                    seen.insert(row.iter().map(Value::hash_key).collect())
                });
            }
        }

        if let Some(budget) = self.opts.limits.max_output_rows {
            if result.rows.len() as u64 > budget {
                return Err(EngineError::resource_exhausted("output row budget", budget));
            }
        }

        Ok(result)
    }

    /// Resolve a `FROM`/`JOIN` source into a [`RowSet`].
    fn load_source(&self, src: &TableSource) -> Result<RowSet, EngineError> {
        match src {
            TableSource::Named { schema, name, alias } => {
                let binding_name = alias.clone().unwrap_or_else(|| name.clone());
                // Unqualified references resolve views before base tables:
                // installed natural views (db_nl, appendix H.2) shadow the
                // native table, mirroring a session whose default schema is
                // the view namespace. `dbo.`-qualified references always
                // reach the base table.
                let dbo = schema.as_deref().is_none_or(|s| s.eq_ignore_ascii_case("dbo"));
                let shadowing_view = if schema.is_none() {
                    self.db.view(None, name).or_else(|| {
                        self.db.views().find(|v| v.name.eq_ignore_ascii_case(name))
                    })
                } else {
                    None
                };
                if dbo && shadowing_view.is_none() {
                    if let Some(t) = self.db.table(name) {
                        self.charge_steps(t.rows.len() as u64)?;
                        snails_obs::observe(Obs::EngineOpScanRows, t.rows.len() as u64);
                        let columns: Vec<String> =
                            t.schema.column_names().map(str::to_owned).collect();
                        let width = columns.len();
                        return Ok(RowSet {
                            bindings: vec![Binding { name: binding_name, columns }],
                            rows: t.rows.clone(),
                            width,
                        });
                    }
                }
                let view = shadowing_view
                    .or_else(|| self.db.view(schema.as_deref(), name))
                    .ok_or_else(|| EngineError::UnknownTable { name: name.clone() })?;
                let rs = self.select(&view.query.clone(), None)?;
                snails_obs::observe(Obs::EngineOpScanRows, rs.rows.len() as u64);
                let width = rs.columns.len();
                Ok(RowSet {
                    bindings: vec![Binding { name: binding_name, columns: rs.columns }],
                    rows: rs.rows,
                    width,
                })
            }
            TableSource::Derived { query, alias } => {
                let rs = self.select(query, None)?;
                snails_obs::observe(Obs::EngineOpScanRows, rs.rows.len() as u64);
                let width = rs.columns.len();
                Ok(RowSet {
                    bindings: vec![Binding { name: alias.clone(), columns: rs.columns }],
                    rows: rs.rows,
                    width,
                })
            }
        }
    }

    fn join(
        &self,
        left: RowSet,
        right: RowSet,
        kind: JoinKind,
        on: Option<&Expr>,
        outer: Option<&Scope<'_>>,
    ) -> Result<RowSet, EngineError> {
        if self.opts.hash_join && kind != JoinKind::Cross {
            if let Some(pred) = on {
                if let Some(keys) = equi_join_keys(pred, &left.bindings, &right.bindings) {
                    return self.hash_join(left, right, kind, &keys, outer);
                }
            }
        }
        self.nested_join(left, right, kind, on, outer)
    }

    /// Build/probe hash join for a pure conjunction of equi-key conjuncts.
    ///
    /// Reproduces the nested loop's output *order* exactly: for INNER /
    /// LEFT / FULL the loop is left-major with right matches ascending, so
    /// the hash table is built on the right (bucket lists keep build order)
    /// and the left side probes in order; RIGHT joins are right-major, so
    /// the sides swap. NULL (and NaN) key components never enter the hash
    /// table — under `sql_eq` they match nothing — but their rows still
    /// null-pad for the outer join kinds.
    fn hash_join(
        &self,
        left: RowSet,
        right: RowSet,
        kind: JoinKind,
        keys: &[(&Expr, &Expr)],
        outer: Option<&Scope<'_>>,
    ) -> Result<RowSet, EngineError> {
        let mut bindings = left.bindings.clone();
        bindings.extend(right.bindings.clone());
        let width = left.width + right.width;
        let mut rows = Vec::new();

        let left_exprs: Vec<&Expr> = keys.iter().map(|&(l, _)| l).collect();
        let right_exprs: Vec<&Expr> = keys.iter().map(|&(_, r)| r).collect();

        // One side's key tuple; `None` marks an unmatchable key (a NULL or
        // NaN component equals nothing). Side-local scopes are sound: the
        // extraction verified every column ref resolves inside its side.
        let side_key = |rs: &RowSet,
                        row: &[Value],
                        exprs: &[&Expr]|
         -> Result<Option<Vec<HashKey>>, EngineError> {
            let scope = Scope { bindings: &rs.bindings, row, parent: outer };
            let mut key = Vec::with_capacity(exprs.len());
            for e in exprs {
                let v = self.eval(e, &scope)?;
                if v.is_null() || matches!(v, Value::Float(x) if x.is_nan()) {
                    return Ok(None);
                }
                key.push(v.hash_key());
            }
            Ok(Some(key))
        };

        match kind {
            JoinKind::Inner | JoinKind::Left | JoinKind::Full => {
                let mut table: HashMap<Vec<HashKey>, Vec<usize>> = HashMap::new();
                self.charge_join(right.rows.len() as u64)?;
                for (ri, r) in right.rows.iter().enumerate() {
                    if let Some(k) = side_key(&right, r, &right_exprs)? {
                        table.entry(k).or_default().push(ri);
                    }
                }
                let mut right_matched = vec![false; right.rows.len()];
                for l in &left.rows {
                    let hits: &[usize] = match side_key(&left, l, &left_exprs)? {
                        Some(k) => table.get(&k).map(Vec::as_slice).unwrap_or(&[]),
                        None => &[],
                    };
                    self.charge_join(1 + hits.len() as u64)?;
                    for &ri in hits {
                        let mut combined = l.clone();
                        combined.extend(right.rows[ri].iter().cloned());
                        rows.push(combined);
                        right_matched[ri] = true;
                    }
                    if hits.is_empty() && kind != JoinKind::Inner {
                        let mut combined = l.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, right.width));
                        rows.push(combined);
                    }
                }
                if kind == JoinKind::Full {
                    for (ri, r) in right.rows.iter().enumerate() {
                        if !right_matched[ri] {
                            let mut combined = vec![Value::Null; left.width];
                            combined.extend(r.iter().cloned());
                            rows.push(combined);
                        }
                    }
                }
            }
            JoinKind::Right => {
                let mut table: HashMap<Vec<HashKey>, Vec<usize>> = HashMap::new();
                self.charge_join(left.rows.len() as u64)?;
                for (li, l) in left.rows.iter().enumerate() {
                    if let Some(k) = side_key(&left, l, &left_exprs)? {
                        table.entry(k).or_default().push(li);
                    }
                }
                for r in &right.rows {
                    let hits: &[usize] = match side_key(&right, r, &right_exprs)? {
                        Some(k) => table.get(&k).map(Vec::as_slice).unwrap_or(&[]),
                        None => &[],
                    };
                    self.charge_join(1 + hits.len() as u64)?;
                    for &li in hits {
                        let mut combined = left.rows[li].clone();
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                    if hits.is_empty() {
                        let mut combined = vec![Value::Null; left.width];
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                }
            }
            JoinKind::Cross => unreachable!("cross joins never take the hash path"),
        }
        Ok(RowSet { bindings, rows, width })
    }

    fn nested_join(
        &self,
        left: RowSet,
        right: RowSet,
        kind: JoinKind,
        on: Option<&Expr>,
        outer: Option<&Scope<'_>>,
    ) -> Result<RowSet, EngineError> {
        let mut bindings = left.bindings.clone();
        bindings.extend(right.bindings.clone());
        let width = left.width + right.width;
        let mut rows = Vec::new();

        let on_true = |combined: &[Value]| -> Result<bool, EngineError> {
            match on {
                None => Ok(true),
                Some(pred) => {
                    let scope = Scope { bindings: &bindings, row: combined, parent: outer };
                    Ok(truth(&self.eval(pred, &scope)?) == Some(true))
                }
            }
        };

        match kind {
            JoinKind::Inner | JoinKind::Cross => {
                for l in &left.rows {
                    self.charge_join(right.rows.len().max(1) as u64)?;
                    for r in &right.rows {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                        }
                    }
                }
            }
            JoinKind::Left => {
                for l in &left.rows {
                    self.charge_join(right.rows.len().max(1) as u64)?;
                    let mut matched = false;
                    for r in &right.rows {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                            matched = true;
                        }
                    }
                    if !matched {
                        let mut combined = l.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, right.width));
                        rows.push(combined);
                    }
                }
            }
            JoinKind::Right => {
                for r in &right.rows {
                    self.charge_join(left.rows.len().max(1) as u64)?;
                    let mut matched = false;
                    for l in &left.rows {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                            matched = true;
                        }
                    }
                    if !matched {
                        let mut combined = vec![Value::Null; left.width];
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                }
            }
            JoinKind::Full => {
                let mut right_matched = vec![false; right.rows.len()];
                for l in &left.rows {
                    self.charge_join(right.rows.len().max(1) as u64)?;
                    let mut matched = false;
                    for (ri, r) in right.rows.iter().enumerate() {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                            matched = true;
                            right_matched[ri] = true;
                        }
                    }
                    if !matched {
                        let mut combined = l.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, right.width));
                        rows.push(combined);
                    }
                }
                for (ri, r) in right.rows.iter().enumerate() {
                    if !right_matched[ri] {
                        let mut combined = vec![Value::Null; left.width];
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                }
            }
        }
        Ok(RowSet { bindings, rows, width })
    }

    /// Plan projection: output column names plus per-item evaluation plans.
    fn projection_plan(
        &self,
        stmt: &SelectStatement,
        rowset: &RowSet,
    ) -> Result<(Vec<String>, Vec<PlanItem>), EngineError> {
        let mut names = Vec::new();
        let mut items = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    let mut offset = 0usize;
                    for b in &rowset.bindings {
                        for (ci, c) in b.columns.iter().enumerate() {
                            names.push(c.clone());
                            items.push(PlanItem::Passthrough(offset + ci));
                        }
                        offset += b.columns.len();
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut offset = 0usize;
                    let mut found = false;
                    for b in &rowset.bindings {
                        if b.name.eq_ignore_ascii_case(q) {
                            for (ci, c) in b.columns.iter().enumerate() {
                                names.push(c.clone());
                                items.push(PlanItem::Passthrough(offset + ci));
                            }
                            found = true;
                            break;
                        }
                        offset += b.columns.len();
                    }
                    if !found {
                        return Err(EngineError::UnknownTable { name: q.clone() });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.name.clone(),
                        Expr::Function { name, .. } => name.to_ascii_lowercase(),
                        _ => format!("expr_{i}"),
                    });
                    names.push(name);
                    items.push(PlanItem::Expr(expr.clone()));
                }
            }
        }
        Ok((names, items))
    }

    /// Evaluate an expression over a unit (group or single row).
    fn eval_unit(
        &self,
        e: &Expr,
        unit: &(Vec<Value>, Vec<Vec<Value>>),
        bindings: &[Binding],
        outer: Option<&Scope<'_>>,
    ) -> Result<Value, EngineError> {
        let (rep, group) = unit;
        if contains_aggregate(e) {
            self.eval_grouped(e, rep, group, bindings, outer)
        } else {
            let scope = Scope { bindings, row: rep, parent: outer };
            self.eval(e, &scope)
        }
    }

    /// Evaluate with aggregate support: aggregate calls are computed over the
    /// group's rows; everything else over the representative row.
    fn eval_grouped(
        &self,
        e: &Expr,
        rep: &[Value],
        group: &[Vec<Value>],
        bindings: &[Binding],
        outer: Option<&Scope<'_>>,
    ) -> Result<Value, EngineError> {
        match e {
            Expr::Function { name, args, distinct } if is_aggregate_name(name) => {
                self.eval_aggregate(name, args, *distinct, group, bindings, outer)
            }
            // AND/OR need the same three-valued short-circuit as scalar
            // `eval` — routing them into `eval_binary` would hit its
            // `unreachable!` arm (e.g. `HAVING COUNT(*) > 1 AND x = 1`).
            Expr::Binary { left, op: BinOp::And, right } => {
                let l = truth(&self.eval_grouped(left, rep, group, bindings, outer)?);
                if l == Some(false) {
                    return Ok(bool_value(Some(false)));
                }
                let r = truth(&self.eval_grouped(right, rep, group, bindings, outer)?);
                Ok(bool_value(match (l, r) {
                    (Some(true), Some(true)) => Some(true),
                    (_, Some(false)) => Some(false),
                    _ => None,
                }))
            }
            Expr::Binary { left, op: BinOp::Or, right } => {
                let l = truth(&self.eval_grouped(left, rep, group, bindings, outer)?);
                if l == Some(true) {
                    return Ok(bool_value(Some(true)));
                }
                let r = truth(&self.eval_grouped(right, rep, group, bindings, outer)?);
                Ok(bool_value(match (l, r) {
                    (Some(false), Some(false)) => Some(false),
                    (_, Some(true)) => Some(true),
                    _ => None,
                }))
            }
            Expr::Binary { left, op, right } => {
                let l = self.eval_grouped(left, rep, group, bindings, outer)?;
                let r = self.eval_grouped(right, rep, group, bindings, outer)?;
                eval_binary(&l, *op, &r)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_grouped(expr, rep, group, bindings, outer)?;
                eval_unary(*op, &v)
            }
            _ => {
                let scope = Scope { bindings, row: rep, parent: outer };
                self.eval(e, &scope)
            }
        }
    }

    fn eval_aggregate(
        &self,
        name: &str,
        args: &[FunctionArg],
        distinct: bool,
        group: &[Vec<Value>],
        bindings: &[Binding],
        outer: Option<&Scope<'_>>,
    ) -> Result<Value, EngineError> {
        // COUNT(*)
        if name == "COUNT" && matches!(args.first(), Some(FunctionArg::Wildcard)) {
            return Ok(Value::Int(group.len() as i64));
        }
        let arg = match args.first() {
            Some(FunctionArg::Expr(e)) => e,
            Some(FunctionArg::Wildcard) => {
                return Err(EngineError::type_error(format!("{name}(*) is not valid")))
            }
            None => {
                return Err(EngineError::type_error(format!("{name} requires an argument")))
            }
        };
        let mut values = Vec::with_capacity(group.len());
        for row in group {
            let scope = Scope { bindings, row, parent: outer };
            let v = self.eval(arg, &scope)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        finish_aggregate(name, distinct, values)
    }

    /// Scalar expression evaluation.
    fn eval(&self, e: &Expr, scope: &Scope<'_>) -> Result<Value, EngineError> {
        match e {
            Expr::Literal(l) => Ok(match l {
                snails_sql::Literal::Int(n) => Value::Int(*n),
                snails_sql::Literal::Float(x) => Value::Float(*x),
                snails_sql::Literal::Str(s) => Value::from(s.as_str()),
                snails_sql::Literal::Null => Value::Null,
            }),
            Expr::Column(c) => scope.resolve(c),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, scope)?;
                eval_unary(*op, &v)
            }
            Expr::Binary { left, op, right } => match op {
                BinOp::And => {
                    let l = truth(&self.eval(left, scope)?);
                    if l == Some(false) {
                        return Ok(bool_value(Some(false)));
                    }
                    let r = truth(&self.eval(right, scope)?);
                    Ok(bool_value(match (l, r) {
                        (Some(true), Some(true)) => Some(true),
                        (_, Some(false)) => Some(false),
                        _ => None,
                    }))
                }
                BinOp::Or => {
                    let l = truth(&self.eval(left, scope)?);
                    if l == Some(true) {
                        return Ok(bool_value(Some(true)));
                    }
                    let r = truth(&self.eval(right, scope)?);
                    Ok(bool_value(match (l, r) {
                        (Some(false), Some(false)) => Some(false),
                        (_, Some(true)) => Some(true),
                        _ => None,
                    }))
                }
                _ => {
                    let l = self.eval(left, scope)?;
                    let r = self.eval(right, scope)?;
                    eval_binary(&l, *op, &r)
                }
            },
            Expr::Function { name, args, distinct } => {
                if is_aggregate_name(name) {
                    // Aggregate in scalar context = aggregate over the single
                    // current row (occurs inside correlated subqueries that
                    // have their own grouping handled by exec; treat as error
                    // to catch planner mistakes).
                    let _ = distinct;
                    return Err(EngineError::type_error(format!(
                        "aggregate {name} outside grouped context"
                    )));
                }
                self.eval_scalar_fn(name, args, scope)
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, scope)?;
                Ok(bool_value(Some(v.is_null() != *negated)))
            }
            Expr::InList { expr, list, negated } => {
                let v = self.eval(expr, scope)?;
                let mut saw_null = v.is_null();
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, scope)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                let b = if found {
                    Some(true)
                } else if saw_null {
                    None
                } else {
                    Some(false)
                };
                Ok(bool_value(b.map(|x| x != *negated)))
            }
            Expr::InSubquery { expr, query, negated } => {
                let v = self.eval(expr, scope)?;
                let rs = self.select(query, Some(scope))?;
                let mut saw_null = v.is_null();
                let mut found = false;
                for row in &rs.rows {
                    let Some(iv) = row.first() else { continue };
                    match v.sql_eq(iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                let b = if found {
                    Some(true)
                } else if saw_null {
                    None
                } else {
                    Some(false)
                };
                Ok(bool_value(b.map(|x| x != *negated)))
            }
            Expr::Exists { query, negated } => {
                let rs = self.select(query, Some(scope))?;
                Ok(bool_value(Some(rs.is_empty() == *negated)))
            }
            Expr::Between { expr, low, high, negated } => {
                let v = self.eval(expr, scope)?;
                let lo = self.eval(low, scope)?;
                let hi = self.eval(high, scope)?;
                let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
                let b = match (ge, le) {
                    (Some(a), Some(b)) => Some(a && b),
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    _ => None,
                };
                Ok(bool_value(b.map(|x| x != *negated)))
            }
            Expr::Like { expr, pattern, negated } => {
                let v = self.eval(expr, scope)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        let m = like_match(&s.to_ascii_lowercase(), &pattern.to_ascii_lowercase());
                        Ok(bool_value(Some(m != *negated)))
                    }
                    other => Err(EngineError::type_error(format!("LIKE over {other:?}"))),
                }
            }
            Expr::Subquery(q) => {
                let rs = self.select(q, Some(scope))?;
                Ok(rs.scalar().cloned().unwrap_or(Value::Null))
            }
            Expr::Case { operand, branches, else_expr } => {
                match operand {
                    // Simple case: compare the operand to each WHEN value.
                    Some(op) => {
                        let v = self.eval(op, scope)?;
                        for (when, then) in branches {
                            let w = self.eval(when, scope)?;
                            if v.sql_eq(&w) == Some(true) {
                                return self.eval(then, scope);
                            }
                        }
                    }
                    // Searched case: first true WHEN predicate wins.
                    None => {
                        for (when, then) in branches {
                            if truth(&self.eval(when, scope)?) == Some(true) {
                                return self.eval(then, scope);
                            }
                        }
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, scope),
                    None => Ok(Value::Null),
                }
            }
            Expr::Wildcard => Err(EngineError::type_error("bare * outside COUNT")),
        }
    }

    fn eval_scalar_fn(
        &self,
        name: &str,
        args: &[FunctionArg],
        scope: &Scope<'_>,
    ) -> Result<Value, EngineError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            match a {
                FunctionArg::Wildcard => {
                    return Err(EngineError::type_error(format!("{name}(*) is not valid")))
                }
                FunctionArg::Expr(e) => vals.push(self.eval(e, scope)?),
            }
        }
        scalar_fn(name, &vals)
    }
}

/// Finish an aggregate over the already-collected non-NULL argument values:
/// applies `DISTINCT` and dispatches on the (uppercase) aggregate name.
/// Shared between the interpreter and the compiled-plan runner so both paths
/// produce identical values and identical error messages.
pub(crate) fn finish_aggregate(
    name: &str,
    distinct: bool,
    mut values: Vec<Value>,
) -> Result<Value, EngineError> {
    if distinct {
        let mut seen: HashSet<HashKey> = HashSet::new();
        values.retain(|v| seen.insert(v.hash_key()));
    }
    match name {
        "COUNT" => Ok(Value::Int(values.len() as i64)),
        "SUM" | "AVG" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0;
            // Checked i64 accumulator for the all-int case, so huge sums
            // surface a TypeError instead of a lossy f64 → i64 cast.
            let mut int_sum: Option<i64> = Some(0);
            for v in &values {
                int_sum = match (int_sum, v) {
                    (Some(acc), Value::Int(n)) => Some(acc.checked_add(*n).ok_or_else(
                        || EngineError::type_error(format!("integer overflow in {name}")),
                    )?),
                    _ => None,
                };
                sum += v
                    .as_f64()
                    .ok_or_else(|| EngineError::type_error(format!("{name} over non-numeric")))?;
            }
            if name == "AVG" {
                Ok(Value::Float(sum / values.len() as f64))
            } else if let Some(s) = int_sum {
                Ok(Value::Int(s))
            } else {
                Ok(Value::Float(sum))
            }
        }
        "MIN" | "MAX" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_v = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => name == "MIN",
                            Some(std::cmp::Ordering::Greater) => name == "MAX",
                            _ => false,
                        };
                        if keep_v {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        other => Err(EngineError::unsupported(format!("aggregate {other}"))),
    }
}

/// Dispatch a scalar function over already-evaluated argument values.
/// Shared between the interpreter and the compiled-plan runner.
pub(crate) fn scalar_fn(name: &str, vals: &[Value]) -> Result<Value, EngineError> {
    {
        let arg0 = vals.first();
        match name {
            "YEAR" => match arg0 {
                Some(Value::Str(s)) => {
                    let year: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
                    year.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| EngineError::type_error(format!("YEAR over {s:?}")))
                }
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Err(EngineError::type_error(format!("YEAR over {other:?}"))),
            },
            "UPPER" => match arg0 {
                Some(Value::Str(s)) => Ok(Value::from(s.to_ascii_uppercase())),
                Some(Value::Null) => Ok(Value::Null),
                _ => Err(EngineError::type_error("UPPER requires text")),
            },
            "LOWER" => match arg0 {
                Some(Value::Str(s)) => Ok(Value::from(s.to_ascii_lowercase())),
                Some(Value::Null) => Ok(Value::Null),
                _ => Err(EngineError::type_error("LOWER requires text")),
            },
            "LEN" => match arg0 {
                Some(Value::Str(s)) => Ok(Value::Int(s.len() as i64)),
                Some(Value::Null) => Ok(Value::Null),
                _ => Err(EngineError::type_error("LEN requires text")),
            },
            "ABS" => match arg0 {
                Some(v) => v.checked_abs(),
                None => Err(EngineError::type_error("ABS requires a number")),
            },
            "MONTH" | "DAY" => match arg0 {
                Some(Value::Str(s)) => {
                    let part = s.split('-').nth(if name == "MONTH" { 1 } else { 2 });
                    part.and_then(|p| {
                        p.chars()
                            .take_while(|c| c.is_ascii_digit())
                            .collect::<String>()
                            .parse::<i64>()
                            .ok()
                    })
                    .map(Value::Int)
                    .ok_or_else(|| EngineError::type_error(format!("{name} over {s:?}")))
                }
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Err(EngineError::type_error(format!("{name} over {other:?}"))),
            },
            "COALESCE" => {
                for v in vals {
                    if !v.is_null() {
                        return Ok(v.clone());
                    }
                }
                Ok(Value::Null)
            }
            "SUBSTRING" => match (arg0, vals.get(1), vals.get(2)) {
                (Some(Value::Null), _, _) => Ok(Value::Null),
                (Some(Value::Str(s)), Some(start), Some(len)) => {
                    // T-SQL SUBSTRING is 1-based.
                    let start = start
                        .as_i64()
                        .ok_or_else(|| EngineError::type_error("SUBSTRING start"))?
                        .max(1) as usize;
                    let len = len
                        .as_i64()
                        .ok_or_else(|| EngineError::type_error("SUBSTRING length"))?
                        .max(0) as usize;
                    Ok(Value::from(s.chars().skip(start - 1).take(len).collect::<String>()))
                }
                _ => Err(EngineError::type_error("SUBSTRING(text, start, length)")),
            },
            "ROUND" => {
                let x = match arg0 {
                    Some(Value::Null) => return Ok(Value::Null),
                    Some(v) => v
                        .as_f64()
                        .ok_or_else(|| EngineError::type_error("ROUND requires a number"))?,
                    None => return Err(EngineError::type_error("ROUND requires a number")),
                };
                let digits = vals.get(1).and_then(Value::as_i64).unwrap_or(0);
                let factor = 10f64.powi(digits as i32);
                Ok(Value::Float((x * factor).round() / factor))
            }
            other => Err(EngineError::unsupported(format!("function {other}"))),
        }
    }
}

/// Evaluation plan for one projection item.
enum PlanItem {
    /// Copy a source column by combined-row offset (wildcard expansion).
    Passthrough(usize),
    /// Evaluate an expression.
    Expr(Expr),
}

pub(crate) fn eval_unary(op: UnaryOp, v: &Value) -> Result<Value, EngineError> {
    match op {
        UnaryOp::Not => Ok(bool_value(truth(v).map(|b| !b))),
        UnaryOp::Neg => v.checked_neg(),
    }
}

pub(crate) fn eval_binary(l: &Value, op: BinOp, r: &Value) -> Result<Value, EngineError> {
    use std::cmp::Ordering;
    if op.is_comparison() {
        let b = l.sql_cmp(r).map(|o| match op {
            BinOp::Eq => o == Ordering::Equal,
            BinOp::NotEq => o != Ordering::Equal,
            BinOp::Lt => o == Ordering::Less,
            BinOp::LtEq => o != Ordering::Greater,
            BinOp::Gt => o == Ordering::Greater,
            BinOp::GtEq => o != Ordering::Less,
            _ => unreachable!("is_comparison"),
        });
        return Ok(bool_value(b));
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // String + string = concatenation (T-SQL).
            if op == BinOp::Add {
                if let (Value::Str(a), Value::Str(b)) = (l, r) {
                    return Ok(Value::from(format!("{a}{b}")));
                }
            }
            let arith = match op {
                BinOp::Add => ArithOp::Add,
                BinOp::Sub => ArithOp::Sub,
                BinOp::Mul => ArithOp::Mul,
                BinOp::Div => ArithOp::Div,
                BinOp::Mod => ArithOp::Mod,
                _ => unreachable!(),
            };
            l.checked_arith(arith, r)
        }
        BinOp::And | BinOp::Or => unreachable!("handled with short-circuit"),
        _ => unreachable!("comparisons handled above"),
    }
}

/// `LIKE` pattern matching with `%` and `_` wildcards (inputs pre-lowercased).
///
/// Two-pointer greedy algorithm: on a mismatch after a `%`, the match
/// restarts one character later in the subject rather than recursing over
/// every split point, so the worst case is O(subject × pattern) instead of
/// the exponential blow-up of the naive backtracking formulation on
/// adversarial patterns like `%a%a%a%…`.
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    let (s, p) = (s.as_bytes(), pattern.as_bytes());
    let (mut si, mut pi) = (0usize, 0usize);
    // Position of the most recent `%` (pattern index after it, subject
    // index where its match attempt started).
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        match p.get(pi) {
            Some(b'%') => {
                pi += 1;
                star = Some((pi, si));
            }
            Some(&c) if c == b'_' || c == s[si] => {
                si += 1;
                pi += 1;
            }
            _ => match star {
                // Let the last `%` absorb one more subject byte and retry.
                Some((restart_p, restart_s)) => {
                    si = restart_s + 1;
                    pi = restart_p;
                    star = Some((restart_p, si));
                }
                None => return false,
            },
        }
    }
    // Subject exhausted: the rest of the pattern must be all `%`.
    p[pi..].iter().all(|&c| c == b'%')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, TableSchema};
    use crate::run_sql;
    use crate::value::DataType;

    /// A small two-table database used throughout the executor tests.
    fn wildlife_db() -> Database {
        let mut db = Database::new("wildlife");
        db.create_table(
            TableSchema::new("tbl_Species")
                .column("SpeciesCode", DataType::Varchar)
                .column("CommonName", DataType::Varchar)
                .column("Family", DataType::Varchar),
        );
        db.create_table(
            TableSchema::new("tbl_Observations")
                .column("Obs_ID", DataType::Int)
                .column("SpCode", DataType::Varchar)
                .column("ObsCount", DataType::Int)
                .column("ObsDate", DataType::Date)
                .column("Site", DataType::Varchar),
        );
        let species = [
            ("ELK", "Elk", "Cervidae"),
            ("MDR", "Mule Deer", "Cervidae"),
            ("CYT", "Coyote", "Canidae"),
            ("BDG", "Badger", "Mustelidae"),
        ];
        for (c, n, f) in species {
            db.insert("tbl_Species", vec![c.into(), n.into(), f.into()]).unwrap();
        }
        let obs: [(i64, &str, i64, &str, &str); 6] = [
            (1, "ELK", 4, "2021-05-02", "North"),
            (2, "ELK", 2, "2021-06-11", "South"),
            (3, "MDR", 7, "2021-05-20", "North"),
            (4, "CYT", 1, "2020-09-30", "East"),
            (5, "CYT", 3, "2021-07-04", "North"),
            (6, "ELK", 5, "2022-01-15", "South"),
        ];
        for (id, sp, n, d, site) in obs {
            db.insert(
                "tbl_Observations",
                vec![Value::Int(id), sp.into(), Value::Int(n), d.into(), site.into()],
            )
            .unwrap();
        }
        db
    }

    fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
        run_sql(db, sql).unwrap_or_else(|e| panic!("{sql}: {e}")).rows
    }

    #[test]
    fn projection_and_where() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT CommonName FROM tbl_Species WHERE Family = 'Cervidae'");
        assert_eq!(r, vec![vec![Value::from("Elk")], vec![Value::from("Mule Deer")]]);
    }

    #[test]
    fn wildcard_expansion() {
        let db = wildlife_db();
        let rs = run_sql(&db, "SELECT * FROM tbl_Species").unwrap();
        assert_eq!(rs.columns, ["SpeciesCode", "CommonName", "Family"]);
        assert_eq!(rs.row_count(), 4);
    }

    #[test]
    fn count_star_group_by_having() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT SpCode, COUNT(*) AS n FROM tbl_Observations \
             GROUP BY SpCode HAVING COUNT(*) > 1 ORDER BY n DESC, SpCode",
        );
        assert_eq!(
            r,
            vec![
                vec![Value::from("ELK"), Value::Int(3)],
                vec![Value::from("CYT"), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn aggregates_without_group_by() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT COUNT(*), SUM(ObsCount), MIN(ObsCount), MAX(ObsCount), AVG(ObsCount) FROM tbl_Observations");
        assert_eq!(
            r,
            vec![vec![
                Value::Int(6),
                Value::Int(22),
                Value::Int(1),
                Value::Int(7),
                Value::Float(22.0 / 6.0),
            ]]
        );
    }

    #[test]
    fn aggregates_on_empty_input() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT COUNT(*), SUM(ObsCount) FROM tbl_Observations WHERE ObsCount > 99");
        assert_eq!(r, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn count_distinct() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT COUNT(DISTINCT SpCode) FROM tbl_Observations");
        assert_eq!(r, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn inner_join_with_alias() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT s.CommonName, o.ObsCount FROM tbl_Species s \
             JOIN tbl_Observations o ON s.SpeciesCode = o.SpCode \
             WHERE o.Site = 'North' ORDER BY o.ObsCount",
        );
        assert_eq!(
            r,
            vec![
                vec![Value::from("Coyote"), Value::Int(3)],
                vec![Value::from("Elk"), Value::Int(4)],
                vec![Value::from("Mule Deer"), Value::Int(7)],
            ]
        );
    }

    #[test]
    fn left_join_null_padding() {
        let db = wildlife_db();
        // Badger has no observations.
        let r = rows(
            &db,
            "SELECT s.CommonName FROM tbl_Species s \
             LEFT JOIN tbl_Observations o ON s.SpeciesCode = o.SpCode \
             WHERE o.Obs_ID IS NULL",
        );
        assert_eq!(r, vec![vec![Value::from("Badger")]]);
    }

    #[test]
    fn right_join_mirrors_left() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT s.CommonName FROM tbl_Observations o \
             RIGHT JOIN tbl_Species s ON s.SpeciesCode = o.SpCode \
             WHERE o.Obs_ID IS NULL",
        );
        assert_eq!(r, vec![vec![Value::from("Badger")]]);
    }

    #[test]
    fn composite_key_join() {
        let mut db = Database::new("ck");
        db.create_table(
            TableSchema::new("A")
                .column("k1", DataType::Int)
                .column("k2", DataType::Int)
                .column("x", DataType::Varchar),
        );
        db.create_table(
            TableSchema::new("B")
                .column("k1", DataType::Int)
                .column("k2", DataType::Int)
                .column("y", DataType::Varchar),
        );
        db.insert("A", vec![Value::Int(1), Value::Int(1), "a11".into()]).unwrap();
        db.insert("A", vec![Value::Int(1), Value::Int(2), "a12".into()]).unwrap();
        db.insert("B", vec![Value::Int(1), Value::Int(2), "b12".into()]).unwrap();
        let r = rows(&db, "SELECT A.x, B.y FROM A JOIN B ON A.k1 = B.k1 AND A.k2 = B.k2");
        assert_eq!(r, vec![vec![Value::from("a12"), Value::from("b12")]]);
    }

    #[test]
    fn cross_join_cardinality() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT COUNT(*) FROM tbl_Species CROSS JOIN tbl_Observations");
        assert_eq!(r, vec![vec![Value::Int(24)]]);
    }

    #[test]
    fn exists_correlated() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT CommonName FROM tbl_Species s WHERE EXISTS \
             (SELECT Obs_ID FROM tbl_Observations WHERE SpCode = s.SpeciesCode) \
             ORDER BY CommonName",
        );
        assert_eq!(
            r,
            vec![
                vec![Value::from("Coyote")],
                vec![Value::from("Elk")],
                vec![Value::from("Mule Deer")],
            ]
        );
    }

    #[test]
    fn not_exists_correlated() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT CommonName FROM tbl_Species s WHERE NOT EXISTS \
             (SELECT 1 FROM tbl_Observations o WHERE o.SpCode = s.SpeciesCode)",
        );
        assert_eq!(r, vec![vec![Value::from("Badger")]]);
    }

    #[test]
    fn in_subquery() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT CommonName FROM tbl_Species WHERE SpeciesCode IN \
             (SELECT SpCode FROM tbl_Observations WHERE Site = 'East')",
        );
        assert_eq!(r, vec![vec![Value::from("Coyote")]]);
    }

    #[test]
    fn scalar_subquery_comparison() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT Obs_ID FROM tbl_Observations \
             WHERE ObsCount > (SELECT AVG(ObsCount) FROM tbl_Observations) ORDER BY Obs_ID",
        );
        assert_eq!(r, vec![vec![Value::Int(1)], vec![Value::Int(3)], vec![Value::Int(6)]]);
    }

    #[test]
    fn derived_table() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT x.SpCode FROM (SELECT SpCode, COUNT(*) AS n FROM tbl_Observations \
             GROUP BY SpCode) x WHERE x.n = 3",
        );
        assert_eq!(r, vec![vec![Value::from("ELK")]]);
    }

    #[test]
    fn top_and_order() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT TOP 2 Obs_ID FROM tbl_Observations ORDER BY ObsCount DESC");
        assert_eq!(r, vec![vec![Value::Int(3)], vec![Value::Int(6)]]);
    }

    #[test]
    fn distinct_dedup() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT DISTINCT Site FROM tbl_Observations ORDER BY Site");
        assert_eq!(
            r,
            vec![
                vec![Value::from("East")],
                vec![Value::from("North")],
                vec![Value::from("South")],
            ]
        );
    }

    #[test]
    fn year_function_and_between() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT COUNT(*) FROM tbl_Observations WHERE YEAR(ObsDate) = 2021 \
             AND ObsCount BETWEEN 2 AND 5",
        );
        assert_eq!(r, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn like_patterns() {
        let db = wildlife_db();
        let r = rows(&db, "SELECT CommonName FROM tbl_Species WHERE CommonName LIKE '%deer%'");
        assert_eq!(r, vec![vec![Value::from("Mule Deer")]]);
        let r = rows(&db, "SELECT CommonName FROM tbl_Species WHERE CommonName LIKE '_lk'");
        assert_eq!(r, vec![vec![Value::from("Elk")]]);
    }

    #[test]
    fn not_in_list_with_null_semantics() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT CommonName FROM tbl_Species WHERE Family NOT IN ('Cervidae', 'Canidae')",
        );
        assert_eq!(r, vec![vec![Value::from("Badger")]]);
    }

    #[test]
    fn order_by_alias() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT Site, SUM(ObsCount) AS total FROM tbl_Observations \
             GROUP BY Site ORDER BY total DESC",
        );
        assert_eq!(r[0][0], Value::from("North"));
    }

    #[test]
    fn group_by_expression() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT YEAR(ObsDate) AS y, COUNT(*) FROM tbl_Observations GROUP BY YEAR(ObsDate) ORDER BY y",
        );
        assert_eq!(
            r,
            vec![
                vec![Value::Int(2020), Value::Int(1)],
                vec![Value::Int(2021), Value::Int(4)],
                vec![Value::Int(2022), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn views_execute() {
        let mut db = wildlife_db();
        let ddl = snails_sql::parse(
            "CREATE VIEW db_nl.species AS SELECT SpeciesCode AS species_code, \
             CommonName AS common_name FROM tbl_Species",
        )
        .unwrap();
        apply_ddl(&mut db, &ddl).unwrap();
        let r = rows(&db, "SELECT common_name FROM db_nl.species WHERE species_code = 'ELK'");
        assert_eq!(r, vec![vec![Value::from("Elk")]]);
        // Unqualified also resolves (no table collision).
        let r = rows(&db, "SELECT common_name FROM species WHERE species_code = 'ELK'");
        assert_eq!(r, vec![vec![Value::from("Elk")]]);
    }

    #[test]
    fn unknown_identifiers_error() {
        let db = wildlife_db();
        assert!(matches!(
            run_sql(&db, "SELECT x FROM missing"),
            Err(EngineError::UnknownTable { .. })
        ));
        assert!(matches!(
            run_sql(&db, "SELECT missing FROM tbl_Species"),
            Err(EngineError::UnknownColumn { .. })
        ));
        assert!(matches!(
            run_sql(&db, "SELECT tbl_Species.Oops FROM tbl_Species"),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn ambiguous_column_errors() {
        let db = wildlife_db();
        // SpeciesCode only exists in one table, SpCode in the other; but a
        // self-join makes everything ambiguous.
        assert!(matches!(
            run_sql(
                &db,
                "SELECT CommonName FROM tbl_Species a JOIN tbl_Species b ON a.SpeciesCode = b.SpeciesCode"
            ),
            Err(EngineError::AmbiguousColumn { .. })
        ));
    }

    #[test]
    fn select_without_from() {
        let db = Database::new("x");
        let r = rows(&db, "SELECT 1 + 2 AS three");
        assert_eq!(r, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn arithmetic_and_null_propagation() {
        let db = Database::new("x");
        assert_eq!(rows(&db, "SELECT 7 % 3"), vec![vec![Value::Int(1)]]);
        assert_eq!(rows(&db, "SELECT NULL + 1"), vec![vec![Value::Null]]);
        assert_eq!(rows(&db, "SELECT 'a' + 'b'"), vec![vec![Value::from("ab")]]);
        assert_eq!(rows(&db, "SELECT 10 / 4"), vec![vec![Value::Float(2.5)]]);
    }

    #[test]
    fn checked_arithmetic_errors_instead_of_panicking() {
        let db = Database::new("x");
        // Division / modulo by zero: a TypeError, never NULL or a panic.
        for sql in ["SELECT 1 / 0", "SELECT 1 % 0", "SELECT 1.0 / 0", "SELECT 1.5 % 0.0"] {
            assert!(
                matches!(run_sql(&db, sql), Err(EngineError::TypeError { .. })),
                "{sql} should be a type error"
            );
        }
        // i64 overflow paths: negation, ABS, +, *. i64::MIN has no literal
        // form (the parser sees unary minus on an out-of-range magnitude),
        // so build it as MIN = -MAX - 1.
        let max = i64::MAX;
        for sql in [
            format!("SELECT -(-{max} - 1)"),
            format!("SELECT ABS(-{max} - 1)"),
            format!("SELECT {max} + 1"),
            format!("SELECT {max} * 2"),
        ] {
            assert!(
                matches!(run_sql(&db, &sql), Err(EngineError::TypeError { .. })),
                "{sql} should be a type error"
            );
        }
        // NULL operands still propagate before the zero check (SQL semantics).
        assert_eq!(rows(&db, "SELECT NULL / 0"), vec![vec![Value::Null]]);
    }

    #[test]
    fn exec_limits_stop_cross_join_bomb() {
        let mut db = Database::new("bomb");
        db.create_table(crate::catalog::TableSchema::new("t").column("x", crate::value::DataType::Int));
        for i in 0..1000i64 {
            db.insert("t", vec![Value::Int(i)]).unwrap();
        }
        // 1000^3 = 10^9 nested-loop iterations: far over the join budget.
        let sql = "SELECT COUNT(*) FROM t AS a CROSS JOIN t AS b CROSS JOIN t AS c";
        let opts = ExecOptions {
            limits: ExecLimits { max_join_rows: Some(100_000), ..Default::default() },
            ..Default::default()
        };
        let err = crate::run_sql_with(&db, sql, opts).unwrap_err();
        assert!(err.is_resource_exhausted(), "got {err}");
        // Unlimited options still run the small joins fine.
        let ok = crate::run_sql_with(
            &db,
            "SELECT COUNT(*) FROM t AS a JOIN t AS b ON a.x = b.x",
            ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(ok.rows, vec![vec![Value::Int(1000)]]);
    }

    #[test]
    fn exec_limits_output_rows_and_depth() {
        let mut db = Database::new("lim");
        db.create_table(crate::catalog::TableSchema::new("t").column("x", crate::value::DataType::Int));
        for i in 0..50i64 {
            db.insert("t", vec![Value::Int(i)]).unwrap();
        }
        let opts = ExecOptions {
            limits: ExecLimits { max_output_rows: Some(10), ..Default::default() },
            ..Default::default()
        };
        let err = crate::run_sql_with(&db, "SELECT x FROM t", opts).unwrap_err();
        assert!(err.is_resource_exhausted(), "got {err}");
        // TOP under the budget passes.
        assert!(crate::run_sql_with(&db, "SELECT TOP 5 x FROM t", opts).is_ok());

        let deep = ExecOptions {
            limits: ExecLimits { max_subquery_depth: Some(2), ..Default::default() },
            ..Default::default()
        };
        let err = crate::run_sql_with(
            &db,
            "SELECT x FROM t WHERE x IN (SELECT x FROM t WHERE x IN (SELECT x FROM t))",
            deep,
        )
        .unwrap_err();
        assert!(err.is_resource_exhausted(), "got {err}");
        assert!(crate::run_sql_with(&db, "SELECT COUNT(*) FROM t", deep).is_ok());
    }

    #[test]
    fn guarded_limits_leave_normal_queries_alone() {
        let db = wildlife_db();
        let opts = ExecOptions { limits: ExecLimits::guarded(), ..Default::default() };
        let rs = crate::run_sql_with(
            &db,
            "SELECT s.CommonName, COUNT(*) FROM tbl_Species s \
             JOIN tbl_Observations o ON s.SpeciesCode = o.SpCode \
             GROUP BY s.CommonName ORDER BY s.CommonName",
            opts,
        )
        .unwrap();
        assert!(!rs.rows.is_empty());
        assert!(!ExecLimits::guarded().is_unlimited());
        assert!(ExecLimits::UNLIMITED.is_unlimited());
    }

    #[test]
    fn three_valued_logic() {
        let db = Database::new("x");
        // NULL = NULL is unknown, so the row is filtered out.
        assert!(rows(&db, "SELECT 1 WHERE NULL = NULL").is_empty());
        // TRUE OR NULL = TRUE.
        assert_eq!(rows(&db, "SELECT 1 WHERE 1 = 1 OR NULL = 1").len(), 1);
        // FALSE AND NULL = FALSE (short-circuit).
        assert!(rows(&db, "SELECT 1 WHERE 1 = 2 AND NULL = 1").is_empty());
    }

    #[test]
    fn scalar_functions() {
        let db = Database::new("x");
        assert_eq!(rows(&db, "SELECT UPPER('elk')"), vec![vec![Value::from("ELK")]]);
        assert_eq!(rows(&db, "SELECT LOWER('ELK')"), vec![vec![Value::from("elk")]]);
        assert_eq!(rows(&db, "SELECT LEN('abcd')"), vec![vec![Value::Int(4)]]);
        assert_eq!(rows(&db, "SELECT ABS(-3)"), vec![vec![Value::Int(3)]]);
        assert_eq!(rows(&db, "SELECT ROUND(2.567, 1)"), vec![vec![Value::Float(2.6)]]);
        assert_eq!(rows(&db, "SELECT YEAR('2021-05-02')"), vec![vec![Value::Int(2021)]]);
    }

    #[test]
    fn like_match_unit() {
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "a%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "a_c"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "b%"));
        assert!(!like_match("abc", "____"));
        assert!(like_match("a%b", "a%b"));
    }

    /// Adversarial pattern that is exponential under naive backtracking:
    /// `%a%a%a%…` against a long string of `b`s must fail fast under the
    /// two-pointer matcher (the old recursive formulation would not return
    /// within the lifetime of the test runner).
    #[test]
    fn like_match_adversarial_is_linear() {
        let subject = "b".repeat(10_000);
        let pattern = "%a".repeat(30) + "%";
        let start = std::time::Instant::now();
        assert!(!like_match(&subject, &pattern));
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
        // And the matching variant still succeeds.
        let subject = "ba".repeat(40);
        assert!(like_match(&subject, &pattern));
    }

    /// `HAVING` with AND/OR over an aggregate used to panic: `eval_grouped`
    /// forwarded `And`/`Or` into `eval_binary`, whose arm is `unreachable!`.
    #[test]
    fn having_with_logical_connectives() {
        let db = wildlife_db();
        let r = rows(
            &db,
            "SELECT SpCode, COUNT(*) FROM tbl_Observations GROUP BY SpCode \
             HAVING COUNT(*) > 1 AND SpCode = 'ELK'",
        );
        assert_eq!(r, vec![vec![Value::from("ELK"), Value::Int(3)]]);
        let r = rows(
            &db,
            "SELECT SpCode, COUNT(*) FROM tbl_Observations GROUP BY SpCode \
             HAVING COUNT(*) > 2 OR SpCode = 'MDR' ORDER BY SpCode",
        );
        assert_eq!(r, vec![
            vec![Value::from("ELK"), Value::Int(3)],
            vec![Value::from("MDR"), Value::Int(1)],
        ]);
    }

    #[test]
    fn qualified_wildcard() {
        let db = wildlife_db();
        let rs = run_sql(
            &db,
            "SELECT s.* FROM tbl_Species s JOIN tbl_Observations o ON s.SpeciesCode = o.SpCode \
             WHERE o.Obs_ID = 1",
        )
        .unwrap();
        assert_eq!(rs.columns, ["SpeciesCode", "CommonName", "Family"]);
        assert_eq!(rs.row_count(), 1);
    }

    #[test]
    fn case_expressions() {
        let db = wildlife_db();
        // Searched case.
        let r = rows(
            &db,
            "SELECT Obs_ID, CASE WHEN ObsCount > 4 THEN 'many' WHEN ObsCount > 2 THEN 'some' \
             ELSE 'few' END FROM tbl_Observations ORDER BY Obs_ID",
        );
        assert_eq!(r[0][1], Value::from("some")); // ObsCount 4 → 'some'
        assert_eq!(r[2][1], Value::from("many")); // ObsCount 7
        assert_eq!(r[3][1], Value::from("few")); // ObsCount 1
        // Simple case with no ELSE yields NULL on no match.
        let r = rows(&db, "SELECT CASE Site WHEN 'East' THEN 1 END FROM tbl_Observations WHERE Obs_ID = 1");
        assert_eq!(r, vec![vec![Value::Null]]);
        // CASE usable in GROUP BY.
        let r = rows(
            &db,
            "SELECT CASE WHEN ObsCount > 3 THEN 'hi' ELSE 'lo' END AS bucket, COUNT(*) \
             FROM tbl_Observations GROUP BY CASE WHEN ObsCount > 3 THEN 'hi' ELSE 'lo' END \
             ORDER BY bucket",
        );
        assert_eq!(r, vec![
            vec![Value::from("hi"), Value::Int(3)],
            vec![Value::from("lo"), Value::Int(3)],
        ]);
    }

    #[test]
    fn union_semantics() {
        let db = wildlife_db();
        // UNION ALL keeps duplicates; UNION removes them.
        let all = rows(
            &db,
            "SELECT Site FROM tbl_Observations WHERE Obs_ID = 1 \
             UNION ALL SELECT Site FROM tbl_Observations WHERE Obs_ID = 3",
        );
        assert_eq!(all, vec![vec![Value::from("North")], vec![Value::from("North")]]);
        let distinct = rows(
            &db,
            "SELECT Site FROM tbl_Observations WHERE Obs_ID = 1 \
             UNION SELECT Site FROM tbl_Observations WHERE Obs_ID = 3",
        );
        assert_eq!(distinct, vec![vec![Value::from("North")]]);
        // Arity mismatch is a clean error.
        assert!(matches!(
            run_sql(&db, "SELECT Site, Obs_ID FROM tbl_Observations UNION SELECT Site FROM tbl_Observations"),
            Err(EngineError::TypeError { .. })
        ));
        // Column names come from the first block.
        let rs = run_sql(&db, "SELECT SpeciesCode AS code FROM tbl_Species UNION SELECT SpCode FROM tbl_Observations").unwrap();
        assert_eq!(rs.columns, vec!["code"]);
        assert_eq!(rs.row_count(), 4); // ELK MDR CYT BDG (dedup across blocks)
    }

    #[test]
    fn date_part_and_string_functions() {
        let db = Database::new("x");
        assert_eq!(rows(&db, "SELECT MONTH('2021-05-02')"), vec![vec![Value::Int(5)]]);
        assert_eq!(rows(&db, "SELECT DAY('2021-05-02')"), vec![vec![Value::Int(2)]]);
        assert_eq!(rows(&db, "SELECT COALESCE(NULL, NULL, 7)"), vec![vec![Value::Int(7)]]);
        assert_eq!(rows(&db, "SELECT COALESCE(NULL, NULL)"), vec![vec![Value::Null]]);
        assert_eq!(
            rows(&db, "SELECT SUBSTRING('vegetation', 1, 3)"),
            vec![vec![Value::from("veg")]]
        );
        assert_eq!(
            rows(&db, "SELECT SUBSTRING('abc', 2, 99)"),
            vec![vec![Value::from("bc")]]
        );
    }

    #[test]
    fn full_join_unions_unmatched() {
        let mut db = Database::new("fj");
        db.create_table(TableSchema::new("L").column("k", DataType::Int));
        db.create_table(TableSchema::new("R").column("k", DataType::Int));
        db.insert("L", vec![Value::Int(1)]).unwrap();
        db.insert("L", vec![Value::Int(2)]).unwrap();
        db.insert("R", vec![Value::Int(2)]).unwrap();
        db.insert("R", vec![Value::Int(3)]).unwrap();
        let r = rows(&db, "SELECT COUNT(*) FROM L FULL JOIN R ON L.k = R.k");
        assert_eq!(r, vec![vec![Value::Int(3)]]);
    }
}
