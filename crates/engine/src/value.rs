//! Values and data types.

use crate::error::EngineError;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Column data types (the subset used by the SNAILS schemas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer (`int`, `bigint`).
    Int,
    /// 64-bit float (`float`, `decimal` approximated).
    Float,
    /// Variable-length text (`nvarchar`).
    Varchar,
    /// Calendar date, stored as ISO-8601 text (`date`, `datetime`).
    Date,
}

impl DataType {
    /// T-SQL type name used in prompt schema knowledge.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Varchar => "nvarchar",
            DataType::Date => "date",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A runtime value. `Null` compares before everything (T-SQL sort order) and
/// equals only itself in *sorting*; SQL predicate semantics (NULL-propagating
/// comparisons) are handled by the evaluator, not by `Ord`.
///
/// Text is interned behind `Arc<str>` so that cloning a value at operator
/// boundaries (joins, projection, sorting, result materialization) copies a
/// pointer instead of the character buffer — rows flow through the fully
/// materializing executor by refcount bump.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text (also dates, ISO-8601), shared by refcount.
    Str(Arc<str>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

/// Arithmetic operator for [`Value::checked_arith`] — a value-level mirror of
/// the parser's arithmetic `BinOp` subset, kept here so the checked kernels
/// need no dependency on `snails_sql`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    /// The SQL operator symbol, for error messages.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

impl Value {
    /// True when NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int promoted to f64), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Text view, if textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL,
    /// otherwise the ordering with numeric cross-type comparison and
    /// case-insensitive text comparison (SQL Server default collation).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => {
                Some(a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()))
            }
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (NULL-propagating).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering for sorting and grouping: NULL first, then numerics,
    /// then text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a
                .to_ascii_lowercase()
                .cmp(&b.to_ascii_lowercase())
                .then_with(|| a.cmp(b)),
            _ if rank(self) == rank(other) => {
                // Mixed Int/Float.
                let a = self.as_f64().unwrap_or(0.0);
                let b = other.as_f64().unwrap_or(0.0);
                a.total_cmp(&b)
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Grouping/dedup key: normalized string form with a type tag, so that
    /// `1` and `1.0` group together but `1` and `'1'` do not.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "n:".to_owned(),
            Value::Int(n) => format!("f:{}", *n as f64),
            // -0.0 equals 0.0 under sql_eq; normalize before formatting.
            Value::Float(x) => format!("f:{}", if *x == 0.0 { 0.0 } else { *x }),
            Value::Str(s) => format!("s:{}", s.to_ascii_lowercase()),
        }
    }

    /// Checked arithmetic negation: `-Int` uses `i64::checked_neg` (so
    /// `-(i64::MIN)` is a [`EngineError::TypeError`], not a panic), floats
    /// negate directly, NULL propagates.
    pub fn checked_neg(&self) -> Result<Value, EngineError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(n) => n
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| EngineError::type_error("integer overflow in negation")),
            Value::Float(x) => Ok(Value::Float(-x)),
            Value::Str(_) => Err(EngineError::type_error("negation of text")),
        }
    }

    /// Checked absolute value (`ABS`): `i64::checked_abs` on integers so
    /// `ABS(i64::MIN)` errors instead of panicking.
    pub fn checked_abs(&self) -> Result<Value, EngineError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(n) => n
                .checked_abs()
                .map(Value::Int)
                .ok_or_else(|| EngineError::type_error("integer overflow in ABS")),
            Value::Float(x) => Ok(Value::Float(x.abs())),
            Value::Str(_) => Err(EngineError::type_error("ABS requires a number")),
        }
    }

    /// Checked binary arithmetic. Predicted queries are untrusted input, so
    /// this must never abort the process:
    ///
    /// * `Int ⊕ Int` runs through `i64::checked_*` — overflow and division /
    ///   modulo by zero return [`EngineError::TypeError`], never a panic;
    /// * mixed or float operands use `f64` (overflow saturates to ±inf, but
    ///   division by zero is still a `TypeError`, matching the integer path);
    /// * `Div` always yields a float (T-SQL-ish approximation kept from the
    ///   original evaluator);
    /// * NULL propagation and string concatenation are the caller's job —
    ///   this function only sees non-NULL numeric candidates.
    pub fn checked_arith(&self, op: ArithOp, other: &Value) -> Result<Value, EngineError> {
        let type_err = || EngineError::type_error("arithmetic over text");
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            let checked = match op {
                ArithOp::Add => a.checked_add(*b),
                ArithOp::Sub => a.checked_sub(*b),
                ArithOp::Mul => a.checked_mul(*b),
                ArithOp::Div => {
                    if *b == 0 {
                        return Err(EngineError::type_error("division by zero"));
                    }
                    // Div stays float even for integer operands.
                    return Ok(Value::Float(*a as f64 / *b as f64));
                }
                ArithOp::Mod => {
                    if *b == 0 {
                        return Err(EngineError::type_error("modulo by zero"));
                    }
                    a.checked_rem(*b)
                }
            };
            return checked.map(Value::Int).ok_or_else(|| {
                EngineError::type_error(format!("integer overflow in {}", op.symbol()))
            });
        }
        let (a, b) = (
            self.as_f64().ok_or_else(type_err)?,
            other.as_f64().ok_or_else(type_err)?,
        );
        let out = match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if b == 0.0 {
                    return Err(EngineError::type_error("division by zero"));
                }
                a / b
            }
            ArithOp::Mod => {
                if b == 0.0 {
                    return Err(EngineError::type_error("modulo by zero"));
                }
                a % b
            }
        };
        Ok(Value::Float(out))
    }

    /// Typed hash key with the same equivalence classes as [`Value::group_key`]
    /// (and, for non-NULL values, as [`Value::sql_eq`]): `1` and `1.0` share a
    /// key, text is case-insensitive, and NULL keys only each other — grouping
    /// semantics, not predicate semantics. Avoids the per-value `String`
    /// formatting of `group_key` on the hot grouping/join paths.
    pub fn hash_key(&self) -> HashKey {
        match self {
            Value::Null => HashKey::Null,
            Value::Int(n) => HashKey::num(*n as f64),
            Value::Float(x) => HashKey::num(*x),
            Value::Str(s) => HashKey::Str(s.to_ascii_lowercase()),
        }
    }
}

/// Typed grouping/join key (see [`Value::hash_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HashKey {
    /// SQL NULL — groups with itself.
    Null,
    /// Numeric key: Int and Float unified on the `f64` bit pattern, with
    /// `-0.0` normalized onto `0.0` so the two group together.
    Num(u64),
    /// Text key, lowercased (SQL Server default collation).
    Str(String),
}

impl HashKey {
    fn num(x: f64) -> HashKey {
        // -0.0 == 0.0 in SQL comparison but differs in bits; normalize.
        let x = if x == 0.0 { 0.0 } else { x };
        HashKey::Num(x.to_bits())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal && self.is_null() == other.is_null()
    }
}

impl Eq for Value {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_compare_case_insensitive() {
        assert_eq!(Value::from("ABC").sql_eq(&Value::from("abc")), Some(true));
        assert_eq!(
            Value::from("a").sql_cmp(&Value::from("B")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_vs_number_incomparable() {
        assert_eq!(Value::from("1").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [Value::from("z"), Value::Int(3), Value::Null, Value::Float(1.5)];
        vals.sort_by(Value::total_cmp);
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(3));
        assert_eq!(vals[3], Value::from("z"));
    }

    #[test]
    fn group_keys_distinguish_types() {
        assert_eq!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::from("1").group_key());
        assert_ne!(Value::Null.group_key(), Value::from("").group_key());
        assert_eq!(Value::from("AB").group_key(), Value::from("ab").group_key());
    }

    #[test]
    fn hash_keys_mirror_group_keys() {
        let vals = [
            Value::Null,
            Value::Int(1),
            Value::Float(1.0),
            Value::Float(-0.0),
            Value::Int(0),
            Value::from("AB"),
            Value::from("ab"),
            Value::from(""),
            Value::from("1"),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    a.hash_key() == b.hash_key(),
                    a.group_key() == b.group_key(),
                    "hash_key and group_key disagree on {a:?} vs {b:?}"
                );
            }
        }
        assert_eq!(Value::Float(-0.0).hash_key(), Value::Int(0).hash_key());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::from("x").to_string(), "x");
    }
}
