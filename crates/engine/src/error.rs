//! Engine errors.

use std::fmt;

/// Errors produced while executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query referenced an unknown table or view.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// The query referenced an unknown column.
    UnknownColumn {
        /// The missing column name (possibly qualified).
        name: String,
    },
    /// An unqualified column name matched multiple tables in scope.
    AmbiguousColumn {
        /// The ambiguous column name.
        name: String,
    },
    /// A value had the wrong type for an operation.
    TypeError {
        /// Description of the mismatch.
        message: String,
    },
    /// The SQL used a feature outside the supported subset.
    Unsupported {
        /// Description of the unsupported feature.
        message: String,
    },
    /// The SQL failed to parse.
    Parse {
        /// Parser message.
        message: String,
    },
    /// Row arity mismatch on insert, duplicate table creation, etc.
    Catalog {
        /// Description.
        message: String,
    },
    /// Execution exceeded a configured [`crate::exec::ExecLimits`] budget.
    ///
    /// Raised defensively for untrusted (model-predicted) queries so a
    /// hostile plan — an unconstrained cross join, a runaway subquery —
    /// degrades to a recorded error instead of hanging the worker.
    ResourceExhausted {
        /// Which budget was exceeded (e.g. "join row budget").
        resource: &'static str,
        /// The configured budget value.
        budget: u64,
    },
}

impl EngineError {
    /// Wrap a parser error.
    pub fn from_parse(e: snails_sql::ParseError) -> Self {
        EngineError::Parse { message: e.to_string() }
    }

    /// Convenience constructor.
    pub fn unsupported(message: impl Into<String>) -> Self {
        EngineError::Unsupported { message: message.into() }
    }

    /// Convenience constructor.
    pub fn type_error(message: impl Into<String>) -> Self {
        EngineError::TypeError { message: message.into() }
    }

    /// Convenience constructor.
    pub fn resource_exhausted(resource: &'static str, budget: u64) -> Self {
        EngineError::ResourceExhausted { resource, budget }
    }

    /// True for [`EngineError::ResourceExhausted`] — callers that degrade
    /// gracefully use this to distinguish "query hit a defensive limit"
    /// from "query was wrong".
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, EngineError::ResourceExhausted { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable { name } => write!(f, "unknown table: {name}"),
            EngineError::UnknownColumn { name } => write!(f, "unknown column: {name}"),
            EngineError::AmbiguousColumn { name } => write!(f, "ambiguous column: {name}"),
            EngineError::TypeError { message } => write!(f, "type error: {message}"),
            EngineError::Unsupported { message } => write!(f, "unsupported: {message}"),
            EngineError::Parse { message } => write!(f, "parse: {message}"),
            EngineError::Catalog { message } => write!(f, "catalog: {message}"),
            EngineError::ResourceExhausted { resource, budget } => {
                write!(f, "resource exhausted: {resource} ({budget}) exceeded")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_names() {
        let e = EngineError::UnknownTable { name: "Locs".into() };
        assert!(e.to_string().contains("Locs"));
        let e = EngineError::unsupported("window functions");
        assert!(e.to_string().contains("window"));
    }
}
