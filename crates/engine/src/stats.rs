//! Table statistics and secondary hash indexes — the inputs of the
//! cost-based planner ([`crate::optimize`]).
//!
//! Both artifacts are pure caches derived from a table's columnar mirror
//! ([`crate::catalog::Table::columnar`]): statistics summarize each column
//! (row count, distinct-value count, min/max, null count) and indexes map
//! join-key equivalence classes to ascending row ids. They are built
//! lazily on first use, cached on the [`Table`](crate::catalog::Table)
//! beside the columnar mirror, and invalidated with it by
//! `Database::table_mut`, so neither can ever serve stale data.
//!
//! NDV comes from the existing dictionary encodings where possible: a
//! string column's distinct count is its dictionary's distinct lowered
//! entries (lowered, because that is the engine's text equivalence class
//! for joins and grouping); numeric columns hash their value bits.

use crate::batch::{ColData, ColumnSet};
use crate::value::Value;
use crate::vector::VKey;
use snails_obs::Metric as Obs;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};

/// Largest magnitude below which every `i64` has a unique `f64` image.
/// Join keys unify numerics on `f64` bits ([`VKey::num`]); within this
/// range that unification is injective on integers, so an index keyed by
/// `VKey` can also answer *exact* (`sql_cmp`) equality probes.
const EXACT_I64: i64 = 9_007_199_254_740_992; // 2^53

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values (text compared lowercased, the
    /// engine's equivalence class for joins and grouping).
    pub ndv: u64,
    /// Number of NULL entries.
    pub null_count: u64,
    /// Smallest non-NULL value, when the column admits a total order
    /// (`None` for mixed-type columns and all-NULL columns).
    pub min: Option<Value>,
    /// Largest non-NULL value, under the same caveats as `min`.
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Fraction of rows that are NULL, in `[0, 1]`.
    pub fn null_fraction(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            0.0
        } else {
            self.null_count as f64 / row_count as f64
        }
    }
}

/// Per-table statistics: row count plus one [`ColumnStats`] per column.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows at collection time.
    pub row_count: u64,
    /// One entry per schema column, in declaration order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect statistics from a columnar mirror. Pure and deterministic:
    /// the result is a function of the table's rows alone.
    pub(crate) fn from_columns(cols: &ColumnSet) -> TableStats {
        let columns = cols.cols.iter().map(|c| column_stats(c, cols.len)).collect();
        TableStats { row_count: cols.len as u64, columns }
    }
}

fn column_stats(col: &ColData, len: usize) -> ColumnStats {
    match col {
        ColData::I64 { vals, valid } => {
            let mut seen: HashSet<i64> = HashSet::new();
            let (mut min, mut max): (Option<i64>, Option<i64>) = (None, None);
            let mut nulls = 0u64;
            for (i, &v) in vals.iter().enumerate().take(len) {
                if !valid.get(i) {
                    nulls += 1;
                    continue;
                }
                seen.insert(v);
                min = Some(min.map_or(v, |m| m.min(v)));
                max = Some(max.map_or(v, |m| m.max(v)));
            }
            ColumnStats {
                ndv: seen.len() as u64,
                null_count: nulls,
                min: min.map(Value::Int),
                max: max.map(Value::Int),
            }
        }
        ColData::F64 { vals, valid } => {
            let mut seen: HashSet<u64> = HashSet::new();
            let (mut min, mut max): (Option<f64>, Option<f64>) = (None, None);
            let mut nulls = 0u64;
            for (i, &v) in vals.iter().enumerate().take(len) {
                if !valid.get(i) {
                    nulls += 1;
                    continue;
                }
                seen.insert(if v == 0.0 { 0.0f64.to_bits() } else { v.to_bits() });
                if !v.is_nan() {
                    min = Some(min.map_or(v, |m| m.min(v)));
                    max = Some(max.map_or(v, |m| m.max(v)));
                }
            }
            ColumnStats {
                ndv: seen.len() as u64,
                null_count: nulls,
                min: min.map(Value::Float),
                max: max.map(Value::Float),
            }
        }
        ColData::Str { codes, valid, dict } => {
            // NDV from the dictionary encoding: distinct *lowered* entries,
            // the text equivalence class used by joins and grouping.
            let lowered: HashSet<&str> =
                dict.lower.iter().map(|s| s.as_ref()).collect();
            let mut nulls = 0u64;
            let (mut min, mut max): (Option<u32>, Option<u32>) = (None, None);
            let by_lower = |a: &Option<u32>, code: u32, want_min: bool| -> bool {
                a.is_none_or(|cur| {
                    let (x, y) = (&dict.lower[code as usize], &dict.lower[cur as usize]);
                    if want_min { x < y } else { x > y }
                })
            };
            for (i, &code) in codes.iter().enumerate().take(len) {
                if !valid.get(i) {
                    nulls += 1;
                    continue;
                }
                if by_lower(&min, code, true) {
                    min = Some(code);
                }
                if by_lower(&max, code, false) {
                    max = Some(code);
                }
            }
            let as_value = |c: Option<u32>| {
                c.map(|code| Value::Str(Arc::clone(&dict.strs[code as usize])))
            };
            ColumnStats {
                ndv: lowered.len() as u64,
                null_count: nulls,
                min: as_value(min),
                max: as_value(max),
            }
        }
        ColData::Mixed { vals } => {
            let mut seen: HashSet<crate::value::HashKey> = HashSet::new();
            let mut nulls = 0u64;
            for v in vals.iter().take(len) {
                if v.is_null() {
                    nulls += 1;
                } else {
                    seen.insert(v.hash_key());
                }
            }
            ColumnStats { ndv: seen.len() as u64, null_count: nulls, min: None, max: None }
        }
    }
}

/// A secondary hash index over one column: join-key equivalence class
/// ([`VKey`]) → ascending physical row ids. NULLs (and NaN floats) are
/// excluded — they are unmatchable as join keys and can never satisfy an
/// equality predicate.
#[derive(Debug)]
pub(crate) struct ColumnIndex {
    pub(crate) map: HashMap<VKey, Vec<u32>>,
    /// True when a `VKey` probe is also exact under `sql_cmp` equality —
    /// i.e. the `f64`-bit unification is injective on this column's data
    /// (always for floats and text; for integers only below 2^53). When
    /// false the index still serves joins (whose contract *is* `VKey`
    /// equivalence) but not `WHERE col = const` probes.
    pub(crate) filter_exact: bool,
}

pub(crate) fn build_index(cols: &ColumnSet, col: usize) -> ColumnIndex {
    let mut map: HashMap<VKey, Vec<u32>> = HashMap::new();
    let mut filter_exact = true;
    let len = cols.len;
    let mut push = |k: VKey, i: usize| {
        if !k.unmatchable() {
            map.entry(k).or_default().push(i as u32);
        }
    };
    match &cols.cols[col] {
        ColData::I64 { vals, valid } => {
            for (i, &v) in vals.iter().enumerate().take(len) {
                if valid.get(i) {
                    filter_exact &= v.abs() < EXACT_I64;
                    push(VKey::num(v as f64), i);
                }
            }
        }
        ColData::F64 { vals, valid } => {
            for (i, &v) in vals.iter().enumerate().take(len) {
                if valid.get(i) {
                    push(VKey::num(v), i);
                }
            }
        }
        ColData::Str { codes, valid, dict } => {
            for (i, &code) in codes.iter().enumerate().take(len) {
                if valid.get(i) {
                    push(VKey::Str(Arc::clone(&dict.lower[code as usize])), i);
                }
            }
        }
        ColData::Mixed { vals } => {
            for (i, v) in vals.iter().enumerate().take(len) {
                match v {
                    Value::Null => {}
                    Value::Int(n) => {
                        filter_exact &= n.abs() < EXACT_I64;
                        push(VKey::num(*n as f64), i);
                    }
                    Value::Float(x) => push(VKey::num(*x), i),
                    Value::Str(s) => push(VKey::Str(Arc::from(s.to_ascii_lowercase())), i),
                }
            }
        }
    }
    ColumnIndex { map, filter_exact }
}

/// Lazily built per-column indexes, cached on the owning `Table`.
///
/// Cloning a table clones its *data*, not this cache (a fresh clone
/// rebuilds on first use) — the cache is pure, so this only costs time.
#[derive(Debug, Default)]
pub(crate) struct IndexCache(RwLock<HashMap<usize, Arc<ColumnIndex>>>);

impl Clone for IndexCache {
    fn clone(&self) -> Self {
        IndexCache::default()
    }
}

impl IndexCache {
    /// Drop every cached index (table mutation).
    pub(crate) fn clear(&self) {
        self.0.write().expect("index cache poisoned").clear();
    }

    /// Fetch the index for `col`, building it under the write lock on first
    /// use. Double-checked so a racing build happens exactly once — which
    /// keeps the `engine.opt.index_builds` count a pure function of the
    /// workload at any thread count (it still varies across run
    /// *assemblies*, hence its Assembly metric class).
    pub(crate) fn get_or_build(&self, col: usize, cols: &ColumnSet) -> Arc<ColumnIndex> {
        if let Some(ix) = self.0.read().expect("index cache poisoned").get(&col) {
            return Arc::clone(ix);
        }
        let mut w = self.0.write().expect("index cache poisoned");
        if let Some(ix) = w.get(&col) {
            return Arc::clone(ix);
        }
        let ix = Arc::new(build_index(cols, col));
        snails_obs::add(Obs::EngineOptIndexBuilds, 1);
        w.insert(col, Arc::clone(&ix));
        ix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(rows: Vec<Vec<Value>>) -> ColumnSet {
        ColumnSet::from_rows(rows.first().map_or(0, Vec::len), &rows)
    }

    #[test]
    fn int_column_stats() {
        let cols = set(vec![
            vec![Value::Int(3)],
            vec![Value::Int(1)],
            vec![Value::Null],
            vec![Value::Int(3)],
        ]);
        let s = TableStats::from_columns(&cols);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.columns[0].ndv, 2);
        assert_eq!(s.columns[0].null_count, 1);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert!((s.columns[0].null_fraction(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn string_ndv_is_case_insensitive() {
        let cols = set(vec![
            vec![Value::from("Apple")],
            vec![Value::from("APPLE")],
            vec![Value::from("pear")],
        ]);
        let s = TableStats::from_columns(&cols);
        assert_eq!(s.columns[0].ndv, 2);
        assert_eq!(s.columns[0].min, Some(Value::from("Apple")));
        assert_eq!(s.columns[0].max, Some(Value::from("pear")));
    }

    #[test]
    fn index_maps_keys_to_ascending_rowids() {
        let cols = set(vec![
            vec![Value::Int(7)],
            vec![Value::Int(2)],
            vec![Value::Int(7)],
            vec![Value::Null],
        ]);
        let ix = build_index(&cols, 0);
        assert!(ix.filter_exact);
        assert_eq!(ix.map.get(&VKey::num(7.0)), Some(&vec![0u32, 2]));
        assert_eq!(ix.map.get(&VKey::num(2.0)), Some(&vec![1u32]));
        // NULL rows are never indexed.
        assert_eq!(ix.map.values().map(Vec::len).sum::<usize>(), 3);
    }

    #[test]
    fn huge_ints_disable_exact_filter_probes() {
        let cols = set(vec![vec![Value::Int(EXACT_I64 + 1)]]);
        let ix = build_index(&cols, 0);
        assert!(!ix.filter_exact);
    }

    #[test]
    fn string_index_uses_lowered_keys() {
        let cols = set(vec![vec![Value::from("Apple")], vec![Value::from("APPLE")]]);
        let ix = build_index(&cols, 0);
        assert!(ix.filter_exact);
        assert_eq!(ix.map.get(&VKey::Str(Arc::from("apple"))), Some(&vec![0u32, 1]));
    }
}
