//! Vectorized ↔ row-at-a-time equivalence: for every generated query in
//! the supported T-SQL subset, the vectorized executor must produce a
//! byte-identical outcome to both the row-at-a-time plan runner and the
//! interpreter — the same `ResultSet` on success, the same `EngineError`
//! on failure (including which error surfaces first), and the same
//! `ExecLimits` exhaustion point under finite budgets — at every batch
//! size, and with a deterministic telemetry section at any thread count.

use proptest::prelude::*;
use snails_engine::{
    run_sql_with, DataType, Database, ExecLimits, ExecOptions, PlanCache, TableSchema, Value,
};
use snails_obs::{ClockMode, ObsCtx};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fixture() -> Database {
    let mut db = Database::new("fuzz");
    db.create_table(
        TableSchema::new("t")
            .column("id", DataType::Int)
            .column("name", DataType::Varchar)
            .column("score", DataType::Float)
            .column("tag", DataType::Varchar),
    );
    db.create_table(
        TableSchema::new("u")
            .column("id", DataType::Int)
            .column("t_id", DataType::Int)
            .column("amount", DataType::Int),
    );
    for i in 0..20i64 {
        db.insert(
            "t",
            vec![
                Value::Int(i),
                Value::from(format!("name{i}")),
                Value::Float(i as f64 / 3.0),
                if i % 5 == 0 { Value::Null } else { Value::from(format!("tag{}", i % 3)) },
            ],
        )
        .unwrap();
    }
    for i in 0..30i64 {
        db.insert("u", vec![Value::Int(i), Value::Int(i % 25), Value::Int(i * 7 % 13)])
            .unwrap();
    }
    // Third table so the generated 3-table joins exercise the cost-based
    // planner's reordering and restoration-sort paths.
    db.create_table(
        TableSchema::new("v")
            .column("id", DataType::Int)
            .column("u_id", DataType::Int)
            .column("w", DataType::Varchar),
    );
    for i in 0..15i64 {
        db.insert(
            "v",
            vec![
                Value::Int(i),
                Value::Int(i % 28),
                if i % 4 == 0 { Value::Null } else { Value::from(format!("w{}", i % 6)) },
            ],
        )
        .unwrap();
    }
    db
}

fn arb_column() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("id"), Just("name"), Just("score"), Just("tag"), Just("t_id"),
        Just("amount"), Just("w"), Just("missing_col"),
    ]
}

fn arb_scalar() -> impl Strategy<Value = String> {
    prop_oneof![
        (-30i64..30).prop_map(|n| n.to_string()),
        Just("'name3'".to_owned()),
        Just("NULL".to_owned()),
        Just("3.5".to_owned()),
    ]
}

fn arb_predicate() -> impl Strategy<Value = String> {
    let cmp = prop_oneof![Just("="), Just("<>"), Just("<"), Just(">="), Just(">")];
    prop_oneof![
        (arb_column(), cmp, arb_scalar()).prop_map(|(c, op, v)| format!("{c} {op} {v}")),
        arb_column().prop_map(|c| format!("{c} IS NOT NULL")),
        arb_column().prop_map(|c| format!("{c} IN (1, 2, 'x')")),
        arb_column().prop_map(|c| format!("{c} LIKE 'n%'")),
        arb_column().prop_map(|c| format!("{c} NOT LIKE '%3'")),
        arb_column().prop_map(|c| format!("{c} BETWEEN 1 AND 9")),
        arb_column().prop_map(|c| format!("{c} IN (SELECT t_id FROM u)")),
        // Kernel error paths: text arithmetic / overflow abort the vector
        // attempt and must replay through the scalar runner identically.
        arb_column().prop_map(|c| format!("{c} + name > 2")),
        arb_column().prop_map(|c| format!("{c} * 9223372036854775807 > 0")),
        arb_column().prop_map(|c| format!("CASE WHEN {c} > 3 THEN 1 ELSE 0 END = 1")),
        (arb_column(), arb_column())
            .prop_map(|(a, b)| format!("{a} > 2 AND {b} IS NOT NULL")),
        (arb_column(), arb_column()).prop_map(|(a, b)| format!("{a} < 5 OR {b} = 'tag1'")),
        Just("EXISTS (SELECT id FROM u WHERE u.t_id = t.id)".to_owned()),
        Just("(SELECT COUNT(*) FROM u WHERE u.t_id = t.id) > 1".to_owned()),
    ]
}

fn arb_projection() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("*".to_owned()),
        Just("t.*".to_owned()),
        Just("z.*".to_owned()), // unknown binding: projection error path
        arb_column().prop_map(|c| c.to_owned()),
        arb_column().prop_map(|c| format!("COUNT({c})")),
        arb_column().prop_map(|c| format!("SUM({c})")),
        arb_column().prop_map(|c| format!("AVG({c})")),
        arb_column().prop_map(|c| format!("MIN({c}), MAX({c})")),
        arb_column().prop_map(|c| format!("COUNT(DISTINCT {c})")),
        arb_column().prop_map(|c| format!("SUM({c}) + COUNT(*) AS mix")),
        arb_column().prop_map(|c| format!("UPPER({c}) AS up")),
        arb_column().prop_map(|c| format!("CASE WHEN {c} IS NULL THEN 'n' ELSE 'v' END")),
        Just("COUNT(*)".to_owned()),
        Just("SUM(name)".to_owned()), // aggregate type error path
        Just("id + amount AS total".to_owned()),
        Just("(SELECT MAX(amount) FROM u)".to_owned()),
    ]
}

fn arb_from() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("t".to_owned()),
        Just("u".to_owned()),
        Just("t JOIN u ON t.id = u.t_id".to_owned()),
        Just("t LEFT JOIN u ON t.id = u.t_id".to_owned()),
        Just("t RIGHT JOIN u ON t.id = u.t_id".to_owned()),
        Just("t FULL JOIN u ON t.id = u.t_id".to_owned()),
        Just("t CROSS JOIN u".to_owned()),
        Just("t JOIN u ON t.id = u.t_id AND u.amount > 3".to_owned()),
        Just("t JOIN u ON t.score > u.amount".to_owned()), // non-equi: nested loop
        Just("t JOIN u ON t.tag = u.amount".to_owned()),   // text×num keys: unmatchable
        Just("t JOIN u ON t.id = u.t_id JOIN v ON u.id = v.u_id".to_owned()),
        Just("u JOIN v ON u.id = v.u_id JOIN t ON u.t_id = t.id".to_owned()),
        Just("(SELECT id, name FROM t WHERE id < 9) d".to_owned()),
        Just("nonexistent".to_owned()),
    ]
}

fn arb_query() -> impl Strategy<Value = String> {
    (
        arb_projection(),
        arb_from(),
        proptest::option::of(arb_predicate()),
        proptest::option::of(arb_column()),
        proptest::option::of(prop_oneof![
            Just("COUNT(*) > 1".to_owned()),
            Just("id > 3".to_owned()),
            Just("COUNT(*) > 1 AND id > 3".to_owned()),
            Just("name IS NOT NULL".to_owned()),
        ]),
        proptest::option::of(arb_column()),
        proptest::option::of(0u64..5),
        any::<bool>(),
        proptest::option::of(Just("UNION SELECT t_id FROM u")),
    )
        .prop_map(|(proj, from, pred, group, having, order, top, distinct, union)| {
            let mut q = String::from("SELECT ");
            if distinct {
                q.push_str("DISTINCT ");
            }
            if let Some(n) = top {
                q.push_str(&format!("TOP {n} "));
            }
            q.push_str(&proj);
            q.push_str(" FROM ");
            q.push_str(&from);
            if let Some(p) = pred {
                q.push_str(" WHERE ");
                q.push_str(&p);
            }
            if let Some(g) = group {
                q.push_str(" GROUP BY ");
                q.push_str(g);
                if let Some(h) = having {
                    q.push_str(" HAVING ");
                    q.push_str(&h);
                }
            }
            if let Some(o) = order {
                q.push_str(" ORDER BY ");
                q.push_str(o);
                q.push_str(" DESC");
            }
            if let Some(u) = union {
                q.push(' ');
                q.push_str(u);
            }
            q
        })
}

/// Odd, tiny, and production batch sizes — chunk-boundary edge cases
/// (batch 1, batch not dividing the row count) get equal coverage.
fn arb_batch() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(3), Just(7), Just(256), Just(1024), Just(4096)]
}

/// Full-outcome comparison of the three executors under `limits`:
/// interpreter (the root oracle), the row-at-a-time plan runner, and the
/// vectorized plan runner at `batch` — `Ok` matches field-for-field, `Err`
/// variant-for-variant.
fn assert_equivalent(db: &Database, sql: &str, batch: usize, limits: ExecLimits) {
    let base = ExecOptions { limits, ..Default::default() };
    let interpreted = run_sql_with(db, sql, base);
    let row = PlanCache::new().run(db, sql, ExecOptions { vectorized: false, ..base });
    assert_eq!(row, interpreted, "row plan diverged for {sql:?}");
    let vec_opts = ExecOptions { vectorized: true, batch_size: Some(batch), ..base };
    let cache = PlanCache::new();
    let cold = cache.run(db, sql, vec_opts);
    assert_eq!(cold, interpreted, "vectorized (batch {batch}) diverged for {sql:?}");
    // Warm cache hit: execution must not corrupt the shared plan.
    let warm = cache.run(db, sql, vec_opts);
    assert_eq!(warm, interpreted, "warm vectorized diverged for {sql:?}");
    // Fusion axis: the unfused pipeline (materialize after every filter)
    // must agree byte-for-byte with the fused default, with and without
    // the cost-based planner.
    let unfused = cache.run(db, sql, ExecOptions { fusion: false, ..vec_opts });
    assert_eq!(unfused, interpreted, "unfused vectorized diverged for {sql:?}");
    // Cost-based planner axis: `vec_opts` above already runs with the
    // optimizer on (the default); the same plan with the optimizer off
    // must agree byte-for-byte too, cold and warm. Under finite limits
    // both flips hit the gate and must be exact no-ops.
    let plain = cache.run(db, sql, ExecOptions { optimize: false, ..vec_opts });
    assert_eq!(plain, interpreted, "unoptimized vectorized diverged for {sql:?}");
    let plain_unfused =
        cache.run(db, sql, ExecOptions { fusion: false, optimize: false, ..vec_opts });
    assert_eq!(plain_unfused, interpreted, "unfused unoptimized diverged for {sql:?}");
    let plain_row = cache.run(
        db,
        sql,
        ExecOptions { vectorized: false, optimize: false, ..base },
    );
    assert_eq!(plain_row, interpreted, "unoptimized row plan diverged for {sql:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Unlimited budgets, every batch size: vectorized execution is
    /// byte-identical to the interpreter and the row plan runner.
    #[test]
    fn vector_matches_interpreter(sql in arb_query(), batch in arb_batch()) {
        let db = fixture();
        assert_equivalent(&db, &sql, batch, ExecLimits::UNLIMITED);
    }

    /// Tight budgets: the vectorized path must exhaust the *same* budget
    /// at the same logical row — identical `ResourceExhausted`
    /// resource/budget — or return the identical successful result.
    #[test]
    fn vector_matches_interpreter_under_limits(
        sql in arb_query(),
        batch in arb_batch(),
        steps in prop_oneof![Just(10u64), Just(60), Just(400)],
        join_rows in prop_oneof![Just(8u64), Just(120)],
        depth in 1u32..3,
    ) {
        let db = fixture();
        let limits = ExecLimits {
            max_steps: Some(steps),
            max_join_rows: Some(join_rows),
            max_output_rows: Some(50),
            max_subquery_depth: Some(depth),
        };
        assert_equivalent(&db, &sql, batch, limits);
    }
}

/// Fixed workload exercising every vectorized operator (scan, filter,
/// hash/nested join, group, order, union, scalar-fallback subquery).
const WORKLOAD: &[&str] = &[
    "SELECT id, name FROM t WHERE id > 4 AND tag IS NOT NULL ORDER BY id DESC",
    "SELECT t.name, u.amount FROM t JOIN u ON t.id = u.t_id WHERE u.amount > 2",
    "SELECT tag, COUNT(*), SUM(score) FROM t GROUP BY tag HAVING COUNT(*) > 1",
    "SELECT t.id FROM t LEFT JOIN u ON t.id = u.t_id ORDER BY t.id",
    "SELECT name FROM t WHERE EXISTS (SELECT id FROM u WHERE u.t_id = t.id)",
    "SELECT DISTINCT amount FROM u UNION SELECT id FROM t WHERE id < 3",
    "SELECT AVG(amount), MIN(t_id), MAX(t_id) FROM u",
    // Three-table star with a selective predicate on the last source:
    // drives the cost-based planner (pushdown, index probe, reorder,
    // restoration sort) so the engine.opt.* metrics join the report.
    "SELECT COUNT(*), SUM(u.amount) FROM u JOIN t ON u.t_id = t.id \
     JOIN v ON u.id = v.u_id WHERE t.name = 'name3'",
];

/// Execute the workload, one fresh `PlanCache` per task so cache metrics
/// are interleaving-independent, on `threads` workers claiming task ids
/// from a shared cursor.
fn run_workload(threads: usize, opts: ExecOptions) -> Arc<ObsCtx> {
    let db = fixture();
    let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let _scope = snails_obs::scope(&ctx);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= WORKLOAD.len() {
                        break;
                    }
                    snails_obs::task(i as u64, || {
                        let cache = PlanCache::new();
                        cache.run(&db, WORKLOAD[i], opts).expect("workload query runs");
                    });
                }
            });
        }
    });
    ctx
}

/// The vectorized executor's telemetry — including the new batch counters,
/// selectivity histogram, and dictionary-size histogram — lands in the
/// deterministic section byte-identically at any thread count.
#[test]
fn vector_telemetry_deterministic_across_threads() {
    let opts = ExecOptions::default();
    let baseline = run_workload(1, opts).report().deterministic_json();
    for threads in [2usize, 8] {
        let json = run_workload(threads, opts).report().deterministic_json();
        assert_eq!(json, baseline, "threads = {threads}");
    }
    // The baseline actually recorded vectorized work.
    let report = run_workload(1, opts).report();
    assert!(report.counter("engine.vec.batches") > 0, "no batches recorded");
    assert!(report.counter("engine.op.join.batches") > 0, "no join batches");
    let det = report.deterministic_json();
    for key in ["engine.vec.selectivity_pct", "engine.vec.dict.entries"] {
        assert!(det.contains(key), "{key} missing from deterministic section");
    }
    // The planner's own telemetry is deterministic too (covered by the
    // byte-comparison above) and actually fired on the 3-table query.
    assert!(report.counter("engine.opt.plans") > 0, "optimizer never engaged");
    assert!(det.contains("engine.opt.card_err_pct"), "cardinality-error histogram missing");
}

/// Shared metrics — everything except the vectorized-only instruments —
/// agree exactly between the vectorized and row-at-a-time plan paths: the
/// logical work (rows scanned/filtered/joined/grouped, steps, join rows,
/// statements) is mode-invariant.
#[test]
fn shared_metrics_agree_with_row_path() {
    let strip_vec_only = |ctx: Arc<ObsCtx>| {
        let mut section = ctx.report().metrics.deterministic.clone();
        section.counters.retain(|k, _| !k.starts_with("engine.vec.") && !k.ends_with(".batches"));
        section.histograms.retain(|k, _| !k.starts_with("engine.vec."));
        section.to_json()
    };
    let vec_json = strip_vec_only(run_workload(1, ExecOptions::default()));
    let row_json =
        strip_vec_only(run_workload(1, ExecOptions { vectorized: false, ..Default::default() }));
    assert_eq!(vec_json, row_json, "shared deterministic metrics diverged across modes");
}

/// Compiled plans are execution-mode-agnostic: toggling `vectorized` (or
/// the batch size) over one `PlanCache` serves the *same* cached plan —
/// one miss, then hits — and every execution mode returns identical rows.
#[test]
fn mode_toggle_reuses_cached_plan() {
    let db = fixture();
    let cache = PlanCache::new();
    let sql = "SELECT t.name, SUM(u.amount) FROM t JOIN u ON t.id = u.t_id \
               GROUP BY t.name ORDER BY t.name";
    let modes = [
        ExecOptions::default(),
        ExecOptions { vectorized: false, ..Default::default() },
        ExecOptions { batch_size: Some(2), ..Default::default() },
        ExecOptions { fusion: false, ..Default::default() },
        ExecOptions { vectorized: false, hash_join: false, ..Default::default() },
        ExecOptions { hash_join: false, ..Default::default() },
    ];
    let baseline = run_sql_with(&db, sql, ExecOptions::default()).expect("query runs");
    for (i, opts) in modes.iter().enumerate() {
        let rs = cache.run(&db, sql, *opts).expect("query runs");
        assert_eq!(rs, baseline, "mode {i} diverged");
    }
    assert_eq!(cache.misses(), 1, "first lookup compiles once");
    assert_eq!(cache.hits(), modes.len() as u64 - 1, "every toggle reuses the plan");
    assert_eq!(cache.len(), 1, "one plan serves every mode");
}

// ---------------------------------------------------------------------------
// Dictionary-code kernels: nasty cases checked against the interpreter.
// ---------------------------------------------------------------------------

/// Two tables with string keys drawn from *disjoint* dictionaries (each
/// table's dictionary interns only its own inserts) whose values overlap
/// only case-insensitively — the join must go through the code→code
/// translation table, not raw code equality.
fn dict_fixture() -> Database {
    let mut db = Database::new("dict");
    db.create_table(
        TableSchema::new("a")
            .column("id", DataType::Int)
            .column("color", DataType::Varchar),
    );
    db.create_table(
        TableSchema::new("b")
            .column("id", DataType::Int)
            .column("color", DataType::Varchar),
    );
    // a interns: Red, blue, GREEN, NULL; b interns: RED, Blue, plum, NULL.
    let a_vals = ["Red", "blue", "GREEN", "Red", "blue"];
    for (i, v) in a_vals.iter().enumerate() {
        let c = if i == 3 { Value::Null } else { Value::from(*v) };
        db.insert("a", vec![Value::Int(i as i64), c]).unwrap();
    }
    let b_vals = ["RED", "Blue", "plum", "RED", "Blue", "plum"];
    for (i, v) in b_vals.iter().enumerate() {
        let c = if i == 5 { Value::Null } else { Value::from(*v) };
        db.insert("b", vec![Value::Int(i as i64), c]).unwrap();
    }
    db
}

/// Run `sql` on every (fusion × batch) combination of the vectorized path
/// and demand byte-identical results to the interpreter.
fn assert_dict_equivalent(db: &Database, sql: &str) {
    let oracle = run_sql_with(db, sql, ExecOptions { vectorized: false, ..Default::default() })
        .expect("oracle runs");
    for fusion in [true, false] {
        for batch in [1usize, 2, 3, 1024] {
            let opts = ExecOptions {
                batch_size: Some(batch),
                fusion,
                optimize: false,
                ..Default::default()
            };
            let got = run_sql_with(db, sql, opts).expect("vectorized runs");
            assert_eq!(got, oracle, "fusion={fusion} batch={batch} diverged for {sql:?}");
        }
    }
}

/// Equality/IN against a constant absent from the dictionary: the memo
/// resolves every code to false without touching row data.
#[test]
fn dict_kernel_const_not_in_dictionary() {
    let db = dict_fixture();
    assert_dict_equivalent(&db, "SELECT id FROM a WHERE color = 'chartreuse'");
    assert_dict_equivalent(&db, "SELECT id FROM a WHERE color <> 'chartreuse'");
    assert_dict_equivalent(&db, "SELECT id FROM a WHERE color IN ('x', 'y')");
    assert_dict_equivalent(&db, "SELECT id FROM a WHERE color NOT IN ('x', NULL)");
}

/// T-SQL comparisons are case-insensitive; the code kernel must compare
/// lowered forms, and two codes sharing a lowercase form group together.
#[test]
fn dict_kernel_case_insensitive_equality() {
    let db = dict_fixture();
    assert_dict_equivalent(&db, "SELECT id FROM a WHERE color = 'RED'");
    assert_dict_equivalent(&db, "SELECT id FROM b WHERE color = 'red'");
    assert_dict_equivalent(&db, "SELECT id FROM a WHERE color IN ('BLUE', 'green')");
    assert_dict_equivalent(&db, "SELECT color, COUNT(*) FROM a GROUP BY color");
    assert_dict_equivalent(&db, "SELECT color, COUNT(*) FROM b GROUP BY color ORDER BY color");
}

/// NULL validity must survive a selection vector: the second conjunct of a
/// fused filter chain sees only surviving rows, at offsets that no longer
/// align with physical positions.
#[test]
fn dict_kernel_null_validity_under_selection() {
    let db = dict_fixture();
    assert_dict_equivalent(&db, "SELECT id FROM a WHERE id > 0 AND color = 'red'");
    assert_dict_equivalent(&db, "SELECT id FROM b WHERE id >= 2 AND color IS NULL");
    assert_dict_equivalent(&db, "SELECT id FROM b WHERE id < 5 AND color NOT IN ('plum')");
    assert_dict_equivalent(
        &db,
        "SELECT COUNT(*) FROM a WHERE id <> 1 AND color <> 'blue'",
    );
}

/// Joins across disjoint dictionaries: equal strings carry unrelated codes
/// on the two sides (and match only case-insensitively), so the kernel's
/// translation table does the work. Every join kind crosses it.
#[test]
fn dict_kernel_cross_column_translation() {
    let db = dict_fixture();
    assert_dict_equivalent(
        &db,
        "SELECT a.id, b.id FROM a JOIN b ON a.color = b.color ORDER BY a.id",
    );
    assert_dict_equivalent(
        &db,
        "SELECT a.id, b.id FROM a LEFT JOIN b ON a.color = b.color ORDER BY a.id",
    );
    assert_dict_equivalent(
        &db,
        "SELECT a.id, b.id FROM a RIGHT JOIN b ON a.color = b.color ORDER BY b.id",
    );
    assert_dict_equivalent(
        &db,
        "SELECT a.id, b.id FROM a FULL JOIN b ON a.color = b.color ORDER BY a.id",
    );
    assert_dict_equivalent(
        &db,
        "SELECT a.color, COUNT(*) FROM a JOIN b ON a.color = b.color GROUP BY a.color",
    );
    // String key against a numeric key: types never match; the kernel
    // degrades every code to the dead key and emits nothing (inner) or
    // pads (outer).
    assert_dict_equivalent(&db, "SELECT a.id FROM a JOIN b ON a.color = b.id");
    assert_dict_equivalent(&db, "SELECT a.id, b.id FROM a LEFT JOIN b ON a.color = b.id");
}
