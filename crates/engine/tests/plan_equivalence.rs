//! Compiled-plan ↔ interpreter equivalence: for every generated query in
//! the supported T-SQL subset, executing through `compile` + `CompiledPlan`
//! (and through a warm `PlanCache`) must produce a byte-identical outcome —
//! the same `ResultSet` on success and the same `EngineError` on failure,
//! including `ExecLimits` `ResourceExhausted` behaviour under tight budgets.

use proptest::prelude::*;
use snails_engine::{
    run_sql_with, DataType, Database, ExecLimits, ExecOptions, PlanCache, TableSchema, Value,
};

fn fixture() -> Database {
    let mut db = Database::new("fuzz");
    db.create_table(
        TableSchema::new("t")
            .column("id", DataType::Int)
            .column("name", DataType::Varchar)
            .column("score", DataType::Float)
            .column("tag", DataType::Varchar),
    );
    db.create_table(
        TableSchema::new("u")
            .column("id", DataType::Int)
            .column("t_id", DataType::Int)
            .column("amount", DataType::Int),
    );
    for i in 0..20i64 {
        db.insert(
            "t",
            vec![
                Value::Int(i),
                Value::from(format!("name{i}")),
                Value::Float(i as f64 / 3.0),
                if i % 5 == 0 { Value::Null } else { Value::from(format!("tag{}", i % 3)) },
            ],
        )
        .unwrap();
    }
    for i in 0..30i64 {
        db.insert("u", vec![Value::Int(i), Value::Int(i % 25), Value::Int(i * 7 % 13)])
            .unwrap();
    }
    // Third table so the generated 3-table joins exercise the cost-based
    // planner's reordering and restoration-sort paths.
    db.create_table(
        TableSchema::new("v")
            .column("id", DataType::Int)
            .column("u_id", DataType::Int)
            .column("w", DataType::Varchar),
    );
    for i in 0..15i64 {
        db.insert(
            "v",
            vec![
                Value::Int(i),
                Value::Int(i % 28),
                if i % 4 == 0 { Value::Null } else { Value::from(format!("w{}", i % 6)) },
            ],
        )
        .unwrap();
    }
    db
}

fn arb_column() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("id"), Just("name"), Just("score"), Just("tag"), Just("t_id"),
        Just("amount"), Just("w"), Just("missing_col"),
    ]
}

fn arb_scalar() -> impl Strategy<Value = String> {
    prop_oneof![
        (-30i64..30).prop_map(|n| n.to_string()),
        Just("'name3'".to_owned()),
        Just("NULL".to_owned()),
        Just("3.5".to_owned()),
    ]
}

fn arb_predicate() -> impl Strategy<Value = String> {
    let cmp = prop_oneof![Just("="), Just("<>"), Just("<"), Just(">="), Just(">")];
    prop_oneof![
        (arb_column(), cmp, arb_scalar()).prop_map(|(c, op, v)| format!("{c} {op} {v}")),
        arb_column().prop_map(|c| format!("{c} IS NOT NULL")),
        arb_column().prop_map(|c| format!("{c} IN (1, 2, 'x')")),
        arb_column().prop_map(|c| format!("{c} LIKE 'n%'")),
        arb_column().prop_map(|c| format!("{c} NOT LIKE '%3'")),
        arb_column().prop_map(|c| format!("{c} BETWEEN 1 AND 9")),
        arb_column().prop_map(|c| format!("{c} IN (SELECT t_id FROM u)")),
        (arb_column(), arb_column())
            .prop_map(|(a, b)| format!("{a} > 2 AND {b} IS NOT NULL")),
        (arb_column(), arb_column()).prop_map(|(a, b)| format!("{a} < 5 OR {b} = 'tag1'")),
        Just("EXISTS (SELECT id FROM u WHERE u.t_id = t.id)".to_owned()),
        Just("(SELECT COUNT(*) FROM u WHERE u.t_id = t.id) > 1".to_owned()),
    ]
}

fn arb_projection() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("*".to_owned()),
        Just("t.*".to_owned()),
        Just("z.*".to_owned()), // unknown binding: projection error path
        arb_column().prop_map(|c| c.to_owned()),
        arb_column().prop_map(|c| format!("COUNT({c})")),
        arb_column().prop_map(|c| format!("SUM({c})")),
        arb_column().prop_map(|c| format!("MIN({c}), MAX({c})")),
        arb_column().prop_map(|c| format!("COUNT(DISTINCT {c})")),
        arb_column().prop_map(|c| format!("UPPER({c}) AS up")),
        arb_column().prop_map(|c| format!("CASE WHEN {c} IS NULL THEN 'n' ELSE 'v' END")),
        Just("COUNT(*)".to_owned()),
        Just("id + amount AS total".to_owned()),
        Just("(SELECT MAX(amount) FROM u)".to_owned()),
    ]
}

fn arb_from() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("t".to_owned()),
        Just("u".to_owned()),
        Just("t JOIN u ON t.id = u.t_id".to_owned()),
        Just("t LEFT JOIN u ON t.id = u.t_id".to_owned()),
        Just("t RIGHT JOIN u ON t.id = u.t_id".to_owned()),
        Just("t FULL JOIN u ON t.id = u.t_id".to_owned()),
        Just("t CROSS JOIN u".to_owned()),
        Just("t JOIN u ON t.id = u.t_id AND u.amount > 3".to_owned()),
        Just("t JOIN u ON t.score > u.amount".to_owned()), // non-equi: nested loop
        Just("t JOIN u ON t.id = u.t_id JOIN v ON u.id = v.u_id".to_owned()),
        Just("u JOIN v ON u.id = v.u_id JOIN t ON u.t_id = t.id".to_owned()),
        Just("(SELECT id, name FROM t WHERE id < 9) d".to_owned()),
        Just("nonexistent".to_owned()),
    ]
}

fn arb_query() -> impl Strategy<Value = String> {
    (
        arb_projection(),
        arb_from(),
        proptest::option::of(arb_predicate()),
        proptest::option::of(arb_column()),
        proptest::option::of(prop_oneof![
            Just("COUNT(*) > 1".to_owned()),
            Just("id > 3".to_owned()),
            Just("COUNT(*) > 1 AND id > 3".to_owned()),
            Just("name IS NOT NULL".to_owned()),
        ]),
        proptest::option::of(arb_column()),
        proptest::option::of(0u64..5),
        any::<bool>(),
        proptest::option::of(Just("UNION SELECT t_id FROM u")),
    )
        .prop_map(|(proj, from, pred, group, having, order, top, distinct, union)| {
            let mut q = String::from("SELECT ");
            if distinct {
                q.push_str("DISTINCT ");
            }
            if let Some(n) = top {
                q.push_str(&format!("TOP {n} "));
            }
            q.push_str(&proj);
            q.push_str(" FROM ");
            q.push_str(&from);
            if let Some(p) = pred {
                q.push_str(" WHERE ");
                q.push_str(&p);
            }
            if let Some(g) = group {
                q.push_str(" GROUP BY ");
                q.push_str(g);
                if let Some(h) = having {
                    q.push_str(" HAVING ");
                    q.push_str(&h);
                }
            }
            if let Some(o) = order {
                q.push_str(" ORDER BY ");
                q.push_str(o);
                q.push_str(" DESC");
            }
            if let Some(u) = union {
                q.push(' ');
                q.push_str(u);
            }
            q
        })
}

/// Full-outcome comparison: `Ok(ResultSet)` must match field-for-field and
/// `Err(EngineError)` must match variant-for-variant (both are `PartialEq`).
fn assert_equivalent(db: &Database, sql: &str, opts: ExecOptions) {
    let interpreted = run_sql_with(db, sql, opts);
    let cache = PlanCache::new();
    let planned = cache.run(db, sql, opts);
    assert_eq!(planned, interpreted, "cold plan diverged for {sql:?}");
    // Second run through the same cache: the warm path (cache hit) must
    // still agree — plans must not be corrupted by execution.
    let warm = cache.run(db, sql, opts);
    assert_eq!(warm, interpreted, "warm plan diverged for {sql:?}");
    // Cost-based planner axis: flipping `optimize` must never change the
    // outcome — results and errors alike. Under unlimited limits this
    // pits the optimized pipeline against the plain one; under finite
    // limits it verifies the gate (optimize=true must behave exactly as
    // optimize=false, because the optimizer declines to engage).
    let flipped = ExecOptions { optimize: !opts.optimize, ..opts };
    let opt = cache.run(db, sql, flipped);
    assert_eq!(
        opt, interpreted,
        "optimize={} plan diverged for {sql:?}",
        flipped.optimize
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Unlimited budgets: compiled execution is byte-identical to the
    /// interpreter on every generated query.
    #[test]
    fn plan_matches_interpreter(sql in arb_query()) {
        let db = fixture();
        assert_equivalent(&db, &sql, ExecOptions::default());
    }

    /// Nested-loop-only configuration agrees too (exercises the compiled
    /// nested join against the interpreter's).
    #[test]
    fn plan_matches_interpreter_without_hash_join(sql in arb_query()) {
        let db = fixture();
        let opts = ExecOptions { hash_join: false, ..Default::default() };
        assert_equivalent(&db, &sql, opts);
    }

    /// Tight budgets: the compiled path must exhaust the *same* budget at
    /// the same point — identical `ResourceExhausted` resource/budget — or
    /// return the identical successful result.
    #[test]
    fn plan_matches_interpreter_under_limits(
        sql in arb_query(),
        steps in prop_oneof![Just(10u64), Just(60), Just(400)],
        join_rows in prop_oneof![Just(8u64), Just(120)],
        depth in 1u32..3,
    ) {
        let db = fixture();
        let opts = ExecOptions {
            limits: ExecLimits {
                max_steps: Some(steps),
                max_join_rows: Some(join_rows),
                max_output_rows: Some(50),
                max_subquery_depth: Some(depth),
            },
            ..Default::default()
        };
        assert_equivalent(&db, &sql, opts);
    }
}

/// Cache churn across two databases that share every table and column
/// name: a bounded `PlanCache` interleaving warm and cold lookups must
/// never serve one database's plan to the other, and its hit/miss/eviction
/// counters must reconcile exactly with the lookup sequence.
#[test]
fn bounded_cache_churn_interleaves_databases_without_cross_serving() {
    let mk = |name: &'static str, base: i64| {
        let mut db = Database::new(name);
        db.create_table(TableSchema::new("t").column("k", DataType::Int));
        for i in 0..4 {
            db.insert("t", vec![Value::Int(base + i)]).unwrap();
        }
        db
    };
    let alpha = mk("alpha", 0);
    let beta = mk("beta", 100);
    let queries = [
        "SELECT k FROM t ORDER BY k",
        "SELECT COUNT(*) FROM t",
        "SELECT k FROM t WHERE k >= 2 ORDER BY k",
        "SELECT MAX(k) FROM t",
    ];
    // 8 distinct (database, query) keys against capacity 3: FIFO eviction
    // guarantees every round re-misses each key, and the immediate repeat
    // right after each miss is a guaranteed hit (the freshly inserted plan
    // is the newest entry, never the eviction victim).
    let opts = ExecOptions::default();
    let cache = PlanCache::with_capacity(3);
    const ROUNDS: u64 = 4;
    for _ in 0..ROUNDS {
        for sql in &queries {
            for db in [&alpha, &beta] {
                let cold = cache.run(db, sql, opts).expect("query runs");
                let warm = cache.run(db, sql, opts).expect("query runs");
                let interpreted = run_sql_with(db, sql, opts).expect("query runs");
                // Byte-identical to this database's interpreter result —
                // a cross-served plan would surface the other database's
                // rows (bases 0 vs 100 never overlap).
                assert_eq!(cold, interpreted, "{}: {sql}", db.name);
                assert_eq!(warm, interpreted, "{}: {sql}", db.name);
            }
        }
    }
    let pairs = ROUNDS * queries.len() as u64 * 2;
    assert_eq!(cache.misses(), pairs, "every pair opens with a cold lookup");
    assert_eq!(cache.hits(), pairs, "every pair closes with a warm hit");
    assert_eq!(cache.len(), 3, "the cache never exceeds its capacity");
    // Every miss inserted a plan; all but the resident plans were evicted.
    assert_eq!(cache.evictions(), cache.misses() - cache.len() as u64);
}
