//! Hash join ⇔ nested loop equivalence.
//!
//! The hash join claims to be *order-identical* to the nested loop — a
//! stronger property than row-multiset equality — because downstream
//! benchmark records must be bit-identical regardless of execution options.
//! The property test drives both executors over random table contents,
//! join kinds, and `ON` predicates (pure equi, composite, computed keys,
//! constant conjuncts, non-equi and mixed predicates that must fall back),
//! with NULL keys mixed in everywhere.

use proptest::prelude::*;
use snails_engine::{run_sql_with, DataType, Database, ExecOptions, TableSchema, Value};

/// (key, group, id) rows; `key` is nullable to exercise NULL-key semantics.
type Rows = Vec<(Option<i64>, i64)>;

fn build_db(left: &Rows, right: &Rows) -> Database {
    let mut db = Database::new("prop");
    for name in ["l", "r"] {
        db.create_table(
            TableSchema::new(name)
                .column("k", DataType::Int)
                .column("g", DataType::Int)
                .column("id", DataType::Int),
        );
    }
    for (name, rows) in [("l", left), ("r", right)] {
        for (id, (k, g)) in rows.iter().enumerate() {
            let key = k.map_or(Value::Null, Value::Int);
            db.insert(name, vec![key, Value::Int(*g), Value::Int(id as i64)])
                .expect("insert");
        }
    }
    db
}

/// `ON` predicates covering every path: the hash-eligible shapes (single,
/// composite, computed, and constant-conjunct equi keys) and the shapes
/// that must fall back to the nested loop (non-equi, mixed, disjunction).
const PREDICATES: &[&str] = &[
    "l.k = r.k",
    "l.k = r.k AND l.g = r.g",
    "l.k = r.k AND l.g + 1 = r.g",
    "l.g = r.g AND r.k = 2",
    "l.k < r.k",
    "l.k = r.k AND l.g < r.g",
    "l.k = r.k OR l.g = r.g",
];

const KINDS: &[&str] = &["JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"];

fn rows_strategy() -> impl Strategy<Value = Rows> {
    // Small key domains force collisions (multi-row hash buckets) and
    // misses; ~1 in 5 keys is NULL.
    proptest::collection::vec((proptest::option::of(0i64..4), 0i64..3), 0..14)
}

fn both_ways(db: &Database, sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let hash = run_sql_with(db, sql, ExecOptions { hash_join: true, ..Default::default() })
        .unwrap_or_else(|e| panic!("hash exec failed: {e:?} for {sql}"));
    let nested = run_sql_with(db, sql, ExecOptions { hash_join: false, ..Default::default() })
        .unwrap_or_else(|e| panic!("nested exec failed: {e:?} for {sql}"));
    (hash.rows, nested.rows)
}

proptest! {
    #[test]
    fn hash_join_is_order_identical_to_nested_loop(
        left in rows_strategy(),
        right in rows_strategy(),
        pi in 0usize..PREDICATES.len(),
        ki in 0usize..KINDS.len(),
    ) {
        let db = build_db(&left, &right);
        let sql = format!(
            "SELECT l.id, r.id, l.k, r.k FROM l {} r ON {}",
            KINDS[ki], PREDICATES[pi]
        );
        let (hash, nested) = both_ways(&db, &sql);
        prop_assert_eq!(hash, nested, "{}", sql);
    }

    #[test]
    fn aggregation_over_joins_is_unaffected(
        left in rows_strategy(),
        right in rows_strategy(),
        ki in 0usize..KINDS.len(),
    ) {
        // Typed group keys + hash join feeding GROUP BY / DISTINCT.
        let db = build_db(&left, &right);
        for sql in [
            format!(
                "SELECT l.g, COUNT(*) FROM l {} r ON l.k = r.k GROUP BY l.g ORDER BY l.g",
                KINDS[ki]
            ),
            format!("SELECT DISTINCT l.g, r.g FROM l {} r ON l.k = r.k", KINDS[ki]),
        ] {
            let (hash, nested) = both_ways(&db, &sql);
            prop_assert_eq!(hash, nested, "{}", sql);
        }
    }
}

#[test]
fn null_keys_never_match_each_other() {
    let left = vec![(None, 0), (Some(1), 0)];
    let right = vec![(None, 0), (Some(1), 0), (None, 1)];
    let db = build_db(&left, &right);
    for opts in [
        ExecOptions { hash_join: true, ..Default::default() },
        ExecOptions { hash_join: false, ..Default::default() },
    ] {
        let rs = run_sql_with(&db, "SELECT l.id, r.id FROM l JOIN r ON l.k = r.k", opts)
            .unwrap();
        // Only the 1=1 pairing survives; the NULL keys pair with nothing.
        assert_eq!(rs.rows, vec![vec![Value::Int(1), Value::Int(1)]], "{opts:?}");
    }
}

#[test]
fn null_keyed_rows_still_pad_in_outer_joins() {
    let left = vec![(None, 0)];
    let right = vec![(Some(2), 0)];
    let db = build_db(&left, &right);
    let sql = "SELECT l.id, r.id FROM l FULL JOIN r ON l.k = r.k";
    let (hash, nested) = both_ways(&db, sql);
    assert_eq!(hash, nested);
    // The NULL-keyed left row and the unmatched right row both appear.
    assert_eq!(
        hash,
        vec![
            vec![Value::Int(0), Value::Null],
            vec![Value::Null, Value::Int(0)],
        ]
    );
}

#[test]
fn composite_keys_require_every_component_to_match() {
    let left = vec![(Some(1), 1), (Some(1), 2)];
    let right = vec![(Some(1), 1), (Some(1), 3)];
    let db = build_db(&left, &right);
    let sql = "SELECT l.id, r.id FROM l JOIN r ON l.k = r.k AND l.g = r.g";
    let (hash, nested) = both_ways(&db, sql);
    assert_eq!(hash, nested);
    assert_eq!(hash, vec![vec![Value::Int(0), Value::Int(0)]]);
}

#[test]
fn disabling_hash_join_still_answers_three_way_joins() {
    // Sanity: a query with two join steps gives one answer under both
    // options even when only some steps are hash-eligible.
    let left = vec![(Some(1), 0), (Some(2), 1)];
    let right = vec![(Some(1), 0), (Some(2), 0)];
    let mut db = build_db(&left, &right);
    db.create_table(TableSchema::new("s").column("k", DataType::Int));
    db.insert("s", vec![Value::Int(1)]).unwrap();
    let sql =
        "SELECT l.id, r.id FROM l JOIN r ON l.k = r.k JOIN s ON s.k = l.k AND s.k < r.k + 1";
    let (hash, nested) = both_ways(&db, sql);
    assert_eq!(hash, nested);
    assert_eq!(hash, vec![vec![Value::Int(0), Value::Int(0)]]);
}
