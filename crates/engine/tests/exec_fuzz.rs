//! Execution fuzzing: randomly composed queries over a fixed schema must
//! never panic the engine — they either produce a result set or a clean
//! `EngineError`. Predicted queries from the simulated models are arbitrary
//! SQL, so totality here is what keeps the benchmark pipeline alive.

use proptest::prelude::*;
use snails_engine::{run_sql, Database, DataType, TableSchema, Value};

fn fixture() -> Database {
    let mut db = Database::new("fuzz");
    db.create_table(
        TableSchema::new("t")
            .column("id", DataType::Int)
            .column("name", DataType::Varchar)
            .column("score", DataType::Float)
            .column("tag", DataType::Varchar),
    );
    db.create_table(
        TableSchema::new("u")
            .column("id", DataType::Int)
            .column("t_id", DataType::Int)
            .column("amount", DataType::Int),
    );
    for i in 0..20i64 {
        db.insert(
            "t",
            vec![
                Value::Int(i),
                Value::from(format!("name{i}")),
                Value::Float(i as f64 / 3.0),
                if i % 5 == 0 { Value::Null } else { Value::from(format!("tag{}", i % 3)) },
            ],
        )
        .unwrap();
    }
    for i in 0..30i64 {
        db.insert("u", vec![Value::Int(i), Value::Int(i % 25), Value::Int(i * 7 % 13)])
            .unwrap();
    }
    db
}

fn arb_column() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("id"), Just("name"), Just("score"), Just("tag"), Just("t_id"),
        Just("amount"), Just("missing_col"),
    ]
}

fn arb_scalar() -> impl Strategy<Value = String> {
    prop_oneof![
        (-30i64..30).prop_map(|n| n.to_string()),
        Just("'name3'".to_owned()),
        Just("NULL".to_owned()),
        Just("3.5".to_owned()),
    ]
}

fn arb_predicate() -> impl Strategy<Value = String> {
    let cmp = prop_oneof![Just("="), Just("<>"), Just("<"), Just(">="), Just(">")];
    prop_oneof![
        (arb_column(), cmp, arb_scalar()).prop_map(|(c, op, v)| format!("{c} {op} {v}")),
        arb_column().prop_map(|c| format!("{c} IS NOT NULL")),
        arb_column().prop_map(|c| format!("{c} IN (1, 2, 'x')")),
        arb_column().prop_map(|c| format!("{c} LIKE 'n%'")),
        arb_column().prop_map(|c| format!("{c} BETWEEN 1 AND 9")),
        arb_column().prop_map(|c| format!("{c} IN (SELECT t_id FROM u)")),
        Just("EXISTS (SELECT id FROM u WHERE u.t_id = t.id)".to_owned()),
    ]
}

fn arb_query() -> impl Strategy<Value = String> {
    (
        prop_oneof![
            Just("*".to_owned()),
            arb_column().prop_map(|c| c.to_owned()),
            arb_column().prop_map(|c| format!("COUNT({c})")),
            arb_column().prop_map(|c| format!("SUM({c})")),
            Just("COUNT(*)".to_owned()),
        ],
        prop_oneof![
            Just("t".to_owned()),
            Just("u".to_owned()),
            Just("t JOIN u ON t.id = u.t_id".to_owned()),
            Just("t LEFT JOIN u ON t.id = u.t_id".to_owned()),
            Just("nonexistent".to_owned()),
        ],
        proptest::option::of(arb_predicate()),
        proptest::option::of(arb_column()),
        proptest::option::of(arb_column()),
        proptest::option::of(0u64..5),
    )
        .prop_map(|(proj, from, pred, group, order, top)| {
            let mut q = String::from("SELECT ");
            if let Some(n) = top {
                q.push_str(&format!("TOP {n} "));
            }
            q.push_str(&proj);
            q.push_str(" FROM ");
            q.push_str(&from);
            if let Some(p) = pred {
                q.push_str(" WHERE ");
                q.push_str(&p);
            }
            if let Some(g) = group {
                q.push_str(" GROUP BY ");
                q.push_str(g);
            }
            if let Some(o) = order {
                q.push_str(" ORDER BY ");
                q.push_str(o);
                q.push_str(" DESC");
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Arbitrary structurally-valid SQL never panics the engine.
    #[test]
    fn execution_is_total(sql in arb_query()) {
        let db = fixture();
        let _ = run_sql(&db, &sql); // Ok or Err, never a panic.
    }

    /// Successful executions are deterministic.
    #[test]
    fn execution_is_deterministic(sql in arb_query()) {
        let db = fixture();
        let a = run_sql(&db, &sql);
        let b = run_sql(&db, &sql);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "non-deterministic outcome: {other:?}"),
        }
    }

    /// TOP n never yields more than n rows.
    #[test]
    fn top_bounds_cardinality(n in 0u64..10, pred in proptest::option::of(arb_predicate())) {
        let db = fixture();
        let mut sql = format!("SELECT TOP {n} id FROM t");
        if let Some(p) = pred {
            sql.push_str(&format!(" WHERE {p}"));
        }
        if let Ok(rs) = run_sql(&db, &sql) {
            prop_assert!(rs.row_count() <= n as usize);
        }
    }

    /// WHERE only ever removes rows (monotonicity of filtering).
    #[test]
    fn where_is_restrictive(pred in arb_predicate()) {
        let db = fixture();
        let all = run_sql(&db, "SELECT id FROM t").unwrap().row_count();
        if let Ok(rs) = run_sql(&db, &format!("SELECT id FROM t WHERE {pred}")) {
            prop_assert!(rs.row_count() <= all);
        }
    }
}
