//! Three-valued-logic regression suite: NULL handling through WHERE,
//! HAVING (with AND/OR connectives), and aggregates over all-NULL groups —
//! asserted against explicit expected rows, on both the interpreter and
//! the compiled-plan path (which must stay byte-identical to each other).

use snails_engine::{
    run_sql_with, DataType, Database, ExecOptions, PlanCache, TableSchema, Value,
};

/// `orders`: customer groups with controlled NULL patterns.
///
/// | id | cust  | amount | note    |
/// |----|-------|--------|---------|
/// | 1  | "a"   | 10     | "x"     |
/// | 2  | "a"   | NULL   | NULL    |
/// | 3  | "b"   | NULL   | NULL    |
/// | 4  | "b"   | NULL   | NULL    |
/// | 5  | "c"   | 5      | "y"     |
/// | 6  | "c"   | 40     | NULL    |
/// | 7  | NULL  | 7      | "z"     |
fn fixture() -> Database {
    let mut db = Database::new("nulls");
    db.create_table(
        TableSchema::new("orders")
            .column("id", DataType::Int)
            .column("cust", DataType::Varchar)
            .column("amount", DataType::Int)
            .column("note", DataType::Varchar),
    );
    let rows: [(i64, Option<&str>, Option<i64>, Option<&str>); 7] = [
        (1, Some("a"), Some(10), Some("x")),
        (2, Some("a"), None, None),
        (3, Some("b"), None, None),
        (4, Some("b"), None, None),
        (5, Some("c"), Some(5), Some("y")),
        (6, Some("c"), Some(40), None),
        (7, None, Some(7), Some("z")),
    ];
    for (id, cust, amount, note) in rows {
        let opt_str = |v: Option<&str>| v.map_or(Value::Null, Value::from);
        let opt_int = |v: Option<i64>| v.map_or(Value::Null, Value::Int);
        db.insert(
            "orders",
            vec![Value::Int(id), opt_str(cust), opt_int(amount), opt_str(note)],
        )
        .unwrap();
    }
    db
}

/// Render a result set to one canonical line per row, so every case's
/// expectation is a plain string table.
fn render(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Null => "∅".to_string(),
                    other => format!("{other}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect()
}

struct Case {
    name: &'static str,
    sql: &'static str,
    expected: &'static [&'static str],
}

const CASES: &[Case] = &[
    // -- WHERE: comparisons against NULL are UNKNOWN, never true ----------
    Case {
        name: "where_eq_null_matches_nothing",
        sql: "SELECT id FROM orders WHERE amount = NULL ORDER BY id",
        expected: &[],
    },
    Case {
        name: "where_neq_null_matches_nothing",
        sql: "SELECT id FROM orders WHERE amount <> NULL ORDER BY id",
        expected: &[],
    },
    Case {
        name: "where_comparison_skips_null_operands",
        sql: "SELECT id FROM orders WHERE amount > 6 ORDER BY id",
        expected: &["1", "6", "7"],
    },
    Case {
        name: "where_is_null",
        sql: "SELECT id FROM orders WHERE amount IS NULL ORDER BY id",
        expected: &["2", "3", "4"],
    },
    Case {
        name: "where_is_not_null",
        sql: "SELECT id FROM orders WHERE amount IS NOT NULL ORDER BY id",
        expected: &["1", "5", "6", "7"],
    },
    // UNKNOWN OR TRUE = TRUE: a NULL operand must not poison the row.
    Case {
        name: "where_unknown_or_true_keeps_row",
        sql: "SELECT id FROM orders WHERE amount > 100 OR id = 2 ORDER BY id",
        expected: &["2"],
    },
    // UNKNOWN AND FALSE = FALSE, UNKNOWN AND TRUE = UNKNOWN (row dropped).
    Case {
        name: "where_unknown_and_true_drops_row",
        sql: "SELECT id FROM orders WHERE amount > 0 AND id = 2 ORDER BY id",
        expected: &[],
    },
    Case {
        name: "where_not_of_unknown_stays_unknown",
        sql: "SELECT id FROM orders WHERE NOT (amount > 0) ORDER BY id",
        expected: &[],
    },
    // -- Aggregates over groups containing (or made of) NULLs -------------
    // COUNT(col) skips NULLs; COUNT(*) does not; SUM/MIN/MAX/AVG of an
    // all-NULL group are NULL; group "b" is entirely NULL amounts.
    Case {
        name: "aggregates_over_all_null_group",
        sql: "SELECT cust, COUNT(*), COUNT(amount), SUM(amount), MIN(amount), \
              MAX(amount) FROM orders WHERE cust IS NOT NULL GROUP BY cust \
              ORDER BY cust",
        expected: &["a|2|1|10|10|10", "b|2|0|∅|∅|∅", "c|2|2|45|5|40"],
    },
    Case {
        name: "avg_of_all_null_group_is_null",
        sql: "SELECT cust, AVG(amount) FROM orders WHERE cust IS NOT NULL \
              GROUP BY cust ORDER BY cust",
        expected: &["a|10", "b|∅", "c|22.5"],
    },
    // NULL group keys form their own group.
    Case {
        name: "null_group_key_groups_together",
        sql: "SELECT cust, COUNT(*) FROM orders GROUP BY cust ORDER BY cust",
        expected: &["∅|1", "a|2", "b|2", "c|2"],
    },
    // -- HAVING with AND/OR over aggregate UNKNOWNs -----------------------
    // SUM(amount) for "b" is NULL, so `SUM > 0` is UNKNOWN → "b" dropped.
    Case {
        name: "having_unknown_comparison_drops_group",
        sql: "SELECT cust FROM orders WHERE cust IS NOT NULL GROUP BY cust \
              HAVING SUM(amount) > 0 ORDER BY cust",
        expected: &["a", "c"],
    },
    // UNKNOWN OR TRUE = TRUE: "b" survives via the COUNT(*) disjunct.
    Case {
        name: "having_unknown_or_true_keeps_group",
        sql: "SELECT cust FROM orders WHERE cust IS NOT NULL GROUP BY cust \
              HAVING SUM(amount) > 0 OR COUNT(*) = 2 ORDER BY cust",
        expected: &["a", "b", "c"],
    },
    // UNKNOWN AND TRUE = UNKNOWN: "b" dropped despite COUNT(*) = 2.
    Case {
        name: "having_unknown_and_true_drops_group",
        sql: "SELECT cust FROM orders WHERE cust IS NOT NULL GROUP BY cust \
              HAVING SUM(amount) > 0 AND COUNT(*) = 2 ORDER BY cust",
        expected: &["a", "c"],
    },
    // Mixed connectives: (UNKNOWN AND TRUE) OR MAX = 40 keeps only "c";
    // MAX(amount) for "b" is NULL so its disjunct is UNKNOWN too.
    Case {
        name: "having_mixed_and_or",
        sql: "SELECT cust FROM orders WHERE cust IS NOT NULL GROUP BY cust \
              HAVING (SUM(amount) > 20 AND COUNT(*) = 2) OR MAX(amount) = 10 \
              ORDER BY cust",
        expected: &["a", "c"],
    },
    // COUNT over an all-NULL column is 0, not NULL — the comparison is
    // definite and keeps the group.
    Case {
        name: "having_count_of_nulls_is_zero",
        sql: "SELECT cust FROM orders WHERE cust IS NOT NULL GROUP BY cust \
              HAVING COUNT(amount) = 0 ORDER BY cust",
        expected: &["b"],
    },
];

#[test]
fn null_semantics_match_on_both_execution_paths() {
    let db = fixture();
    let opts = ExecOptions::default();
    let cache = PlanCache::new();
    for case in CASES {
        let interpreted =
            run_sql_with(&db, case.sql, opts).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert_eq!(
            render(&interpreted.rows),
            case.expected,
            "{}: interpreter disagrees with SQL 3VL",
            case.name
        );
        let compiled =
            cache.run(&db, case.sql, opts).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert_eq!(compiled, interpreted, "{}: compiled path diverged", case.name);
    }
    // Every case resolved through the shared cache exactly once cold.
    assert_eq!(cache.misses(), CASES.len() as u64);
}
