//! Result figures and tables computed from a benchmark run:
//! Figures 8–13, Figure 30, and the Kendall-τ tables (31a–47b).

use crate::pipeline::{BenchmarkRun, QueryRecord};
use snails_data::SnailsDatabase;
use snails_eval::report::{fmt2, fmt6, fmt_p, TextTable};
use snails_eval::stats::{kendall_tau_b, mean_confidence_interval};
use snails_eval::IdentifierTally;
use snails_naturalness::category::{Naturalness, SchemaVariant};
use snails_sql::QueryIdentifiers;
use std::collections::BTreeSet;

fn workflows_in(run: &BenchmarkRun) -> Vec<&'static str> {
    let mut seen = Vec::new();
    for r in &run.records {
        if !seen.contains(&r.workflow) {
            seen.push(r.workflow);
        }
    }
    seen
}

fn variants_in(run: &BenchmarkRun) -> Vec<SchemaVariant> {
    SchemaVariant::ALL
        .into_iter()
        .filter(|v| run.records.iter().any(|r| r.variant == *v))
        .collect()
}

/// Figure 8: execution accuracy by model and schema naturalness level.
pub fn figure8(run: &BenchmarkRun) -> String {
    let variants = variants_in(run);
    let mut header = vec!["Model"];
    header.extend(variants.iter().map(|v| v.display_name()));
    let mut table = TextTable::new(&header);
    for wf in workflows_in(run) {
        let mut row = vec![wf.to_owned()];
        for &v in &variants {
            let acc = BenchmarkRun::exec_accuracy(
                run.records.iter().filter(|r| r.workflow == wf && r.variant == v),
            );
            row.push(fmt2(acc));
        }
        table.row(row);
    }
    format!(
        "Figure 8: Execution accuracy (proportion of correct queries) by \
         model and naturalness level.\n{}",
        table.render()
    )
}

/// Figure 9: Native IdentifierRecall by model and naturalness level, with
/// 95% confidence intervals.
pub fn figure9(run: &BenchmarkRun, collection: &[SnailsDatabase]) -> String {
    let level_of = |database: &str, identifier: &str| -> Option<Naturalness> {
        collection
            .iter()
            .find(|d| d.spec.name.eq_ignore_ascii_case(database))
            .and_then(|d| d.crosswalk.entry(identifier))
            .map(|e| e.native_level)
    };
    let mut table = TextTable::new(&[
        "Model", "Regular recall (±95% CI)", "Low", "Least",
    ]);
    for wf in workflows_in(run) {
        // Tally identifier recall per database over Native-variant records.
        let mut per_level: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for db in collection {
            let mut tally = IdentifierTally::new();
            for r in run.records.iter().filter(|r| {
                r.workflow == wf
                    && r.variant == SchemaVariant::Native
                    && r.database == db.spec.name
                    && r.parse_ok
            }) {
                let gold = to_qi(&r.gold_ids);
                let pred = to_qi(&r.pred_ids);
                tally.record(&gold, &pred);
            }
            for (id, recall, _) in tally.recalls() {
                if let Some(level) = level_of(db.spec.name, &id) {
                    per_level[level.index()].push(recall);
                }
            }
        }
        let mut row = vec![wf.to_owned()];
        for level in Naturalness::ALL {
            let (mean, ci) = mean_confidence_interval(&per_level[level.index()], 0.95);
            row.push(format!("{} (±{})", fmt2(mean), fmt2(ci)));
        }
        table.row(row);
    }
    format!(
        "Figure 9: Native identifier recall by model and naturalness level \
         (identifiers in lower naturalness categories yield lower recall).\n{}",
        table.render()
    )
}

/// Sets stored in records are plain name sets; rebuild a
/// [`QueryIdentifiers`] treating everything as columns (the union is what
/// the metrics consume).
fn to_qi(ids: &BTreeSet<String>) -> QueryIdentifiers {
    QueryIdentifiers { tables: BTreeSet::new(), columns: ids.clone(), aliases: BTreeSet::new() }
}

/// Figure 10: QueryRecall by model and schema naturalness level.
pub fn figure10(run: &BenchmarkRun) -> String {
    let variants = variants_in(run);
    let mut header = vec!["Model"];
    header.extend(variants.iter().map(|v| v.display_name()));
    let mut table = TextTable::new(&header);
    for wf in workflows_in(run) {
        let mut row = vec![format!("{wf}-ZS")];
        if wf == "DINSQL" || wf == "CodeS" {
            row = vec![wf.to_owned()];
        }
        for &v in &variants {
            let recall = BenchmarkRun::mean_recall(
                run.records.iter().filter(|r| r.workflow == wf && r.variant == v),
            );
            row.push(fmt2(recall));
        }
        table.row(row);
    }
    format!(
        "Figure 10: Schema linking (QueryRecall) across schema naturalness \
         levels.\n{}",
        table.render()
    )
}

/// Figure 11: QueryRecall drill-down for selected databases.
pub fn figure11(run: &BenchmarkRun, databases: &[&str]) -> String {
    let variants = variants_in(run);
    let mut out = String::from(
        "Figure 11: Schema linking performance (QueryRecall) across native \
         and virtual schemas of selected databases.\n",
    );
    for db in databases {
        let mut header = vec!["Model"];
        header.extend(variants.iter().map(|v| v.display_name()));
        let mut table = TextTable::new(&header);
        for wf in workflows_in(run) {
            let mut row = vec![wf.to_owned()];
            for &v in &variants {
                let recall = BenchmarkRun::mean_recall(run.records.iter().filter(|r| {
                    r.workflow == wf && r.variant == v && r.database.eq_ignore_ascii_case(db)
                }));
                row.push(fmt2(recall));
            }
            table.row(row);
        }
        out.push_str(&format!("\n[{db}]\n{}", table.render()));
    }
    out
}

/// Figure 12: schema-subsetting recall / precision / F1 by workflow and
/// naturalness level (DIN-SQL and CodeS only).
pub fn figure12(run: &BenchmarkRun) -> String {
    let variants = variants_in(run);
    let mut table = TextTable::new(&["Workflow", "Measure", "Native", "Regular", "Low", "Least"]);
    for wf in ["DINSQL", "CodeS"] {
        for (mi, measure) in ["Recall", "Precision", "F1"].iter().enumerate() {
            let mut row = vec![wf.to_owned(), measure.to_string()];
            for &v in &SchemaVariant::ALL {
                if !variants.contains(&v) {
                    row.push("-".into());
                    continue;
                }
                let vals: Vec<f64> = run
                    .records
                    .iter()
                    .filter(|r| r.workflow == wf && r.variant == v)
                    .filter_map(|r| r.subset)
                    .map(|(rec, prec, f1)| [rec, prec, f1][mi])
                    .collect();
                if vals.is_empty() {
                    row.push("-".into());
                } else {
                    row.push(fmt2(vals.iter().sum::<f64>() / vals.len() as f64));
                }
            }
            table.row(row);
        }
    }
    format!(
        "Figure 12: Schema subsetting performance varies by naturalness \
         level for both DIN SQL and CodeS.\n{}",
        table.render()
    )
}

/// Figure 13: QueryRecall and execution accuracy over the Spider-sim dev set
/// modified with the SNAILS renaming artifacts.
pub fn figure13(spider_run: &BenchmarkRun) -> String {
    let variants = variants_in(spider_run);
    let mut table = TextTable::new(&["Measure", "Native", "Regular", "Low", "Least"]);
    for (label, f) in [
        ("QueryRecall", true),
        ("Execution accuracy", false),
    ] {
        let mut row = vec![label.to_string()];
        for &v in &SchemaVariant::ALL {
            if !variants.contains(&v) {
                row.push("-".into());
                continue;
            }
            let records = spider_run.records.iter().filter(|r| r.variant == v);
            let value = if f {
                BenchmarkRun::mean_recall(records)
            } else {
                BenchmarkRun::exec_accuracy(records)
            };
            row.push(fmt2(value));
        }
        table.row(row);
    }
    format!(
        "Figure 13: Spider-sim dev set renamed with the SNAILS artifacts — \
         effects are largest between Low and Least.\n{}",
        table.render()
    )
}

/// Figure 30: execution accuracy by database, model, and naturalness level.
pub fn figure30(run: &BenchmarkRun, collection: &[SnailsDatabase]) -> String {
    let mut header = vec!["Model".to_owned(), "Category".to_owned()];
    let dbs: Vec<&str> = collection
        .iter()
        .map(|d| d.spec.name)
        .filter(|n| run.records.iter().any(|r| &r.database == n))
        .collect();
    for d in &dbs {
        let combined = collection
            .iter()
            .find(|c| &c.spec.name == d)
            .map(|c| c.combined_naturalness())
            .unwrap_or(0.0);
        header.push(format!("{d} ({combined:.2})"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for wf in workflows_in(run) {
        for v in variants_in(run) {
            let mut row = vec![wf.to_owned(), v.display_name().to_owned()];
            for d in &dbs {
                let acc = BenchmarkRun::exec_accuracy(run.records.iter().filter(|r| {
                    r.workflow == wf && r.variant == v && &r.database == d
                }));
                row.push(fmt2(acc));
            }
            table.row(row);
        }
    }
    format!(
        "Figure 30: Execution accuracy by database and language model \
         (column headers show native combined naturalness).\n{}",
        table.render()
    )
}

/// Appendix (Figures 48–49 companions): QueryF1 and QueryPrecision by model
/// and schema naturalness level — "Precision and F1 are available, but less
/// helpful, due to penalization for additional predicted columns".
pub fn figure_f1_precision(run: &BenchmarkRun) -> String {
    let variants = variants_in(run);
    let mut out = String::new();
    for (label, pick) in [
        ("QueryF1", 0usize),
        ("QueryPrecision", 1usize),
    ] {
        let mut header = vec!["Model"];
        header.extend(variants.iter().map(|v| v.display_name()));
        let mut table = TextTable::new(&header);
        for wf in workflows_in(run) {
            let mut row = vec![wf.to_owned()];
            for &v in &variants {
                let scores: Vec<f64> = run
                    .records
                    .iter()
                    .filter(|r| r.workflow == wf && r.variant == v)
                    .filter_map(|r| r.linking.map(|l| if pick == 0 { l.f1 } else { l.precision }))
                    .collect();
                let mean = if scores.is_empty() {
                    0.0
                } else {
                    scores.iter().sum::<f64>() / scores.len() as f64
                };
                row.push(fmt2(mean));
            }
            table.row(row);
        }
        out.push_str(&format!("[{label}]\n{}\n", table.render()));
    }
    format!(
        "Appendix F.2 companion: schema linking F1 and Precision across \
         naturalness levels (precision is depressed by tolerated extra \
         columns, as the paper notes).\n{out}"
    )
}

/// Quartiles of a sample (assumes non-empty after the caller's check).
fn quartiles(mut v: Vec<f64>) -> (f64, f64, f64) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
    (q(0.25), q(0.5), q(0.75))
}

/// Figures 48–51: per-database box-plot statistics of QueryRecall across
/// naturalness levels (median and interquartile range per model).
pub fn figures_48_51(run: &BenchmarkRun, databases: &[&str]) -> String {
    let variants = variants_in(run);
    let mut out = String::from(
        "Figures 48–51: database-level QueryRecall distributions (median \
         [q1–q3]) across schema naturalness levels.\n",
    );
    for db in databases {
        let mut header = vec!["Model"];
        header.extend(variants.iter().map(|v| v.display_name()));
        let mut table = TextTable::new(&header);
        for wf in workflows_in(run) {
            let mut row = vec![wf.to_owned()];
            for &v in &variants {
                let scores: Vec<f64> = run
                    .records
                    .iter()
                    .filter(|r| {
                        r.workflow == wf
                            && r.variant == v
                            && r.database.eq_ignore_ascii_case(db)
                    })
                    .filter_map(|r| r.linking.map(|l| l.recall))
                    .collect();
                if scores.is_empty() {
                    row.push("-".into());
                } else {
                    let (q1, median, q3) = quartiles(scores);
                    row.push(format!("{} [{}-{}]", fmt2(median), fmt2(q1), fmt2(q3)));
                }
            }
            table.row(row);
        }
        out.push_str(&format!("\n[{db}]\n{}", table.render()));
    }
    out
}

/// The per-query x-measures of the Kendall-τ tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TauMeasure {
    /// Mean token-to-character ratio (tables 31a/31b).
    MeanTcr,
    /// Combined query naturalness (tables 32a–34b, 47a/47b).
    Combined,
    /// Proportion of Regular identifiers.
    PropRegular,
    /// Proportion of Low identifiers.
    PropLow,
    /// Proportion of Least identifiers.
    PropLeast,
}

impl TauMeasure {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TauMeasure::MeanTcr => "Mean token-to-character ratio",
            TauMeasure::Combined => "Query combined naturalness",
            TauMeasure::PropRegular => "Regular identifier proportion",
            TauMeasure::PropLow => "Low identifier proportion",
            TauMeasure::PropLeast => "Least identifier proportion",
        }
    }

    fn of(&self, r: &QueryRecord) -> f64 {
        match self {
            TauMeasure::MeanTcr => r.measures.mean_tcr,
            TauMeasure::Combined => r.measures.combined,
            TauMeasure::PropRegular => r.measures.prop_regular,
            TauMeasure::PropLow => r.measures.prop_low,
            TauMeasure::PropLeast => r.measures.prop_least,
        }
    }
}

/// The y-outcomes of the Kendall-τ tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TauOutcome {
    /// QueryRecall (parse failures excluded).
    Recall,
    /// QueryF1.
    F1,
    /// QueryPrecision.
    Precision,
    /// Execution accuracy (all records).
    ExecAccuracy,
}

impl TauOutcome {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TauOutcome::Recall => "Query Recall",
            TauOutcome::F1 => "Query F1",
            TauOutcome::Precision => "Query Precision",
            TauOutcome::ExecAccuracy => "Execution Accuracy",
        }
    }

    fn of(&self, r: &QueryRecord) -> Option<f64> {
        match self {
            TauOutcome::Recall => r.linking.map(|l| l.recall),
            TauOutcome::F1 => r.linking.map(|l| l.f1),
            TauOutcome::Precision => r.linking.map(|l| l.precision),
            TauOutcome::ExecAccuracy => Some(f64::from(u8::from(r.exec_correct))),
        }
    }
}

/// One Kendall-τ table: per-model correlation between a measure and an
/// outcome, over native schemas only or all schemas.
pub fn tau_table(
    run: &BenchmarkRun,
    measure: TauMeasure,
    outcome: TauOutcome,
    native_only: bool,
) -> String {
    let mut table = TextTable::new(&["Model", "Kendall-Tau", "P Value", "n"]);
    for wf in workflows_in(run) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for r in run.records.iter().filter(|r| {
            r.workflow == wf && (!native_only || r.variant == SchemaVariant::Native)
        }) {
            if let Some(y) = outcome.of(r) {
                xs.push(measure.of(r));
                ys.push(y);
            }
        }
        match kendall_tau_b(&xs, &ys) {
            Some(k) => {
                table.row(vec![wf.to_owned(), fmt6(k.tau), fmt_p(k.p_value), k.n.to_string()]);
            }
            None => {
                table.row(vec![wf.to_owned(), "n/a".into(), "n/a".into(), xs.len().to_string()]);
            }
        }
    }
    let scope = if native_only { "Native schemas" } else { "All schemas (native + modified)" };
    format!(
        "Kendall-Tau correlations between {} and {} — {}.\n{}",
        measure.name(),
        outcome.name(),
        scope,
        table.render()
    )
}

/// All Kendall-τ tables of the appendix (figures 31a–47b).
pub fn all_tau_tables(run: &BenchmarkRun) -> String {
    let mut out = String::new();
    let combos: Vec<(TauMeasure, TauOutcome)> = vec![
        (TauMeasure::MeanTcr, TauOutcome::Recall),
        (TauMeasure::Combined, TauOutcome::Recall),
        (TauMeasure::Combined, TauOutcome::F1),
        (TauMeasure::Combined, TauOutcome::Precision),
        (TauMeasure::PropRegular, TauOutcome::Recall),
        (TauMeasure::PropLow, TauOutcome::Recall),
        (TauMeasure::PropLeast, TauOutcome::Recall),
        (TauMeasure::PropRegular, TauOutcome::F1),
        (TauMeasure::PropLow, TauOutcome::F1),
        (TauMeasure::PropLeast, TauOutcome::F1),
        (TauMeasure::PropRegular, TauOutcome::Precision),
        (TauMeasure::PropLow, TauOutcome::Precision),
        (TauMeasure::PropLeast, TauOutcome::Precision),
        (TauMeasure::PropRegular, TauOutcome::ExecAccuracy),
        (TauMeasure::PropLow, TauOutcome::ExecAccuracy),
        (TauMeasure::PropLeast, TauOutcome::ExecAccuracy),
        (TauMeasure::Combined, TauOutcome::ExecAccuracy),
    ];
    for (m, o) in combos {
        for native_only in [true, false] {
            out.push_str(&tau_table(run, m, o, native_only));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_benchmark_on, BenchmarkConfig};
    use snails_llm::{ModelKind, Workflow};

    fn mini_run() -> (Vec<SnailsDatabase>, BenchmarkRun) {
        let collection = vec![snails_data::build_database("CWO")];
        let config = BenchmarkConfig {
            seed: 3,
            databases: vec!["CWO".into()],
            variants: vec![SchemaVariant::Native, SchemaVariant::Regular, SchemaVariant::Least],
            workflows: vec![Workflow::ZeroShot(ModelKind::Gpt35), Workflow::CodeS],
            threads: None,
            ..BenchmarkConfig::default()
        };
        let run = run_benchmark_on(&collection, &config);
        (collection, run)
    }

    #[test]
    fn figure8_has_model_rows() {
        let (_, run) = mini_run();
        let f = figure8(&run);
        assert!(f.contains("gpt-3.5"));
        assert!(f.contains("CodeS"));
        assert!(f.contains("Native"));
    }

    #[test]
    fn figure9_has_level_columns() {
        let (collection, run) = mini_run();
        let f = figure9(&run, &collection);
        assert!(f.contains("Regular recall"));
        assert!(f.contains("±"));
    }

    #[test]
    fn figure10_and_11_render() {
        let (_, run) = mini_run();
        assert!(figure10(&run).contains("QueryRecall"));
        let f11 = figure11(&run, &["CWO"]);
        assert!(f11.contains("[CWO]"));
    }

    #[test]
    fn figure12_shows_codes_subsetting() {
        let (_, run) = mini_run();
        let f = figure12(&run);
        assert!(f.contains("CodeS"));
        assert!(f.contains("Recall"));
    }

    #[test]
    fn figure30_includes_combined_score() {
        let (collection, run) = mini_run();
        let f = figure30(&run, &collection);
        assert!(f.contains("CWO (0.8"), "{f}");
    }

    #[test]
    fn tau_tables_have_expected_signs() {
        let (_, run) = mini_run();
        // Least proportion should correlate NEGATIVELY with recall.
        let t = tau_table(&run, TauMeasure::PropLeast, TauOutcome::Recall, false);
        let first_tau: f64 = t
            .lines()
            .nth(3)
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::NAN);
        assert!(first_tau < 0.0, "{t}");
        // Combined naturalness should correlate POSITIVELY.
        let t2 = tau_table(&run, TauMeasure::Combined, TauOutcome::Recall, false);
        let tau2: f64 = t2
            .lines()
            .nth(3)
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::NAN);
        assert!(tau2 > 0.0, "{t2}");
    }

    #[test]
    fn all_tau_tables_render_34_tables() {
        let (_, run) = mini_run();
        let all = all_tau_tables(&run);
        assert_eq!(all.matches("Kendall-Tau correlations").count(), 34);
    }
}
