//! Per-query naturalness and token-ratio measures.
//!
//! Each gold query carries measures of the identifiers *as displayed* at the
//! active schema variant: the proportions of Regular/Low/Least identifiers,
//! the combined naturalness (Equation 5), and the mean token-to-character
//! ratio under the GPT-style tokenizer (Equation 6). These are the x-axes of
//! the Kendall-τ tables.

use snails_data::SnailsDatabase;
use snails_naturalness::category::{Naturalness, SchemaVariant};
use snails_naturalness::NaturalnessProfile;
use snails_sql::QueryIdentifiers;
use snails_tokenize::{token_character_ratio, tokenizer_for, TokenizerProfile};

/// The per-query measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMeasures {
    /// Proportion of displayed gold identifiers at Regular naturalness.
    pub prop_regular: f64,
    /// Proportion at Low.
    pub prop_low: f64,
    /// Proportion at Least.
    pub prop_least: f64,
    /// Combined naturalness of the displayed gold identifiers.
    pub combined: f64,
    /// Mean token-to-character ratio of the displayed gold identifiers
    /// (GPT-style BPE).
    pub mean_tcr: f64,
}

/// Compute measures for a gold identifier set at a variant.
pub fn query_measures(
    db: &SnailsDatabase,
    variant: SchemaVariant,
    gold: &QueryIdentifiers,
) -> QueryMeasures {
    let tokenizer = tokenizer_for(TokenizerProfile::GptLike);
    let mut levels: Vec<Naturalness> = Vec::new();
    let mut tcr_sum = 0.0;
    let mut n = 0usize;
    for id in gold.all() {
        let Some(entry) = db.crosswalk.entry(&id) else { continue };
        let level = variant.target_level().unwrap_or(entry.native_level);
        levels.push(level);
        let displayed = entry.rendering(variant);
        tcr_sum += token_character_ratio(tokenizer, displayed);
        n += 1;
    }
    let profile = NaturalnessProfile::from_labels(levels.iter().copied());
    QueryMeasures {
        prop_regular: profile.proportion(Naturalness::Regular),
        prop_low: profile.proportion(Naturalness::Low),
        prop_least: profile.proportion(Naturalness::Least),
        combined: profile.combined(),
        mean_tcr: if n == 0 { 0.0 } else { tcr_sum / n as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_data::build_database;
    use snails_sql::{extract_identifiers, parse};

    #[test]
    fn modified_variants_have_uniform_levels() {
        let db = build_database("CWO");
        let gold = extract_identifiers(&parse(&db.questions[0].sql).unwrap());
        let m = query_measures(&db, SchemaVariant::Least, &gold);
        assert_eq!(m.prop_least, 1.0);
        assert_eq!(m.combined, 0.0);
        let m = query_measures(&db, SchemaVariant::Regular, &gold);
        assert_eq!(m.prop_regular, 1.0);
        assert_eq!(m.combined, 1.0);
    }

    #[test]
    fn native_variant_mixes_levels() {
        let db = build_database("NTSB");
        // Aggregate over all questions: the native proportions must be
        // non-degenerate for a mixed-naturalness schema.
        let mut combined_sum = 0.0;
        for q in &db.questions {
            let gold = extract_identifiers(&parse(&q.sql).unwrap());
            let m = query_measures(&db, SchemaVariant::Native, &gold);
            combined_sum += m.combined;
            let total = m.prop_regular + m.prop_low + m.prop_least;
            assert!((total - 1.0).abs() < 1e-9);
        }
        let mean = combined_sum / db.questions.len() as f64;
        assert!(mean > 0.2 && mean < 0.95, "mean combined {mean}");
    }

    #[test]
    fn tcr_higher_at_least_level() {
        let db = build_database("CWO");
        let gold = extract_identifiers(&parse(&db.questions[0].sql).unwrap());
        let regular = query_measures(&db, SchemaVariant::Regular, &gold);
        let least = query_measures(&db, SchemaVariant::Least, &gold);
        assert!(least.mean_tcr > regular.mean_tcr, "{} !> {}", least.mean_tcr, regular.mean_tcr);
    }
}
