//! Dataset-level tables and figures (no benchmark run required):
//! Tables 1–5, Figures 2/3/5, and the appendix B/C analyses.

use snails_data::schemapile;
use snails_data::SnailsDatabase;
use snails_eval::report::{fmt2, TextTable};
use snails_lexicon::mean_token_in_dictionary;
use snails_naturalness::category::Naturalness;
use snails_naturalness::{
    evaluate_classifier, Classifier, FeatureConfig, FewShotClassifier, HeuristicClassifier,
    LabeledIdentifier, NaturalnessProfile, SoftmaxClassifier, TrainConfig,
};
use snails_tokenize::{token_character_ratio, tokenizer_for, Tokenizer, TokenizerProfile};

/// Table 1: example identifiers per naturalness level.
pub fn table1() -> String {
    let data = schemapile::labeled_identifiers(0x7AB1E, 4000);
    let mut table = TextTable::new(&["Regular", "Low", "Least"]);
    let pick = |level: Naturalness, k: usize| -> Vec<String> {
        data.iter()
            .filter(|l| l.label == level)
            .take(k)
            .map(|l| l.text.clone())
            .collect()
    };
    let (r, l, s) = (
        pick(Naturalness::Regular, 5),
        pick(Naturalness::Low, 5),
        pick(Naturalness::Least, 5),
    );
    for i in 0..5 {
        table.row(vec![r[i].clone(), l[i].clone(), s[i].clone()]);
    }
    format!(
        "Table 1: Example identifiers and their naturalness levels (from the \
         labeled dataset, Artifact 2).\n{}",
        table.render()
    )
}

/// Figure 2: mean token-in-dictionary by naturalness category.
pub fn figure2() -> String {
    let data = schemapile::labeled_identifiers(0xF162, 6000);
    let mut table = TextTable::new(&["Category", "Mean token-in-dictionary", "n"]);
    for level in Naturalness::ALL {
        let scores: Vec<f64> = data
            .iter()
            .filter(|l| l.label == level)
            .map(|l| mean_token_in_dictionary(&l.text))
            .collect();
        let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        table.row(vec![
            level.display_name().to_owned(),
            fmt2(mean),
            scores.len().to_string(),
        ]);
    }
    format!(
        "Figure 2: Mean token-in-dictionary by naturalness category — the \
         proportion of identifier tokens matching an English word decreases \
         with naturalness level.\n{}",
        table.render()
    )
}

/// The reference classifier (the paper's CANINE-based model): softmax with
/// character-tagging features trained on Collection 2.
pub fn reference_classifier() -> SoftmaxClassifier {
    let collection2 = schemapile::labeled_identifiers(0xC2, 17_226);
    let train: Vec<LabeledIdentifier> = collection2[..10_327].to_vec();
    SoftmaxClassifier::train("CANINE-Seq+TG-C2", &train, TrainConfig::default())
}

/// Figure 3 / Figure 23: naturalness proportions of SNAILS vs Spider-sim vs
/// BIRD vs SchemaPile-sim, classified with the reference classifier.
pub fn figure3(collection: &[SnailsDatabase]) -> String {
    let clf = reference_classifier();
    let mut table = TextTable::new(&["Collection", "Regular", "Low", "Least"]);

    // SNAILS: gold labels, averaged per database so SBOD's 93k identifiers
    // do not drown the other eight schemas (the paper's bar chart treats
    // collections as distributions over schemas).
    let mut snails_props = [0.0f64; 3];
    for db in collection {
        let profile = NaturalnessProfile::from_labels(
            db.identifier_levels().into_iter().map(|(_, l)| l),
        );
        for level in Naturalness::ALL {
            snails_props[level.index()] += profile.proportion(level);
        }
    }
    for p in &mut snails_props {
        *p /= collection.len().max(1) as f64;
    }
    table.row(vec![
        "SNAILS".into(),
        fmt2(snails_props[0]),
        fmt2(snails_props[1]),
        fmt2(snails_props[2]),
    ]);

    // Spider-sim: classify the Spider-like collection.
    let spider_dbs = snails_data::spider::build_spider();
    let mut spider_labels = Vec::new();
    for db in &spider_dbs {
        for name in db.db.identifier_names() {
            spider_labels.push(clf.classify(&name));
        }
    }
    let spider = NaturalnessProfile::from_labels(spider_labels);
    table.row(vec![
        "Spider (sim)".into(),
        fmt2(spider.proportion(Naturalness::Regular)),
        fmt2(spider.proportion(Naturalness::Low)),
        fmt2(spider.proportion(Naturalness::Least)),
    ]);

    // BIRD: reference proportions (appendix A.3 classification).
    let bird = schemapile::benchmark_reference_proportions("BIRD").expect("BIRD reference");
    table.row(vec!["BIRD (ref)".into(), fmt2(bird[0]), fmt2(bird[1]), fmt2(bird[2])]);

    // SchemaPile-sim: aggregate proportions.
    let stats = schemapile::corpus_stats(&schemapile::generate_corpus(42, 22_000));
    table.row(vec![
        "SchemaPile (sim)".into(),
        fmt2(stats.proportions[0]),
        fmt2(stats.proportions[1]),
        fmt2(stats.proportions[2]),
    ]);

    format!(
        "Figure 3: SNAILS naturalness proportions are biased toward less \
         natural identifiers and align with SchemaPile more than Spider/BIRD.\n{}",
        table.render()
    )
}

/// Figure 5 / Figure 24: per-database naturalness proportions and combined
/// naturalness (gold labels).
pub fn figure5(collection: &[SnailsDatabase]) -> String {
    let mut table =
        TextTable::new(&["Database", "Regular", "Low", "Least", "Combined", "Identifiers"]);
    for db in collection {
        let levels: Vec<Naturalness> =
            db.identifier_levels().into_iter().map(|(_, l)| l).collect();
        let profile = NaturalnessProfile::from_labels(levels.iter().copied());
        table.row(vec![
            db.spec.name.to_owned(),
            fmt2(profile.proportion(Naturalness::Regular)),
            fmt2(profile.proportion(Naturalness::Low)),
            fmt2(profile.proportion(Naturalness::Least)),
            fmt2(profile.combined()),
            profile.total().to_string(),
        ]);
    }
    format!(
        "Figure 5: Proportion of identifiers in each naturalness category \
         within the SNAILS collection; markers = combined naturalness.\n{}",
        table.render()
    )
}

/// Table 2: the real-world database schemas.
pub fn table2(collection: &[SnailsDatabase]) -> String {
    let mut table = TextTable::new(&["Database", "Tables", "Columns", "Questions", "Org"]);
    for db in collection {
        table.row(vec![
            db.spec.name.to_owned(),
            db.db.table_count().to_string(),
            db.db.column_count().to_string(),
            db.questions.len().to_string(),
            db.spec.org.to_owned(),
        ]);
    }
    format!("Table 2: SNAILS Real-World Database Schemas.\n{}", table.render())
}

/// Table 3: gold query clause counts per database.
pub fn table3(collection: &[SnailsDatabase]) -> String {
    let mut table = TextTable::new(&[
        "Database", "Qs", "Top", "Function", "Join", "CK Join", "Exists", "Subquery",
        "Where", "Negation", "Group By", "Order By", "Having",
    ]);
    for db in collection {
        let mut top = 0;
        let mut function = 0;
        let mut join = 0;
        let mut ck = 0;
        let mut exists = 0;
        let mut sub = 0;
        let mut wh = 0;
        let mut neg = 0;
        let mut gb = 0;
        let mut ob = 0;
        let mut hav = 0;
        for q in &db.questions {
            let p = snails_sql::clause_profile(&snails_sql::parse(&q.sql).expect("gold parses"));
            top += usize::from(p.top);
            function += usize::from(p.functions > 0);
            join += usize::from(p.joins > 0);
            ck += usize::from(p.composite_key_joins > 0);
            exists += usize::from(p.exists > 0);
            sub += usize::from(p.subqueries > 0);
            wh += usize::from(p.where_clause);
            neg += usize::from(p.negation);
            gb += usize::from(p.group_by);
            ob += usize::from(p.order_by);
            hav += usize::from(p.having);
        }
        table.row(
            vec![
                db.spec.name.to_owned(),
                db.questions.len().to_string(),
                top.to_string(),
                function.to_string(),
                join.to_string(),
                ck.to_string(),
                exists.to_string(),
                sub.to_string(),
                wh.to_string(),
                neg.to_string(),
                gb.to_string(),
                ob.to_string(),
                hav.to_string(),
            ],
        );
    }
    format!(
        "Table 3: Gold query clause counts (count of gold queries containing \
         each clause type).\n{}",
        table.render()
    )
}

/// Table 4: SBOD module schemas (module assignment of the 2,588 tables; the
/// paper's question allocation per module).
pub fn table4(sbod: &SnailsDatabase) -> String {
    assert_eq!(sbod.spec.name, "SBOD", "table4 requires the SBOD database");
    // The paper's per-module question allocation (Table 4).
    let questions = [10usize, 10, 10, 10, 20, 10, 10, 10, 10];
    let mut table = TextTable::new(&["Module", "Tables", "Columns", "Questions"]);
    for (i, (module, tables)) in sbod.modules.iter().enumerate() {
        let columns: usize = tables
            .iter()
            .filter_map(|t| sbod.db.table(t))
            .map(|t| t.schema.columns.len())
            .sum();
        table.row(vec![
            module.clone(),
            tables.len().to_string(),
            columns.to_string(),
            questions.get(i).copied().unwrap_or(0).to_string(),
        ]);
    }
    format!(
        "Table 4: SBO Demo module schemas (full module assignment; prompts \
         use the pruned {}-table subset).\n{}",
        sbod.prompt_tables.len(),
        table.render()
    )
}

/// Table 5: naturalness-classifier comparison on Collections 1 and 2.
pub fn table5() -> String {
    // Collection 2 (17,226) with the paper's split sizes; Collection 1 is
    // its first 1,648 identifiers (959/356/333 split). Labels carry the
    // ≈9% ambiguity of the paper's hand-labeled data (appendix B.3 reports
    // 90.1% weak-supervision agreement), which caps classifier ceilings at
    // the paper's ≈0.89.
    let collection2 = schemapile::labeled_identifiers_noisy(0xC2, 17_226, 0.09);
    let c2_train = &collection2[..10_327];
    let c2_test = &collection2[13_784..]; // final 3,442 as held-out test
    let collection1 = &collection2[..1_648];
    let c1_train = &collection1[..959];
    let c1_test = &collection1[1_315..]; // final 333

    let mut rows: Vec<(String, snails_naturalness::ClassifierReport)> = Vec::new();
    let mut eval = |clf: &dyn Classifier, test: &[LabeledIdentifier]| {
        let report = evaluate_classifier(clf, test);
        rows.push((clf.name().to_owned(), report));
    };

    // Heuristic baseline (appendix B.1).
    eval(&HeuristicClassifier::default(), c2_test);
    // Few-shot prompting: the stronger model (GPT-4) digests the full 25
    // examples; the weaker one effectively uses fewer.
    let plain = FeatureConfig { char_tagging: false, tokenizer: false };
    let fs_weak = FewShotClassifier::from_examples("GPT-3.5-FewShot", c1_train, 10, plain);
    eval(&fs_weak, c2_test);
    let fs_strong = FewShotClassifier::from_examples("GPT-4-FewShot", c1_train, 25, plain);
    eval(&fs_strong, c2_test);
    // Finetuned on Collection 1.
    let c1_cfg = TrainConfig { features: plain, ..Default::default() };
    eval(&SoftmaxClassifier::train("CANINE-Seq C1", c1_train, c1_cfg), c1_test);
    let c1_cfg_tg = TrainConfig::default();
    eval(&SoftmaxClassifier::train("CANINE-Seq+TG C1", c1_train, c1_cfg_tg), c1_test);
    // Finetuned on Collection 2.
    let c2_cfg = TrainConfig { features: plain, ..Default::default() };
    eval(&SoftmaxClassifier::train("GPT-3.5-FineTune", c2_train, c2_cfg), c2_test);
    eval(
        &SoftmaxClassifier::train("CANINE-Seq+TG C2", c2_train, TrainConfig::default()),
        c2_test,
    );

    let mut table = TextTable::new(&["Model", "Accuracy", "Precision", "Recall", "F1"]);
    for (name, r) in &rows {
        table.row(vec![
            name.clone(),
            fmt2(r.accuracy),
            fmt2(r.precision),
            fmt2(r.recall),
            fmt2(r.f1),
        ]);
    }
    format!(
        "Table 5: Classifier comparison for database-identifier naturalness \
         (heuristic < few-shot < finetuned; +TG = character tagging).\n{}",
        table.render()
    )
}

/// Figure 26: identifier character-count distribution by naturalness level.
pub fn figure26() -> String {
    let data = schemapile::labeled_identifiers(0xF26, 6000);
    let mut table = TextTable::new(&["Category", "p25 chars", "median", "p75", "mean"]);
    for level in Naturalness::ALL {
        let mut lens: Vec<usize> = data
            .iter()
            .filter(|l| l.label == level)
            .map(|l| l.text.chars().count())
            .collect();
        lens.sort_unstable();
        let q = |p: f64| lens[((lens.len() - 1) as f64 * p) as usize];
        let mean = lens.iter().sum::<usize>() as f64 / lens.len().max(1) as f64;
        table.row(vec![
            level.display_name().to_owned(),
            q(0.25).to_string(),
            q(0.5).to_string(),
            q(0.75).to_string(),
            fmt2(mean),
        ]);
    }
    format!(
        "Figure 26: More natural (less abbreviated) identifiers have more \
         characters.\n{}",
        table.render()
    )
}

/// Figure 27: token-count distribution by level, per tokenizer.
pub fn figure27() -> String {
    let data = schemapile::labeled_identifiers(0xF27, 3000);
    let mut table = TextTable::new(&["Tokenizer", "Regular mean tokens", "Low", "Least"]);
    for profile in TokenizerProfile::ALL {
        let t: &dyn Tokenizer = tokenizer_for(profile);
        let mean = |level: Naturalness| {
            let counts: Vec<usize> = data
                .iter()
                .filter(|l| l.label == level)
                .map(|l| t.token_count(&l.text))
                .collect();
            counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64
        };
        table.row(vec![
            profile.display_name().to_owned(),
            fmt2(mean(Naturalness::Regular)),
            fmt2(mean(Naturalness::Low)),
            fmt2(mean(Naturalness::Least)),
        ]);
    }
    format!(
        "Figure 27: Token counts by naturalness level per tokenizer — token \
         count alone is not very sensitive to naturalness.\n{}",
        table.render()
    )
}

/// Figure 28: token-to-character ratio by level, per tokenizer.
pub fn figure28() -> String {
    let data = schemapile::labeled_identifiers(0xF28, 3000);
    let mut table = TextTable::new(&["Tokenizer", "Regular mean TCR", "Low", "Least"]);
    for profile in TokenizerProfile::ALL {
        let t: &dyn Tokenizer = tokenizer_for(profile);
        let mean = |level: Naturalness| {
            let scores: Vec<f64> = data
                .iter()
                .filter(|l| l.label == level)
                .map(|l| token_character_ratio(t, &l.text))
                .collect();
            scores.iter().sum::<f64>() / scores.len().max(1) as f64
        };
        table.row(vec![
            profile.display_name().to_owned(),
            fmt2(mean(Naturalness::Regular)),
            fmt2(mean(Naturalness::Low)),
            fmt2(mean(Naturalness::Least)),
        ]);
    }
    format!(
        "Figure 28: More natural identifiers contain fewer tokens per \
         character (higher in-vocabulary share).\n{}",
        table.render()
    )
}

/// §2.2: SchemaPile-scale naturalness statistics.
pub fn schemapile_report() -> String {
    let corpus = schemapile::generate_corpus(42, 22_000);
    let stats = schemapile::corpus_stats(&corpus);
    format!(
        "SchemaPile-sim (§2.2): {} schemas, {} tables, {} columns.\n\
         Schemas with ≥10% Least identifiers: {} ({:.0}%).\n\
         Schemas with combined naturalness ≤ 0.7: {} — of which {} have \
         Low+Least outnumbering Regular.\n",
        stats.schemas,
        stats.tables,
        stats.columns,
        stats.least_heavy,
        100.0 * stats.least_heavy as f64 / stats.schemas as f64,
        stats.low_combined,
        stats.low_combined_minority_regular,
    )
}

/// §6 "Other Naming Patterns in Real-World Schemas": whitespace identifiers
/// and the word `table` embedded in identifier names — LLM-unfriendly
/// patterns the paper quantifies in SchemaPile and observes in SNAILS.
pub fn naming_patterns_report(collection: &[SnailsDatabase]) -> String {
    let mut total = 0usize;
    let mut whitespace = 0usize;
    let mut table_word = 0usize;
    for db in collection {
        for name in db.db.identifier_names() {
            total += 1;
            if name.contains(' ') {
                whitespace += 1;
            }
            let has_table_word = snails_lexicon::split_identifier(&name).iter().any(|t| {
                let lower = t.text.to_ascii_lowercase();
                lower == "table" || lower == "tbl" || lower == "tlu"
            });
            if has_table_word {
                table_word += 1;
            }
        }
    }
    format!(
        "§6 naming patterns across the SNAILS collection ({total} identifiers):\n\
         - whitespace in identifier: {whitespace} ({:.2}%) — the paper found \
         148 of ~19,000 (<1%) in SNAILS and 808 columns / 63 tables in \
         SchemaPile; LLMs tend to hallucinate these into snake/camel case \
         instead of bracket-quoting them (modeled in the simulator).\n\
         - word `table` embedded in the name: {table_word} ({:.2}%) — the \
         paper found 700+ such identifiers in SchemaPile; some LLMs drop the \
         word during inference (e.g. table_employee → employee).\n",
        100.0 * whitespace as f64 / total.max(1) as f64,
        100.0 * table_word as f64 / total.max(1) as f64,
    )
}

/// Appendix C: modifier quality — abbreviator level-correctness (per the
/// reference classifier) and expander round-trip accuracy.
pub fn modifier_report() -> String {
    let words: Vec<&str> = snails_lexicon::dictionary()
        .iter()
        .filter(|w| w.len() >= 5 && w.len() <= 12)
        .collect();
    let mut sorted = words.clone();
    sorted.sort_unstable();
    let sample: Vec<&str> = sorted.iter().step_by(7).take(200).copied().collect();

    let expander = snails_modify::Expander::new();
    let mut low_round_trip = 0usize;
    for w in &sample {
        let low = snails_modify::abbreviate_word(w, Naturalness::Low);
        let expanded = expander.expand_identifier(&low);
        if expanded == *w {
            low_round_trip += 1;
        }
    }
    format!(
        "Appendix C (modifier quality): over {} sampled dictionary words, \
         expander(abbreviator(word, Low)) recovered the original word for \
         {} ({:.0}%). Least-level skeletons require metadata lookup, which \
         the RAG expander provides per database (see `snails-modify`).\n",
        sample.len(),
        low_round_trip,
        100.0 * low_round_trip as f64 / sample.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows() {
        let t = table1();
        assert!(t.contains("Table 1"));
        assert_eq!(t.lines().count(), 8); // caption + header + sep + 5 rows
    }

    #[test]
    fn figure2_is_monotone() {
        let f = figure2();
        // Extract the three means and check ordering.
        let means: Vec<f64> = f
            .lines()
            .skip(3)
            .filter_map(|l| l.split_whitespace().nth(1)?.parse().ok())
            .collect();
        assert_eq!(means.len(), 3, "{f}");
        assert!(means[0] > means[1] && means[1] > means[2], "{f}");
    }

    #[test]
    fn figure26_monotone_char_counts() {
        let f = figure26();
        let medians: Vec<f64> = f
            .lines()
            .skip(3)
            .filter_map(|l| l.split_whitespace().nth(2)?.parse().ok())
            .collect();
        assert_eq!(medians.len(), 3);
        assert!(medians[0] > medians[2], "{f}");
    }

    #[test]
    fn schemapile_report_mentions_thresholds() {
        let r = schemapile_report();
        assert!(r.contains("22000 schemas") || r.contains("22,000") || r.contains("22000"));
        assert!(r.contains("≥10%"));
    }

    #[test]
    fn modifier_report_reports_round_trip() {
        let r = modifier_report();
        assert!(r.contains("recovered"));
    }
}
