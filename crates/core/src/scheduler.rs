//! Deterministic parallel work scheduler.
//!
//! The benchmark grid — (database × variant × workflow × question) — is an
//! embarrassingly parallel bag of independent work items, but the SNAILS
//! contract requires the output to be *bit-identical* to the serial loop:
//! `runs_are_reproducible` and every figure-generation routine consume
//! `BenchmarkRun.records` in grid order.
//!
//! The scheduler therefore separates execution order from output order:
//! workers claim contiguous chunks of the item index space from a shared
//! atomic cursor (cheap work-stealing without per-item contention), tag
//! every result with its item index, and the caller-side merge sorts the
//! tagged results back into serial order. With one thread the scheduler
//! degenerates to a plain in-order loop, so `threads = 1` reproduces the
//! serial baseline exactly by construction.
//!
//! No dependencies beyond `std` — the build must stay offline-capable, so
//! no rayon. `std::thread::scope` lets workers borrow the item slice and
//! the closure without `Arc`.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use when the caller does not specify one.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Upper bound on chunks claimed per worker pass: finer chunks balance
/// better across skewed item costs, coarser chunks reduce contention on
/// the shared cursor. 8 chunks per worker is a common compromise.
const CHUNKS_PER_WORKER: usize = 8;

/// Map `f` over `items` on `threads` workers, returning results in item
/// order — exactly the order a serial `items.iter().enumerate().map(f)`
/// would produce.
///
/// `f` must be a pure function of `(index, item)` for the parallel output
/// to be identical to the serial output; nothing in the scheduler itself
/// introduces ordering or scheduling effects into the results.
///
/// A panic in `f` propagates to the caller after all workers stop claiming
/// new work.
pub fn run_ordered<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let chunk = (n / (workers * CHUNKS_PER_WORKER)).max(1);
    let cursor = AtomicUsize::new(0);

    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, f(i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduler worker panicked"))
            .collect()
    });

    let mut tagged: Vec<(usize, T)> = per_worker.into_iter().flatten().collect();
    debug_assert_eq!(tagged.len(), n, "every item produced exactly one result");
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(run_ordered(&none, 4, |_, x| *x).is_empty());
        assert_eq!(run_ordered(&[7u32], 4, |_, x| x * 2), vec![14]);
    }

    #[test]
    fn matches_serial_map_for_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = run_ordered(&items, threads, |_, x| x * x + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn every_index_passed_exactly_once() {
        use std::sync::Mutex;
        let items: Vec<u8> = vec![0; 257];
        let seen = Mutex::new(vec![0u32; items.len()]);
        run_ordered(&items, 8, |i, _| {
            seen.lock().unwrap()[i] += 1;
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn index_argument_matches_item_position() {
        let items: Vec<usize> = (0..500).map(|i| i * 3).collect();
        run_ordered(&items, 6, |i, item| assert_eq!(*item, i * 3));
    }

    #[test]
    fn uneven_work_still_reassembles_in_order() {
        // Skewed per-item cost exercises the work-stealing path: early
        // chunks are slow, late chunks fast, so completion order differs
        // wildly from item order.
        let items: Vec<u64> = (0..64).collect();
        let out = run_ordered(&items, 8, |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn thread_count_oversubscription_is_clamped() {
        let items = [1u32, 2, 3];
        assert_eq!(run_ordered(&items, 1000, |_, x| *x), vec![1, 2, 3]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
