//! Deterministic parallel work scheduler.
//!
//! The benchmark grid — (database × variant × workflow × question) — is an
//! embarrassingly parallel bag of independent work items, but the SNAILS
//! contract requires the output to be *bit-identical* to the serial loop:
//! `runs_are_reproducible` and every figure-generation routine consume
//! `BenchmarkRun.records` in grid order.
//!
//! The scheduler therefore separates execution order from output order:
//! workers claim contiguous chunks of the item index space from a shared
//! atomic cursor (cheap work-stealing without per-item contention), tag
//! every result with its item index, and the caller-side merge sorts the
//! tagged results back into serial order. With one thread the scheduler
//! degenerates to a plain in-order loop, so `threads = 1` reproduces the
//! serial baseline exactly by construction.
//!
//! No dependencies beyond `std` — the build must stay offline-capable, so
//! no rayon. `std::thread::scope` lets workers borrow the item slice and
//! the closure without `Arc`.

use snails_obs::{Metric as Obs, ObsCtx};
use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of worker threads to use when the caller does not specify one.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Upper bound on chunks claimed per worker pass: finer chunks balance
/// better across skewed item costs, coarser chunks reduce contention on
/// the shared cursor. 8 chunks per worker is a common compromise.
const CHUNKS_PER_WORKER: usize = 8;

/// Map `f` over `items` on `threads` workers, returning results in item
/// order — exactly the order a serial `items.iter().enumerate().map(f)`
/// would produce.
///
/// `f` must be a pure function of `(index, item)` for the parallel output
/// to be identical to the serial output; nothing in the scheduler itself
/// introduces ordering or scheduling effects into the results.
///
/// A panic in `f` propagates to the caller after all workers stop claiming
/// new work. For per-item panic isolation, see [`run_ordered_isolated`].
pub fn run_ordered<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    run_ordered_isolated(items, threads, f, |_, _, payload| {
        std::panic::resume_unwind(payload)
    })
}

/// [`run_ordered`] with per-item panic isolation: each call to `f` runs
/// under `catch_unwind`, and a panicking item is converted to a result by
/// `on_panic(index, item, payload)` instead of killing its worker — the
/// other workers never notice, and the run completes with one result per
/// item in order.
///
/// Isolation is identical in the serial (`threads = 1`) and parallel paths,
/// so a panicking item yields the same substituted result at any thread
/// count — the determinism contract extends to faulty items.
///
/// `on_panic` may itself panic (e.g. [`run_ordered`] rethrows); that panic
/// propagates to the caller as before.
pub fn run_ordered_isolated<I, T, F, P>(items: &[I], threads: usize, f: F, on_panic: P) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
    P: Fn(usize, &I, Box<dyn Any + Send>) -> T + Sync,
{
    run_ordered_observed(items, threads, None, f, on_panic)
}

/// [`run_ordered_isolated`] with optional observability: when `ctx` is
/// `Some`, every worker installs the context as its scope (so metric and
/// span calls inside `f` record into it), each item runs as
/// [`snails_obs::task`] `i` (making span merging deterministic — see
/// `snails_obs::trace`), and the scheduler reports its own telemetry:
/// `core.scheduler.items` per item (deterministic), plus volatile shape
/// metrics (workers, queue depth, chunks claimed/stolen, per-item wall
/// time) that legitimately vary with the thread count.
pub fn run_ordered_observed<I, T, F, P>(
    items: &[I],
    threads: usize,
    ctx: Option<&Arc<ObsCtx>>,
    f: F,
    on_panic: P,
) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
    P: Fn(usize, &I, Box<dyn Any + Send>) -> T + Sync,
{
    run_ordered_observed_keyed(items, threads, ctx, |i, _| i as u64, f, on_panic)
}

/// [`run_ordered_observed`] with caller-chosen task ids: `key(i, item)`
/// labels item `i`'s [`snails_obs::task`]. The checkpoint layer uses this
/// to run a *subset* of the grid (a shard, or the cells a resumed run still
/// owes) while tagging each cell's spans with its grid-global index — so
/// the merged span stream of a sharded or resumed run interleaves exactly
/// like the uninterrupted full run's.
pub fn run_ordered_observed_keyed<I, T, K, F, P>(
    items: &[I],
    threads: usize,
    ctx: Option<&Arc<ObsCtx>>,
    key: K,
    f: F,
    on_panic: P,
) -> Vec<T>
where
    I: Sync,
    T: Send,
    K: Fn(usize, &I) -> u64 + Sync,
    F: Fn(usize, &I) -> T + Sync,
    P: Fn(usize, &I, Box<dyn Any + Send>) -> T + Sync,
{
    // `AssertUnwindSafe` is sound here: a caught panic either rethrows
    // (run_ordered, restoring the old abort-the-run behavior) or replaces
    // the item's result wholesale, so no partially-mutated state is
    // observed across the unwind boundary.
    let call = |i: usize, item: &I| -> T {
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(v) => v,
            Err(payload) => on_panic(i, item, payload),
        }
    };
    // The task wrapper (panic isolation happens inside it, so the task
    // always flushes normally) plus per-item accounting.
    let observed = |i: usize, item: &I| -> T {
        let Some(ctx) = ctx else { return call(i, item) };
        let started = Instant::now();
        let out = snails_obs::task(key(i, item), || call(i, item));
        ctx.registry.add(Obs::CoreSchedulerItems, 1);
        ctx.registry
            .observe(Obs::CoreSchedulerItemWallNs, started.elapsed().as_nanos() as u64);
        out
    };

    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if let Some(ctx) = ctx {
        ctx.registry.gauge_set(Obs::CoreSchedulerWorkers, workers as i64);
    }
    if workers == 1 {
        let _scope = ctx.map(snails_obs::scope);
        return items.iter().enumerate().map(|(i, item)| observed(i, item)).collect();
    }

    let chunk = (n / (workers * CHUNKS_PER_WORKER)).max(1);
    let cursor = AtomicUsize::new(0);

    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _scope = ctx.map(snails_obs::scope);
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let mut claims = 0usize;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        if let Some(ctx) = ctx {
                            claims += 1;
                            ctx.registry.add(Obs::CoreSchedulerChunksClaimed, 1);
                            if claims > 1 {
                                ctx.registry.add(Obs::CoreSchedulerStealChunks, 1);
                            }
                            ctx.registry.gauge_set(
                                Obs::CoreSchedulerQueueDepth,
                                n.saturating_sub(start + chunk) as i64,
                            );
                        }
                        let end = (start + chunk).min(n);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, observed(i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduler worker panicked"))
            .collect()
    });

    let mut tagged: Vec<(usize, T)> = per_worker.into_iter().flatten().collect();
    debug_assert_eq!(tagged.len(), n, "every item produced exactly one result");
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(run_ordered(&none, 4, |_, x| *x).is_empty());
        assert_eq!(run_ordered(&[7u32], 4, |_, x| x * 2), vec![14]);
    }

    #[test]
    fn matches_serial_map_for_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = run_ordered(&items, threads, |_, x| x * x + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn every_index_passed_exactly_once() {
        use std::sync::Mutex;
        let items: Vec<u8> = vec![0; 257];
        let seen = Mutex::new(vec![0u32; items.len()]);
        run_ordered(&items, 8, |i, _| {
            seen.lock().unwrap()[i] += 1;
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn index_argument_matches_item_position() {
        let items: Vec<usize> = (0..500).map(|i| i * 3).collect();
        run_ordered(&items, 6, |i, item| assert_eq!(*item, i * 3));
    }

    #[test]
    fn uneven_work_still_reassembles_in_order() {
        // Skewed per-item cost exercises the work-stealing path: early
        // chunks are slow, late chunks fast, so completion order differs
        // wildly from item order.
        let items: Vec<u64> = (0..64).collect();
        let out = run_ordered(&items, 8, |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn thread_count_oversubscription_is_clamped() {
        let items = [1u32, 2, 3];
        assert_eq!(run_ordered(&items, 1000, |_, x| *x), vec![1, 2, 3]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    /// Panic hook suppressing expected test panics (installed once, never
    /// removed — scoped take/set races under parallel tests otherwise).
    fn silence_expected_panics() {
        use std::sync::Once;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let expected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("expected test panic"));
                if !expected {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn isolated_panics_become_substitute_results() {
        silence_expected_panics();
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<i64> = items
            .iter()
            .map(|&x| if x % 17 == 3 { -1 } else { x as i64 })
            .collect();
        for threads in [1, 2, 8] {
            let out = run_ordered_isolated(
                &items,
                threads,
                |_, &x| {
                    if x % 17 == 3 {
                        panic!("expected test panic");
                    }
                    x as i64
                },
                |_, _, _| -1,
            );
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn on_panic_sees_index_item_and_payload() {
        silence_expected_panics();
        let items = [10u64, 20, 30];
        let out = run_ordered_isolated(
            &items,
            2,
            |_, &x| {
                if x == 20 {
                    panic!("expected test panic");
                }
                x
            },
            |i, &item, payload| {
                assert_eq!(i, 1);
                assert_eq!(item, 20);
                assert!(payload
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("expected test panic")));
                999
            },
        );
        assert_eq!(out, vec![10, 999, 30]);
    }

    #[test]
    fn workers_keep_claiming_after_an_isolated_panic() {
        silence_expected_panics();
        // One poisoned item early in the index space must not stop the
        // parallel run from completing every later item.
        let items: Vec<usize> = (0..512).collect();
        let out = run_ordered_isolated(
            &items,
            8,
            |_, &x| {
                if x == 1 {
                    panic!("expected test panic");
                }
                x
            },
            |_, _, _| usize::MAX,
        );
        assert_eq!(out.len(), 512);
        assert_eq!(out[1], usize::MAX);
        assert_eq!(out[511], 511);
    }
}
