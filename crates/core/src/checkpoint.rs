//! Checkpoint/resume, grid sharding, and deterministic manifest merge.
//!
//! The SNAILS grid — (database × variant × workflow × question) — is a
//! long-running evaluation whose cells are pure functions of the run
//! configuration. This module makes the *run itself* survive crashes and
//! partial disk state without ever compromising the bit-identical contract:
//!
//! * **Cell store** ([`CellStore`]) — every completed
//!   [`QueryRecord`](crate::pipeline::QueryRecord) is written atomically
//!   (temp file + rename) under a content-addressed key derived from the
//!   run's [grid fingerprint](grid_fingerprint) and the cell's grid index,
//!   with an FNV-1a checksum over the whole payload and an advisory journal.
//!   A process killed mid-write leaves only ignorable `.tmp` debris; the
//!   directory of completed renames is the source of truth.
//! * **Resume** — on restart, verified records load instead of
//!   re-executing; anything that fails validation (truncated file, flipped
//!   bit, foreign fingerprint) is quarantined and transparently recomputed.
//!   Corruption never aborts a run and is never silently accepted.
//! * **Sharding** ([`Shard`]) — `--shard i/n` deterministically partitions
//!   the grid by `index % n == i`, so independent processes each produce a
//!   shard manifest.
//! * **Merge** ([`merge_manifests`]) — shard manifests fold into one run.
//!   Every merged quantity is a componentwise sum over disjoint cell sets
//!   (grid-global planner metrics are instead validated equal and copied),
//!   so the merge is order-insensitive and associative, and the merged
//!   manifest renders byte-identical to an uninterrupted single-process
//!   run's manifest.
//!
//! Serialization is a canonical line/token format: `f64`s are written as
//! the hex of their IEEE bits (bit-exact, NaN-safe), strings are escaped so
//! tokens never contain whitespace, and map-ordered collections make equal
//! values render to equal bytes.

use crate::pipeline::{BenchmarkConfig, FaultSummary, QueryRecord};
use snails_data::SnailsDatabase;
use snails_eval::LinkingScores;
use snails_llm::faults::FailureKind;
use snails_llm::Workflow;
use snails_naturalness::category::SchemaVariant;
use snails_obs::{
    ClockMode, HistSnapshot, Metric, Report, Section, Snapshot, SpanStat,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Primitives: hashing, escaping, f64 bit-codecs, name interning
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the checksum and key-derivation primitive (stable,
/// dependency-free, and byte-order independent).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escape a string into one whitespace-free token. Reversible via
/// [`unescape`]; the empty string encodes as `\e` so every token is
/// non-empty.
fn escape(s: &str) -> String {
    if s.is_empty() {
        return "\\e".into();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\_"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(tok: &str) -> Result<String, String> {
    if tok == "\\e" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(tok.len());
    let mut chars = tok.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('_') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => return Err(format!("bad escape \\{other:?} in token")),
        }
    }
    Ok(out)
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_hex(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bits {tok:?}"))
}

/// Parse a 16-digit **lowercase** hex checksum trailer. Strictness matters:
/// the trailer sits outside the checksummed body, so a permissive parse
/// (`from_str_radix` accepts uppercase) would let a flipped case bit
/// verify. Canonical writes are lowercase; anything else is corruption.
fn trailer_hex(hex: &str) -> Result<u64, String> {
    if hex.len() != 16
        || !hex.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err("bad checksum".into());
    }
    u64::from_str_radix(hex, 16).map_err(|_| "bad checksum".to_string())
}

/// Intern an arbitrary string as `&'static str` (bounded vocabulary: span
/// names read back from manifests). Leaks each distinct name once.
fn intern(name: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().expect("intern pool poisoned");
    if let Some(&s) = pool.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

fn workflow_name(name: &str) -> Option<&'static str> {
    Workflow::all()
        .into_iter()
        .map(|w| w.display_name())
        .find(|n| *n == name)
}

fn variant_by_name(name: &str) -> Option<SchemaVariant> {
    SchemaVariant::ALL.into_iter().find(|v| v.display_name() == name)
}

fn failure_by_name(name: &str) -> Option<FailureKind> {
    FailureKind::ALL.into_iter().find(|k| k.name() == name)
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// One shard of the grid: cell `i` belongs to shard `index` iff
/// `i % count == index`. Round-robin keeps shards balanced across the
/// database/variant/workflow strata without knowing their sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// The degenerate single-shard partition (a full run).
    pub const FULL: Shard = Shard { index: 0, count: 1 };

    /// Parse `"i/n"` (e.g. `"0/4"`).
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard {s:?} is not i/n"))?;
        let index: usize = i.trim().parse().map_err(|_| format!("bad shard index {i:?}"))?;
        let count: usize = n.trim().parse().map_err(|_| format!("bad shard count {n:?}"))?;
        if count == 0 || index >= count {
            return Err(format!("shard {index}/{count} out of range"));
        }
        Ok(Shard { index, count })
    }

    /// Does grid cell `i` belong to this shard?
    pub fn contains(&self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// Filename-safe label, e.g. `0of4`.
    pub fn label(&self) -> String {
        format!("{}of{}", self.index, self.count)
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::FULL
    }
}

// ---------------------------------------------------------------------------
// Grid fingerprint
// ---------------------------------------------------------------------------

/// Fingerprint of everything a grid cell's value depends on: seed,
/// databases + question ids, variants, workflows, fault profile (name and
/// rate bits), and execution limits. Thread count, shard assignment,
/// telemetry, and checkpoint settings are deliberately excluded — they
/// change *how* the grid runs, never *what* a cell computes — so a resumed
/// or sharded invocation recognizes records written by any compatible run.
pub fn grid_fingerprint(config: &BenchmarkConfig, dbs: &[&SnailsDatabase]) -> u64 {
    let mut s = String::from("snails-grid v1");
    let _ = write!(s, "|seed={}", config.seed);
    for db in dbs {
        let _ = write!(s, "|db={}:", db.spec.name);
        for q in &db.questions {
            let _ = write!(s, "{},", q.id);
        }
    }
    s.push_str("|variants=");
    for v in &config.variants {
        let _ = write!(s, "{},", v.display_name());
    }
    s.push_str("|workflows=");
    for w in &config.workflows {
        let _ = write!(s, "{},", w.display_name());
    }
    let p = &config.fault_profile;
    let _ = write!(
        s,
        "|profile={}:{}:{}:{}:{}:{}",
        p.name,
        f64_hex(p.timeout),
        f64_hex(p.rate_limit),
        f64_hex(p.truncated),
        f64_hex(p.garbage),
        f64_hex(p.panic)
    );
    let l = &config.limits;
    let _ = write!(
        s,
        "|limits={:?}:{:?}:{:?}:{:?}",
        l.max_output_rows, l.max_join_rows, l.max_subquery_depth, l.max_steps
    );
    fnv1a(s.as_bytes())
}

// ---------------------------------------------------------------------------
// QueryRecord canonical line codec
// ---------------------------------------------------------------------------

/// Serialize a record as one canonical whitespace-tokenized line (no
/// leading keyword). Floats are IEEE bit hex, so the round trip is
/// bit-exact even for NaN payloads.
pub fn record_to_line(r: &QueryRecord) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{} {} {} {} {} {} {}",
        escape(r.workflow),
        escape(&r.database),
        escape(r.variant.display_name()),
        r.question_id,
        u8::from(r.parse_ok),
        u8::from(r.set_matched),
        u8::from(r.exec_correct),
    );
    match &r.linking {
        Some(l) => {
            let _ = write!(
                s,
                " L {} {} {} {}",
                f64_hex(l.recall),
                f64_hex(l.precision),
                f64_hex(l.f1),
                l.true_positives
            );
        }
        None => s.push_str(" -"),
    }
    match &r.subset {
        Some((a, b, c)) => {
            let _ = write!(s, " S {} {} {}", f64_hex(*a), f64_hex(*b), f64_hex(*c));
        }
        None => s.push_str(" -"),
    }
    let _ = write!(s, " {}", r.gold_ids.len());
    for id in &r.gold_ids {
        let _ = write!(s, " {}", escape(id));
    }
    let _ = write!(s, " {}", r.pred_ids.len());
    for id in &r.pred_ids {
        let _ = write!(s, " {}", escape(id));
    }
    let m = &r.measures;
    let _ = write!(
        s,
        " {} {} {} {} {}",
        f64_hex(m.prop_regular),
        f64_hex(m.prop_low),
        f64_hex(m.prop_least),
        f64_hex(m.combined),
        f64_hex(m.mean_tcr)
    );
    match r.failure {
        Some(k) => {
            let _ = write!(s, " {}", k.name());
        }
        None => s.push_str(" -"),
    }
    let _ = write!(s, " {}", r.attempts);
    s
}

/// Token-stream reader over one line.
struct Toks<'a> {
    it: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Toks<'a> {
    fn new(line: &'a str) -> Self {
        Toks { it: line.split_ascii_whitespace() }
    }

    fn next(&mut self) -> Result<&'a str, String> {
        self.it.next().ok_or_else(|| "truncated line".to_string())
    }

    fn usize(&mut self) -> Result<usize, String> {
        let t = self.next()?;
        t.parse().map_err(|_| format!("bad usize {t:?}"))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let t = self.next()?;
        t.parse().map_err(|_| format!("bad u64 {t:?}"))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let t = self.next()?;
        t.parse().map_err(|_| format!("bad u32 {t:?}"))
    }

    fn bool01(&mut self) -> Result<bool, String> {
        match self.next()? {
            "0" => Ok(false),
            "1" => Ok(true),
            t => Err(format!("bad bool {t:?}")),
        }
    }

    fn f64(&mut self) -> Result<f64, String> {
        f64_from_hex(self.next()?)
    }

    fn string(&mut self) -> Result<String, String> {
        unescape(self.next()?)
    }

    fn done(&mut self) -> Result<(), String> {
        match self.it.next() {
            None => Ok(()),
            Some(t) => Err(format!("trailing token {t:?}")),
        }
    }
}

/// Parse a [`record_to_line`] line back into a record. `&'static` names
/// (workflow, failure kind) resolve against the live vocabulary — a name
/// this build does not know is a validation failure, not a panic.
pub fn record_from_line(line: &str) -> Result<QueryRecord, String> {
    let mut t = Toks::new(line);
    let workflow = {
        let name = t.string()?;
        workflow_name(&name).ok_or_else(|| format!("unknown workflow {name:?}"))?
    };
    let database = t.string()?;
    let variant = {
        let name = t.string()?;
        variant_by_name(&name).ok_or_else(|| format!("unknown variant {name:?}"))?
    };
    let question_id = t.usize()?;
    let parse_ok = t.bool01()?;
    let set_matched = t.bool01()?;
    let exec_correct = t.bool01()?;
    let linking = match t.next()? {
        "L" => Some(LinkingScores {
            recall: t.f64()?,
            precision: t.f64()?,
            f1: t.f64()?,
            true_positives: t.usize()?,
        }),
        "-" => None,
        other => return Err(format!("bad linking marker {other:?}")),
    };
    let subset = match t.next()? {
        "S" => Some((t.f64()?, t.f64()?, t.f64()?)),
        "-" => None,
        other => return Err(format!("bad subset marker {other:?}")),
    };
    let mut gold_ids = BTreeSet::new();
    for _ in 0..t.usize()? {
        gold_ids.insert(t.string()?);
    }
    let mut pred_ids = BTreeSet::new();
    for _ in 0..t.usize()? {
        pred_ids.insert(t.string()?);
    }
    let measures = crate::measures::QueryMeasures {
        prop_regular: t.f64()?,
        prop_low: t.f64()?,
        prop_least: t.f64()?,
        combined: t.f64()?,
        mean_tcr: t.f64()?,
    };
    let failure = match t.next()? {
        "-" => None,
        name => {
            Some(failure_by_name(name).ok_or_else(|| format!("unknown failure {name:?}"))?)
        }
    };
    let attempts = t.u32()?;
    t.done()?;
    Ok(QueryRecord {
        workflow,
        database,
        variant,
        question_id,
        parse_ok,
        set_matched,
        exec_correct,
        linking,
        subset,
        gold_ids,
        pred_ids,
        measures,
        failure,
        attempts,
    })
}

// ---------------------------------------------------------------------------
// Per-cell telemetry delta
// ---------------------------------------------------------------------------

/// The deterministic telemetry a single cell contributed: nonzero
/// deterministic counters/histograms plus the cell's span rollup. A pure
/// function of the cell, so a stored delta replayed into a resumed run's
/// registry reproduces the exact bytes the cell's execution would have
/// recorded. Assembly- and volatile-class metrics are excluded by
/// construction (they live in other snapshot sections).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellDelta {
    /// `(metric name, value)` for nonzero deterministic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// `(metric name, count, sum, per-bucket counts)` for touched
    /// deterministic histograms.
    pub hists: Vec<(&'static str, u64, u64, Vec<u64>)>,
    /// `(span name, count, total ticks)` rollup.
    pub spans: Vec<(&'static str, u64, u64)>,
}

impl CellDelta {
    /// Extract the delta from a cell-scoped snapshot and span rollup.
    pub fn capture(snap: &Snapshot, rollup: &BTreeMap<&'static str, SpanStat>) -> CellDelta {
        let mut delta = CellDelta::default();
        for (name, v) in &snap.deterministic.counters {
            if *v > 0 {
                delta.counters.push((name, *v));
            }
        }
        for (name, h) in &snap.deterministic.histograms {
            if h.count > 0 {
                delta.hists.push((name, h.count, h.sum, h.counts.clone()));
            }
        }
        for (name, stat) in rollup {
            delta.spans.push((name, stat.count, stat.total));
        }
        delta
    }

    /// Replay the delta into a live registry (counters and histograms; the
    /// caller merges `spans` into its report rollup).
    pub fn replay(&self, registry: &snails_obs::Registry) -> Result<(), String> {
        for (name, v) in &self.counters {
            let m = Metric::by_name(name).ok_or_else(|| format!("unknown metric {name}"))?;
            registry.add(m, *v);
        }
        for (name, count, sum, counts) in &self.hists {
            let m = Metric::by_name(name).ok_or_else(|| format!("unknown metric {name}"))?;
            let bounds = m.spec().buckets;
            if counts.len() != bounds.len() + 1 {
                return Err(format!("{name}: bucket shape mismatch"));
            }
            registry.absorb_hist(
                m,
                &HistSnapshot { bounds, counts: counts.clone(), count: *count, sum: *sum },
            );
        }
        Ok(())
    }

    fn write_lines(&self, out: &mut String) {
        for (name, v) in &self.counters {
            let _ = writeln!(out, "tc {name} {v}");
        }
        for (name, count, sum, counts) in &self.hists {
            let _ = write!(out, "th {name} {count} {sum}");
            for c in counts {
                let _ = write!(out, " {c}");
            }
            out.push('\n');
        }
        for (name, count, total) in &self.spans {
            let _ = writeln!(out, "ts {name} {count} {total}");
        }
    }

    fn line_count(&self) -> usize {
        self.counters.len() + self.hists.len() + self.spans.len()
    }

    fn parse_line(&mut self, line: &str) -> Result<(), String> {
        let mut t = Toks::new(line);
        match t.next()? {
            "tc" => {
                let name = metric_static(t.next()?)?;
                self.counters.push((name, t.u64()?));
            }
            "th" => {
                let name = metric_static(t.next()?)?;
                let count = t.u64()?;
                let sum = t.u64()?;
                let mut counts = Vec::new();
                while let Ok(tok) = t.next() {
                    counts.push(tok.parse().map_err(|_| format!("bad bucket {tok:?}"))?);
                }
                self.hists.push((name, count, sum, counts));
                return Ok(()); // consumed the rest of the line
            }
            "ts" => {
                let name = intern(t.next()?);
                self.spans.push((name, t.u64()?, t.u64()?));
            }
            other => return Err(format!("bad delta line {other:?}")),
        }
        t.done()
    }
}

fn metric_static(name: &str) -> Result<&'static str, String> {
    Metric::by_name(name)
        .map(|m| m.name())
        .ok_or_else(|| format!("unknown metric {name}"))
}

// ---------------------------------------------------------------------------
// Cell store
// ---------------------------------------------------------------------------

/// Checkpoint configuration for a benchmark run.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint directory (created on demand). Safe to share between
    /// shards of the same grid; incompatible grids quarantine each other's
    /// records rather than misusing them.
    pub dir: PathBuf,
    /// Crash-injection hook for the self-test harness: abort the process
    /// (no unwinding, no destructors — a SIGKILL equivalent) immediately
    /// after this many successful checkpoint writes.
    pub kill_after_writes: Option<u64>,
}

impl CheckpointSpec {
    /// A plain checkpoint at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> CheckpointSpec {
        CheckpointSpec { dir: dir.into(), kill_after_writes: None }
    }
}

/// Checkpoint accounting for one run, surfaced on
/// [`BenchmarkRun`](crate::pipeline::BenchmarkRun).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Cells restored from verified records.
    pub hits: u64,
    /// Cells with no usable record (fresh, or stored without the telemetry
    /// this run needs).
    pub misses: u64,
    /// Records quarantined after failing validation (recomputed).
    pub corrupt: u64,
    /// Records written this run.
    pub written: u64,
}

/// Outcome of loading one cell from the store.
///
/// `Hit` dwarfs the unit variants because it carries the whole restored
/// record inline; loads happen one at a time in the serial restore pass,
/// so the size difference never multiplies across a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CellLoad {
    /// Verified record (with the executed SQL for cache warming and the
    /// telemetry delta, when stored).
    Hit {
        /// The restored record.
        record: QueryRecord,
        /// Denaturalized SQL the cell executed, if it reached execution.
        exec_sql: Option<String>,
        /// Stored deterministic telemetry delta.
        delta: Option<CellDelta>,
    },
    /// No record (or a valid record lacking telemetry a telemetry run
    /// needs) — compute the cell.
    Miss,
    /// Validation failed; the file was quarantined — compute the cell.
    Corrupt,
}

/// The content-addressed on-disk cell store.
pub struct CellStore {
    dir: PathBuf,
    fingerprint: u64,
    journal: Mutex<std::fs::File>,
    writes: AtomicU64,
    kill_after: Option<u64>,
}

const CELL_HEADER: &str = "snails-ckpt v1";

impl CellStore {
    /// Open (creating as needed) the store at `spec.dir` for the grid with
    /// the given fingerprint.
    pub fn open(spec: &CheckpointSpec, fingerprint: u64) -> std::io::Result<CellStore> {
        std::fs::create_dir_all(spec.dir.join("cells"))?;
        let journal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(spec.dir.join("journal.log"))?;
        Ok(CellStore {
            dir: spec.dir.clone(),
            fingerprint,
            journal: Mutex::new(journal),
            writes: AtomicU64::new(0),
            kill_after: spec.kill_after_writes,
        })
    }

    /// Content-addressed key for one cell: fingerprint ⊕ grid index.
    fn cell_key(&self, index: usize) -> u64 {
        fnv1a(format!("fp:{:016x}|cell:{index}", self.fingerprint).as_bytes())
    }

    fn cell_path(&self, index: usize) -> PathBuf {
        self.dir
            .join("cells")
            .join(format!("c{index:05}-{:016x}.rec", self.cell_key(index)))
    }

    /// Records written so far by this process.
    pub fn written(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Move a failed-validation file into `quarantine/` (best effort — a
    /// quarantine failure must not abort the run; the cell recomputes
    /// either way).
    fn quarantine(&self, path: &Path) {
        let qdir = self.dir.join("quarantine");
        let _ = std::fs::create_dir_all(&qdir);
        if let Some(name) = path.file_name() {
            let _ = std::fs::rename(path, qdir.join(name));
        }
    }

    /// Load and verify cell `index`. `need_telemetry` demands a stored
    /// telemetry delta (a record without one is a [`CellLoad::Miss`] for a
    /// telemetry run — valid, just insufficient — and is left in place).
    pub fn load(&self, index: usize, need_telemetry: bool) -> CellLoad {
        let path = self.cell_path(index);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CellLoad::Miss,
            Err(_) => {
                self.quarantine(&path);
                return CellLoad::Corrupt;
            }
        };
        match self.parse_cell(index, &bytes, need_telemetry) {
            Ok(Some(hit)) => hit,
            Ok(None) => CellLoad::Miss,
            Err(_) => {
                self.quarantine(&path);
                CellLoad::Corrupt
            }
        }
    }

    /// Validate + parse one cell payload. `Ok(None)` = valid but lacking
    /// required telemetry; `Err` = quarantine.
    fn parse_cell(
        &self,
        index: usize,
        bytes: &[u8],
        need_telemetry: bool,
    ) -> Result<Option<CellLoad>, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "not utf-8".to_string())?;
        // Checksum covers everything before the final `sum` line.
        let body_end = text
            .rfind("\nsum ")
            .ok_or_else(|| "missing checksum".to_string())?
            + 1;
        let body = &text[..body_end];
        // The trailer must be exactly `sum <16 hex>\n` — any stray or
        // missing byte (even a lost trailing newline) fails verification.
        let hex = text[body_end..]
            .strip_prefix("sum ")
            .and_then(|r| r.strip_suffix('\n'))
            .ok_or_else(|| "missing checksum".to_string())?;
        let stored = trailer_hex(hex)?;
        if stored != fnv1a(body.as_bytes()) {
            return Err("checksum mismatch".into());
        }

        let mut lines = body.lines();
        if lines.next() != Some(CELL_HEADER) {
            return Err("bad header".into());
        }
        let fp_line = lines.next().ok_or("missing fp")?;
        let mut t = Toks::new(fp_line);
        if t.next()? != "fp" {
            return Err("missing fp".into());
        }
        let fp = u64::from_str_radix(t.next()?, 16).map_err(|_| "bad fp".to_string())?;
        if fp != self.fingerprint {
            return Err("foreign fingerprint".into());
        }
        let cell_line = lines.next().ok_or("missing cell")?;
        let mut t = Toks::new(cell_line);
        if t.next()? != "cell" {
            return Err("missing cell".into());
        }
        if t.usize()? != index {
            return Err("cell index mismatch".into());
        }
        let rec_line = lines.next().ok_or("missing record")?;
        let record = record_from_line(
            rec_line.strip_prefix("rec ").ok_or("missing record")?,
        )?;
        let sql_line = lines.next().ok_or("missing sql")?;
        let exec_sql = match sql_line.strip_prefix("sql ").ok_or("missing sql")? {
            "-" => None,
            tok => Some(unescape(tok)?),
        };
        let delta = match lines.next() {
            None => None,
            Some(tel_line) => {
                let mut t = Toks::new(tel_line);
                if t.next()? != "tel" {
                    return Err("bad telemetry marker".into());
                }
                let n = t.usize()?;
                t.done()?;
                let mut delta = CellDelta::default();
                for _ in 0..n {
                    delta.parse_line(lines.next().ok_or("truncated telemetry")?)?;
                }
                if lines.next().is_some() {
                    return Err("trailing lines".into());
                }
                Some(delta)
            }
        };
        if need_telemetry && delta.is_none() {
            return Ok(None);
        }
        Ok(Some(CellLoad::Hit { record, exec_sql, delta }))
    }

    /// Atomically persist cell `index`: serialize, write to a temp file,
    /// rename into place, journal the completion. When the crash-injection
    /// hook is armed, aborts the process (no unwinding) once the write
    /// quota is reached — after the rename, so the store is left exactly as
    /// a SIGKILL at that instant would leave it.
    pub fn store(
        &self,
        index: usize,
        record: &QueryRecord,
        exec_sql: Option<&str>,
        delta: Option<&CellDelta>,
    ) -> std::io::Result<()> {
        let mut body = String::new();
        let _ = writeln!(body, "{CELL_HEADER}");
        let _ = writeln!(body, "fp {:016x}", self.fingerprint);
        let _ = writeln!(body, "cell {index}");
        let _ = writeln!(body, "rec {}", record_to_line(record));
        match exec_sql {
            Some(sql) => {
                let _ = writeln!(body, "sql {}", escape(sql));
            }
            None => {
                let _ = writeln!(body, "sql -");
            }
        }
        if let Some(delta) = delta {
            let _ = writeln!(body, "tel {}", delta.line_count());
            delta.write_lines(&mut body);
        }
        let payload = format!("{body}sum {:016x}\n", fnv1a(body.as_bytes()));

        let path = self.cell_path(index);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, payload.as_bytes())?;
        std::fs::rename(&tmp, &path)?;
        {
            let mut journal = self.journal.lock().expect("journal poisoned");
            let _ = writeln!(journal, "c{index} {:016x}", self.cell_key(index));
        }
        let written = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.kill_after.is_some_and(|k| written >= k) {
            // The injected crash: terminate with no unwinding and no
            // cleanup, exactly like an external SIGKILL mid-grid.
            std::process::abort();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Manifests and the deterministic merge
// ---------------------------------------------------------------------------

/// One shard's (or a full run's) results in canonical serialized form.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Grid fingerprint the records belong to.
    pub fingerprint: u64,
    /// Run seed (also folded into the fingerprint; kept for readability).
    pub seed: u64,
    /// Fault profile name.
    pub profile: String,
    /// Which shard this is.
    pub shard: Shard,
    /// Total grid cells (across all shards).
    pub total_cells: usize,
    /// `(grid index, record)`, ascending.
    pub records: Vec<(usize, QueryRecord)>,
    /// In-shard fault accounting.
    pub faults: FaultSummary,
    /// Deterministic telemetry: the deterministic metrics section plus the
    /// span rollup. Assembly and volatile sections are process-local
    /// diagnostics and are deliberately not persisted — manifests from a
    /// fresh, a resumed, and a merged run must render identical bytes.
    pub telemetry: Option<(Section, BTreeMap<&'static str, SpanStat>)>,
}

const MANIFEST_HEADER: &str = "snails-manifest v1";

impl std::fmt::Display for ShardManifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The trailing checksum covers the whole body, so the rendering
        // cannot stream — build the canonical string, then emit it.
        f.write_str(&self.render())
    }
}

impl ShardManifest {
    /// Canonical serialization; equal manifests render equal bytes.
    /// (`to_string` via [`std::fmt::Display`] returns the same bytes.)
    fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MANIFEST_HEADER}");
        let _ = writeln!(out, "fp {:016x}", self.fingerprint);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "profile {}", escape(&self.profile));
        let _ = writeln!(out, "shard {} {}", self.shard.index, self.shard.count);
        let _ = writeln!(out, "cells {}", self.total_cells);
        for (idx, rec) in &self.records {
            let _ = writeln!(out, "R {idx} {}", record_to_line(rec));
        }
        let f = &self.faults;
        let _ = write!(
            out,
            "F {} {} {} {} {}",
            f.cells,
            f.attempts,
            f.retries,
            f.breaker_trips,
            f.failures.len()
        );
        for (name, count) in &f.failures {
            let _ = write!(out, " {name} {count}");
        }
        out.push('\n');
        if let Some((section, spans)) = &self.telemetry {
            for (name, v) in &section.counters {
                let _ = writeln!(out, "TC {name} {v}");
            }
            for (name, v) in &section.gauges {
                let _ = writeln!(out, "TG {name} {v}");
            }
            for (name, h) in &section.histograms {
                let _ = write!(out, "TH {name} {} {}", h.count, h.sum);
                for c in &h.counts {
                    let _ = write!(out, " {c}");
                }
                out.push('\n');
            }
            for (name, s) in spans {
                let _ = writeln!(out, "TS {name} {} {}", s.count, s.total);
            }
        }
        let trailer = fnv1a(out.as_bytes());
        let _ = writeln!(out, "end {trailer:016x}");
        out
    }

    /// Parse a serialized manifest, verifying its trailing checksum.
    pub fn parse(text: &str) -> Result<ShardManifest, String> {
        let body_end = text
            .rfind("\nend ")
            .ok_or_else(|| "missing end checksum".to_string())?
            + 1;
        let body = &text[..body_end];
        let hex = text[body_end..]
            .strip_prefix("end ")
            .and_then(|r| r.strip_suffix('\n'))
            .ok_or_else(|| "missing end checksum".to_string())?;
        let stored = trailer_hex(hex)?;
        if stored != fnv1a(body.as_bytes()) {
            return Err("manifest checksum mismatch".into());
        }

        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err("bad manifest header".into());
        }
        let mut need = |tag: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing {tag}"))?;
            line.strip_prefix(tag)
                .and_then(|rest| rest.strip_prefix(' ').or(Some(rest).filter(|r| r.is_empty())))
                .map(str::to_owned)
                .ok_or_else(|| format!("missing {tag}"))
        };
        let fingerprint = u64::from_str_radix(&need("fp")?, 16)
            .map_err(|_| "bad fp".to_string())?;
        let seed: u64 = need("seed")?.parse().map_err(|_| "bad seed".to_string())?;
        let profile = unescape(&need("profile")?)?;
        let shard = {
            let line = need("shard")?;
            let mut t = Toks::new(&line);
            let shard = Shard { index: t.usize()?, count: t.usize()? };
            t.done()?;
            if shard.count == 0 || shard.index >= shard.count {
                return Err("shard out of range".into());
            }
            shard
        };
        let total_cells: usize =
            need("cells")?.parse().map_err(|_| "bad cells".to_string())?;

        let mut records = Vec::new();
        let mut faults = None;
        let mut section = Section::default();
        let mut spans: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
        let mut saw_telemetry = false;
        for line in lines {
            let (tag, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad manifest line {line:?}"))?;
            match tag {
                "R" => {
                    let mut t = Toks::new(rest);
                    let idx = t.usize()?;
                    let rec_start = rest
                        .find(' ')
                        .ok_or_else(|| "truncated record line".to_string())?;
                    records.push((idx, record_from_line(&rest[rec_start + 1..])?));
                }
                "F" => {
                    let mut t = Toks::new(rest);
                    let mut f = FaultSummary {
                        cells: t.usize()?,
                        attempts: t.u64()?,
                        retries: t.u64()?,
                        breaker_trips: t.u64()?,
                        ..FaultSummary::default()
                    };
                    for _ in 0..t.usize()? {
                        let name = failure_by_name(t.next()?)
                            .ok_or_else(|| "unknown failure kind".to_string())?
                            .name();
                        f.failures.insert(name, t.u64()?);
                    }
                    t.done()?;
                    faults = Some(f);
                }
                "TC" => {
                    saw_telemetry = true;
                    let mut t = Toks::new(rest);
                    section.counters.insert(metric_static(t.next()?)?, t.u64()?);
                    t.done()?;
                }
                "TG" => {
                    saw_telemetry = true;
                    let mut t = Toks::new(rest);
                    let name = metric_static(t.next()?)?;
                    let v: i64 = t
                        .next()?
                        .parse()
                        .map_err(|_| "bad gauge".to_string())?;
                    section.gauges.insert(name, v);
                    t.done()?;
                }
                "TH" => {
                    saw_telemetry = true;
                    let mut t = Toks::new(rest);
                    let name = t.next()?;
                    let m = Metric::by_name(name)
                        .ok_or_else(|| format!("unknown metric {name}"))?;
                    let count = t.u64()?;
                    let sum = t.u64()?;
                    let mut counts = Vec::new();
                    while let Ok(tok) = t.next() {
                        counts
                            .push(tok.parse().map_err(|_| format!("bad bucket {tok:?}"))?);
                    }
                    let bounds = m.spec().buckets;
                    if counts.len() != bounds.len() + 1 {
                        return Err(format!("{name}: bucket shape mismatch"));
                    }
                    section.histograms.insert(
                        m.name(),
                        HistSnapshot { bounds, counts, count, sum },
                    );
                }
                "TS" => {
                    saw_telemetry = true;
                    let mut t = Toks::new(rest);
                    let name = intern(t.next()?);
                    spans.insert(name, SpanStat { count: t.u64()?, total: t.u64()? });
                    t.done()?;
                }
                other => return Err(format!("bad manifest tag {other:?}")),
            }
        }
        let faults = faults.ok_or_else(|| "missing fault summary".to_string())?;
        Ok(ShardManifest {
            fingerprint,
            seed,
            profile,
            shard,
            total_cells,
            records,
            faults,
            telemetry: saw_telemetry.then_some((section, spans)),
        })
    }

    /// Rebuild a telemetry [`Report`] from the persisted deterministic
    /// section (assembly and volatile come back empty — they were never
    /// persisted).
    pub fn report(&self) -> Option<Report> {
        self.telemetry.as_ref().map(|(section, spans)| Report {
            metrics: Snapshot { deterministic: section.clone(), ..Snapshot::default() },
            spans: spans.clone(),
            clock: ClockMode::Sim,
        })
    }
}

/// Grid-global metrics: recorded by the serial planning pre-pass, which
/// always plans the *full* grid (breaker state must evolve in grid order
/// regardless of which cells a shard executes). Every shard therefore
/// carries identical full-grid values; the merge validates that and copies
/// one, instead of summing.
fn is_grid_global(name: &str) -> bool {
    name.starts_with("llm.")
}

/// Fold shard manifests into the single-run manifest.
///
/// Validation: all shards must share the fingerprint/seed/profile/cell
/// count and shard count, and their cell sets must tile `0..total_cells`
/// exactly (no gaps, no overlaps). Every merged quantity is either a
/// componentwise sum over disjoint cell sets or a validated-equal copy of a
/// grid-global value, so the merge is order-insensitive and associative by
/// construction; the result renders byte-identical to an uninterrupted
/// single-process run's manifest.
pub fn merge_manifests(mut shards: Vec<ShardManifest>) -> Result<ShardManifest, String> {
    if shards.is_empty() {
        return Err("nothing to merge".into());
    }
    // Order-insensitivity by normalization: sort by shard index up front.
    shards.sort_by_key(|s| s.shard.index);
    let first = &shards[0];
    let (fingerprint, seed, profile, total_cells) =
        (first.fingerprint, first.seed, first.profile.clone(), first.total_cells);
    let with_telemetry = first.telemetry.is_some();
    let mut seen_shards = BTreeSet::new();
    for s in &shards {
        if s.fingerprint != fingerprint {
            return Err(format!(
                "fingerprint mismatch: {:016x} vs {:016x} — manifests are from \
                 different grids",
                s.fingerprint, fingerprint
            ));
        }
        if s.seed != seed || s.profile != profile || s.total_cells != total_cells {
            return Err("manifest metadata mismatch".into());
        }
        if s.telemetry.is_some() != with_telemetry {
            return Err("cannot merge telemetry and non-telemetry manifests".into());
        }
        if !seen_shards.insert((s.shard.index, s.shard.count)) {
            return Err(format!("duplicate shard {}", s.shard.label()));
        }
    }

    // Records must tile the grid exactly.
    let mut records: Vec<(usize, QueryRecord)> =
        shards.iter().flat_map(|s| s.records.iter().cloned()).collect();
    records.sort_by_key(|(i, _)| *i);
    if records.len() != total_cells {
        return Err(format!(
            "merged shards cover {} of {} cells — missing shards?",
            records.len(),
            total_cells
        ));
    }
    for (expect, (idx, _)) in records.iter().enumerate() {
        match idx.cmp(&expect) {
            std::cmp::Ordering::Equal => {}
            std::cmp::Ordering::Less => return Err(format!("cell {idx} covered twice")),
            std::cmp::Ordering::Greater => return Err(format!("cell {expect} missing")),
        }
    }

    let mut faults = FaultSummary::default();
    for s in &shards {
        faults.merge(&s.faults);
    }

    let telemetry = if with_telemetry {
        let mut section = Section::default();
        let mut spans: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
        for s in &shards {
            let (sect, sp) = s.telemetry.as_ref().expect("validated above");
            for (name, v) in &sect.counters {
                if is_grid_global(name) {
                    let prev = section.counters.insert(name, *v);
                    if prev.is_some_and(|p| p != *v) {
                        return Err(format!(
                            "grid-global counter {name} differs between shards"
                        ));
                    }
                } else {
                    *section.counters.entry(name).or_insert(0) += v;
                }
            }
            for (name, v) in &sect.gauges {
                let slot = section.gauges.entry(name).or_insert(i64::MIN);
                *slot = (*slot).max(*v);
            }
            for (name, h) in &sect.histograms {
                match section.histograms.get_mut(name) {
                    Some(mine) => {
                        for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                            *a += b;
                        }
                        mine.count += h.count;
                        mine.sum = mine.sum.saturating_add(h.sum);
                    }
                    None => {
                        section.histograms.insert(name, h.clone());
                    }
                }
            }
            for (name, stat) in sp {
                let slot = spans.entry(name).or_default();
                slot.count += stat.count;
                slot.total += stat.total;
            }
        }
        Some((section, spans))
    } else {
        None
    };

    Ok(ShardManifest {
        fingerprint,
        seed,
        profile,
        shard: Shard::FULL,
        total_cells,
        records,
        faults,
        telemetry,
    })
}

/// Build the manifest for a finished (possibly sharded, possibly resumed)
/// benchmark invocation. Because a resumed run restores verified records
/// and replays their telemetry deltas, the manifest of a resumed run is
/// byte-identical to the manifest of the uninterrupted run — the
/// recovery-correctness invariant the self-test harness asserts.
pub fn manifest_from_run(
    run: &crate::pipeline::BenchmarkRun,
    config: &BenchmarkConfig,
) -> ShardManifest {
    let shard = config.shard;
    ShardManifest {
        fingerprint: run.fingerprint,
        seed: config.seed,
        profile: config.fault_profile.name.to_owned(),
        shard,
        total_cells: run.grid_cells,
        records: (0..run.grid_cells)
            .filter(|i| shard.contains(*i))
            .zip(run.records.iter().cloned())
            .collect(),
        faults: run.faults.clone(),
        telemetry: run
            .telemetry
            .as_ref()
            .map(|r| (r.metrics.deterministic.clone(), r.spans.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::QueryMeasures;

    fn sample_record() -> QueryRecord {
        QueryRecord {
            workflow: "gpt-4o",
            database: "CWO".into(),
            variant: SchemaVariant::Least,
            question_id: 17,
            parse_ok: true,
            set_matched: true,
            exec_correct: false,
            linking: Some(LinkingScores {
                recall: 0.75,
                precision: f64::NAN,
                f1: 0.6,
                true_positives: 3,
            }),
            subset: Some((1.0, 0.5, f64::INFINITY)),
            gold_ids: ["A B", "", "C\\D", "-"].iter().map(|s| s.to_string()).collect(),
            pred_ids: ["E\nF"].iter().map(|s| s.to_string()).collect(),
            measures: QueryMeasures {
                prop_regular: 0.1,
                prop_low: -0.0,
                prop_least: f64::MIN_POSITIVE,
                combined: 0.9,
                mean_tcr: 0.33,
            },
            failure: Some(FailureKind::Truncated),
            attempts: 4,
        }
    }

    #[test]
    fn record_line_round_trips_bit_exactly() {
        let rec = sample_record();
        let line = record_to_line(&rec);
        assert!(!line.contains('\n'));
        let back = record_from_line(&line).unwrap();
        // PartialEq on QueryRecord uses f64 ==, which NaN fails; compare
        // through the canonical line instead (bit-exact by construction).
        assert_eq!(record_to_line(&back), line);
        assert_eq!(back.gold_ids, rec.gold_ids);
        assert_eq!(back.pred_ids, rec.pred_ids);
        assert_eq!(back.workflow, rec.workflow);
        assert!(back.linking.unwrap().precision.is_nan());
    }

    #[test]
    fn record_parse_rejects_garbage() {
        assert!(record_from_line("").is_err());
        assert!(record_from_line("nope").is_err());
        let rec = sample_record();
        let line = record_to_line(&rec);
        // Truncations at any token boundary fail loudly, never panic.
        let tokens: Vec<&str> = line.split(' ').collect();
        for cut in 0..tokens.len() {
            let partial = tokens[..cut].join(" ");
            assert!(record_from_line(&partial).is_err(), "cut at {cut} parsed");
        }
        // Unknown vocabulary is a validation failure.
        let alien = line.replacen("gpt-4o", "gpt-99", 1);
        assert!(record_from_line(&alien).is_err());
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", " ", "a b", "\\", "\\_", "a\nb\tc\r", "plain", "\\e"] {
            let tok = escape(s);
            assert!(!tok.is_empty());
            assert!(!tok.contains(char::is_whitespace), "{tok:?}");
            assert_eq!(unescape(&tok).unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn shard_parse_and_membership() {
        assert_eq!(Shard::parse("0/4").unwrap(), Shard { index: 0, count: 4 });
        assert_eq!(Shard::parse("3/4").unwrap(), Shard { index: 3, count: 4 });
        for bad in ["", "4", "4/4", "5/4", "a/4", "1/0", "1/b"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?}");
        }
        // Every index belongs to exactly one shard.
        for i in 0..100 {
            let owners: Vec<usize> = (0..4)
                .filter(|&s| Shard { index: s, count: 4 }.contains(i))
                .collect();
            assert_eq!(owners.len(), 1);
        }
    }

    #[test]
    fn manifest_round_trips_and_checksums() {
        let manifest = ShardManifest {
            fingerprint: 0xdead_beef_1234_5678,
            seed: 2024,
            profile: "flaky".into(),
            shard: Shard { index: 1, count: 2 },
            total_cells: 4,
            records: vec![(1, sample_record()), (3, sample_record())],
            faults: FaultSummary {
                cells: 2,
                attempts: 5,
                retries: 3,
                breaker_trips: 1,
                failures: [("truncated", 2u64)].into_iter().collect(),
            },
            telemetry: None,
        };
        let text = manifest.to_string();
        let back = ShardManifest::parse(&text).unwrap();
        assert_eq!(back.to_string(), text);
        assert_eq!(back.faults, manifest.faults);
        assert_eq!(back.records.len(), 2);
        // A flipped byte anywhere in the body fails the checksum.
        let corrupted = text.replacen("flaky", "flakx", 1);
        assert!(ShardManifest::parse(&corrupted).is_err());
    }

    #[test]
    fn merge_rejects_incompatible_and_incomplete_shards() {
        let base = ShardManifest {
            fingerprint: 1,
            seed: 7,
            profile: "none".into(),
            shard: Shard { index: 0, count: 2 },
            total_cells: 2,
            records: vec![(0, sample_record())],
            faults: FaultSummary { cells: 1, ..FaultSummary::default() },
            telemetry: None,
        };
        let other = ShardManifest {
            shard: Shard { index: 1, count: 2 },
            records: vec![(1, sample_record())],
            ..base.clone()
        };
        // Complete tiling merges.
        let merged = merge_manifests(vec![other.clone(), base.clone()]).unwrap();
        assert_eq!(merged.records.len(), 2);
        assert_eq!(merged.shard, Shard::FULL);
        assert_eq!(merged.faults.cells, 2);
        // Missing a shard: count mismatch.
        assert!(merge_manifests(vec![base.clone()]).is_err());
        // Duplicate shard: overlap.
        assert!(merge_manifests(vec![base.clone(), base.clone()]).is_err());
        // Foreign fingerprint.
        let alien = ShardManifest { fingerprint: 2, ..other };
        assert!(merge_manifests(vec![base, alien]).is_err());
    }
}
