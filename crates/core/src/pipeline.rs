//! The benchmark pipeline (Figures 6 and 7).

use crate::measures::{query_measures, QueryMeasures};
use snails_data::SnailsDatabase;
use snails_eval::{audit_semantics, match_result_sets, query_linking, LinkingScores};

use snails_llm::{run_workflow, SchemaView, Workflow};
use snails_naturalness::category::SchemaVariant;
use snails_sql::{extract_identifiers, parse};
use std::collections::BTreeSet;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Global seed (the paper's runs correspond to one fixed seed).
    pub seed: u64,
    /// Databases to run (names must exist in the collection passed in).
    pub databases: Vec<String>,
    /// Schema variants to evaluate.
    pub variants: Vec<SchemaVariant>,
    /// Workflows (model rows) to evaluate.
    pub workflows: Vec<Workflow>,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            seed: 2024,
            databases: snails_data::DATABASE_NAMES.iter().map(|s| s.to_string()).collect(),
            variants: SchemaVariant::ALL.to_vec(),
            workflows: Workflow::all(),
        }
    }
}

/// One (workflow × database × variant × question) outcome.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Workflow display name.
    pub workflow: &'static str,
    /// Database name.
    pub database: String,
    /// Schema variant.
    pub variant: SchemaVariant,
    /// Question id within the database.
    pub question_id: usize,
    /// Whether the raw model output parsed (137 generations in the paper did
    /// not and are excluded from linking analysis).
    pub parse_ok: bool,
    /// Passed result set-superset matching (pre-audit).
    pub set_matched: bool,
    /// Final execution correctness (set match + semantic audit).
    pub exec_correct: bool,
    /// Query-level linking scores (absent when the output was unparseable).
    pub linking: Option<LinkingScores>,
    /// Schema-subsetting metrics (recall, precision, f1) for chained
    /// workflows.
    pub subset: Option<(f64, f64, f64)>,
    /// Gold identifier set (uppercased native names).
    pub gold_ids: BTreeSet<String>,
    /// Predicted identifier set after denaturalization (uppercased).
    pub pred_ids: BTreeSet<String>,
    /// Per-query naturalness measures at this variant.
    pub measures: QueryMeasures,
}

/// A full benchmark run.
#[derive(Debug, Default)]
pub struct BenchmarkRun {
    /// All per-query records.
    pub records: Vec<QueryRecord>,
}

impl BenchmarkRun {
    /// Records filtered by workflow name.
    pub fn by_workflow<'a>(&'a self, workflow: &'a str) -> impl Iterator<Item = &'a QueryRecord> {
        self.records.iter().filter(move |r| r.workflow == workflow)
    }

    /// Mean execution accuracy over a record subset.
    pub fn exec_accuracy<'a>(records: impl IntoIterator<Item = &'a QueryRecord>) -> f64 {
        let mut n = 0usize;
        let mut correct = 0usize;
        for r in records {
            n += 1;
            correct += usize::from(r.exec_correct);
        }
        if n == 0 {
            0.0
        } else {
            correct as f64 / n as f64
        }
    }

    /// Mean query recall over a record subset (parse failures excluded, as
    /// in §5.2).
    pub fn mean_recall<'a>(records: impl IntoIterator<Item = &'a QueryRecord>) -> f64 {
        let scores: Vec<f64> = records
            .into_iter()
            .filter_map(|r| r.linking.map(|l| l.recall))
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

/// Per-question gold context, computed once per database.
struct GoldContext {
    ids: snails_sql::QueryIdentifiers,
    result: Option<snails_engine::ResultSet>,
}

/// Evaluate one workflow on one question at one variant.
pub fn evaluate_question(
    workflow: Workflow,
    db: &SnailsDatabase,
    view: &SchemaView,
    pair: &snails_data::GoldPair,
    seed: u64,
) -> QueryRecord {
    let denat = snails_llm::middleware::denaturalization_map(db, view.variant);
    let gold = gold_context(db, pair);
    evaluate_with_context(workflow, db, view, pair, seed, &denat, &gold)
}

fn gold_context(db: &SnailsDatabase, pair: &snails_data::GoldPair) -> GoldContext {
    let stmt = parse(&pair.sql).expect("gold parses");
    let ids = extract_identifiers(&stmt);
    let result = snails_engine::run_sql(&db.db, &pair.sql).ok();
    GoldContext { ids, result }
}

fn evaluate_with_context(
    workflow: Workflow,
    db: &SnailsDatabase,
    view: &SchemaView,
    pair: &snails_data::GoldPair,
    seed: u64,
    denat: &snails_sql::IdentifierMap,
    gold: &GoldContext,
) -> QueryRecord {
    let variant = view.variant;
    let result = run_workflow(workflow, db, view, pair, seed);

    let mut record = QueryRecord {
        workflow: result.workflow,
        database: db.spec.name.to_owned(),
        variant,
        question_id: pair.id,
        parse_ok: false,
        set_matched: false,
        exec_correct: false,
        linking: None,
        subset: result
            .subset
            .as_ref()
            .map(|s| (s.recall(), s.precision(), s.f1())),
        gold_ids: gold.ids.all(),
        pred_ids: BTreeSet::new(),
        measures: query_measures(db, variant, &gold.ids),
    };

    // Denaturalize the raw output back to the Native namespace.
    let Ok(native_sql) = snails_sql::denaturalize_query(&result.inference.raw_sql, denat)
    else {
        return record; // unparseable output: excluded from linking analysis
    };
    record.parse_ok = true;

    // Schema linking (on the denaturalized query, appendix E.4).
    let pred_stmt = parse(&native_sql).expect("denaturalization preserves parseability");
    let pred_qi = extract_identifiers(&pred_stmt);
    record.pred_ids = pred_qi.all();
    record.linking = Some(query_linking(&gold.ids, &pred_qi));

    // Execution accuracy: run both queries, superset-match, audit.
    let Some(gold_rs) = &gold.result else { return record };
    let Ok(pred_rs) = snails_engine::run_sql(&db.db, &native_sql) else {
        return record;
    };
    if match_result_sets(gold_rs, &pred_rs).is_match() {
        record.set_matched = true;
        record.exec_correct = audit_semantics(&pair.sql, &native_sql);
    }
    record
}

/// Run the benchmark over a prebuilt collection.
pub fn run_benchmark_on(
    collection: &[SnailsDatabase],
    config: &BenchmarkConfig,
) -> BenchmarkRun {
    let mut run = BenchmarkRun::default();
    for db in collection {
        if !config
            .databases
            .iter()
            .any(|n| n.eq_ignore_ascii_case(db.spec.name))
        {
            continue;
        }
        let gold_contexts: Vec<GoldContext> =
            db.questions.iter().map(|p| gold_context(db, p)).collect();
        for &variant in &config.variants {
            let view = SchemaView::new(db, variant);
            let denat = snails_llm::middleware::denaturalization_map(db, variant);
            for &workflow in &config.workflows {
                for (pair, gold) in db.questions.iter().zip(&gold_contexts) {
                    run.records.push(evaluate_with_context(
                        workflow, db, &view, pair, config.seed, &denat, gold,
                    ));
                }
            }
        }
    }
    run
}

/// Build the databases named in the config and run the benchmark.
pub fn run_benchmark(config: &BenchmarkConfig) -> BenchmarkRun {
    let collection: Vec<SnailsDatabase> = config
        .databases
        .iter()
        .map(|n| snails_data::build_database(n))
        .collect();
    run_benchmark_on(&collection, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_llm::ModelKind;

    fn small_config() -> BenchmarkConfig {
        BenchmarkConfig {
            seed: 7,
            databases: vec!["CWO".into()],
            variants: vec![SchemaVariant::Native, SchemaVariant::Least],
            workflows: vec![
                Workflow::ZeroShot(ModelKind::Gpt4o),
                Workflow::ZeroShot(ModelKind::PhindCodeLlama),
            ],
        }
    }

    #[test]
    fn pipeline_produces_records() {
        let run = run_benchmark(&small_config());
        // 40 questions × 2 variants × 2 workflows.
        assert_eq!(run.records.len(), 160);
        // Every record has valid bounded measures.
        for r in &run.records {
            if let Some(l) = r.linking {
                assert!((0.0..=1.0).contains(&l.recall));
                assert!((0.0..=1.0).contains(&l.precision));
            }
            assert!(!r.gold_ids.is_empty());
        }
    }

    #[test]
    fn strong_model_beats_weak_model() {
        let run = run_benchmark(&small_config());
        let strong = BenchmarkRun::exec_accuracy(run.by_workflow("gpt-4o"));
        let weak =
            BenchmarkRun::exec_accuracy(run.by_workflow("Phind-CodeLlama-34B-v2"));
        assert!(strong > weak, "gpt-4o {strong} !> phind {weak}");
    }

    #[test]
    fn least_variant_hurts_both_metrics() {
        let run = run_benchmark(&small_config());
        let native: Vec<&QueryRecord> = run
            .records
            .iter()
            .filter(|r| r.variant == SchemaVariant::Native)
            .collect();
        let least: Vec<&QueryRecord> = run
            .records
            .iter()
            .filter(|r| r.variant == SchemaVariant::Least)
            .collect();
        assert!(
            BenchmarkRun::exec_accuracy(native.iter().copied())
                > BenchmarkRun::exec_accuracy(least.iter().copied())
        );
        assert!(
            BenchmarkRun::mean_recall(native.iter().copied())
                > BenchmarkRun::mean_recall(least.iter().copied())
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run_benchmark(&small_config());
        let b = run_benchmark(&small_config());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.exec_correct, y.exec_correct);
            assert_eq!(x.pred_ids, y.pred_ids);
        }
    }

    #[test]
    fn exec_correct_implies_set_matched() {
        let run = run_benchmark(&small_config());
        for r in &run.records {
            if r.exec_correct {
                assert!(r.set_matched);
                assert!(r.parse_ok);
            }
        }
    }

    #[test]
    fn some_audits_reject_set_matches() {
        // The paper's E.3 finding: a small share of set-matched predictions
        // fail manual review. With the weak model over both variants some
        // rejections should appear; tolerate zero only if no set matches.
        let run = run_benchmark(&small_config());
        let set_matched = run.records.iter().filter(|r| r.set_matched).count();
        let rejected = run
            .records
            .iter()
            .filter(|r| r.set_matched && !r.exec_correct)
            .count();
        assert!(set_matched > 0);
        assert!(
            rejected * 2 <= set_matched,
            "audit rejected {rejected} of {set_matched} — too aggressive"
        );
    }
}
