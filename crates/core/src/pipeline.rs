//! The benchmark pipeline (Figures 6 and 7).

use crate::checkpoint::{
    self, CellDelta, CellLoad, CellStore, CheckpointSpec, CheckpointStats, Shard,
};
use crate::measures::{query_measures, QueryMeasures};
use crate::scheduler;
use snails_data::SnailsDatabase;
use snails_engine::{ExecLimits, ExecOptions, PlanCache};
use snails_eval::{audit_semantics, match_result_sets, query_linking, LinkingScores};

use snails_llm::faults::{self, FailureKind, FaultProfile};
use snails_llm::generate::mix_seed;
use snails_llm::resilience::{CellExecution, CellPlan, Planner, ResilienceConfig};
use snails_llm::{run_cell, SchemaView, Workflow};
use snails_naturalness::category::SchemaVariant;
use snails_obs::{ClockMode, Metric, ObsCtx, Report};
use snails_sql::{extract_identifiers, parse};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Global seed (the paper's runs correspond to one fixed seed).
    pub seed: u64,
    /// Databases to run (names must exist in the collection passed in).
    pub databases: Vec<String>,
    /// Schema variants to evaluate.
    pub variants: Vec<SchemaVariant>,
    /// Workflows (model rows) to evaluate.
    pub workflows: Vec<Workflow>,
    /// Worker threads for the evaluation grid. `None` uses the machine's
    /// available parallelism; `Some(1)` runs the grid on the caller thread.
    /// Every setting produces identical records in identical order — each
    /// grid cell is a pure function of the config seed (see
    /// [`crate::scheduler`]).
    pub threads: Option<usize>,
    /// Fault injection for the simulated inference API
    /// ([`FaultProfile::NONE`] by default — records are then byte-identical
    /// to a build without the fault layer).
    pub fault_profile: FaultProfile,
    /// Execution budgets applied to *predicted* queries (gold queries run
    /// unguarded — they are trusted input). Defaults to
    /// [`ExecLimits::guarded`], generous enough that no sane prediction on
    /// the SNAILS databases ever hits a budget.
    pub limits: ExecLimits,
    /// Collect a telemetry [`Report`] for the run (metrics + simulated-clock
    /// span rollup, surfaced as [`BenchmarkRun::telemetry`]). The report's
    /// deterministic section is byte-identical at any thread count; `false`
    /// (the default) records nothing and costs nothing on the hot paths.
    pub telemetry: bool,
    /// The slice of the grid this invocation executes
    /// ([`Shard::FULL`] by default). Fault planning always covers the full
    /// grid (breaker state must evolve in grid order), so every shard's
    /// records are bit-identical to the corresponding slice of a full run;
    /// [`crate::checkpoint::merge_manifests`] folds shard manifests back
    /// into the full run.
    pub shard: Shard,
    /// Checkpoint store for crash recovery: completed cells are persisted
    /// as they finish and verified records are restored instead of
    /// re-executed on the next run. `None` (the default) neither reads nor
    /// writes checkpoints.
    pub checkpoint: Option<CheckpointSpec>,
    /// Bound on the shared plan cache (FIFO eviction). `None` (the
    /// default) keeps the cache unbounded, as before. Excluded from the
    /// grid fingerprint: cache contents only affect speed, never record
    /// content or order, so checkpoints remain valid across capacities.
    pub cache_capacity: Option<usize>,
    /// Run predicted queries through the cost-based planner
    /// (DESIGN.md §10). On by default; results are byte-identical either
    /// way, so this too stays out of the grid fingerprint.
    pub optimize: bool,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            seed: 2024,
            databases: snails_data::DATABASE_NAMES.iter().map(|s| s.to_string()).collect(),
            variants: SchemaVariant::ALL.to_vec(),
            workflows: Workflow::all(),
            threads: None,
            fault_profile: FaultProfile::NONE,
            limits: ExecLimits::guarded(),
            telemetry: false,
            shard: Shard::FULL,
            checkpoint: None,
            cache_capacity: None,
            optimize: true,
        }
    }
}

/// One (workflow × database × variant × question) outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Workflow display name.
    pub workflow: &'static str,
    /// Database name.
    pub database: String,
    /// Schema variant.
    pub variant: SchemaVariant,
    /// Question id within the database.
    pub question_id: usize,
    /// Whether the raw model output parsed (137 generations in the paper did
    /// not and are excluded from linking analysis).
    pub parse_ok: bool,
    /// Passed result set-superset matching (pre-audit).
    pub set_matched: bool,
    /// Final execution correctness (set match + semantic audit).
    pub exec_correct: bool,
    /// Query-level linking scores (absent when the output was unparseable).
    pub linking: Option<LinkingScores>,
    /// Schema-subsetting metrics (recall, precision, f1) for chained
    /// workflows.
    pub subset: Option<(f64, f64, f64)>,
    /// Gold identifier set (uppercased native names).
    pub gold_ids: BTreeSet<String>,
    /// Predicted identifier set after denaturalization (uppercased).
    pub pred_ids: BTreeSet<String>,
    /// Per-query naturalness measures at this variant.
    pub measures: QueryMeasures,
    /// Terminal failure for this cell, if any: exhausted retries, an open
    /// circuit breaker, an isolated panic, a corrupted completion, or a
    /// predicted query that hit an engine budget. `None` for clean cells —
    /// including clean cells that needed retries (see `attempts`).
    pub failure: Option<FailureKind>,
    /// Simulated API attempts spent on this cell (1 when the fault layer is
    /// inert, 0 when the circuit breaker skipped the call).
    pub attempts: u32,
}

/// Aggregate fault/retry/breaker accounting for one benchmark run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Grid cells evaluated.
    pub cells: usize,
    /// Total simulated API attempts across all cells.
    pub attempts: u64,
    /// Total retries (attempts beyond each cell's first).
    pub retries: u64,
    /// Circuit-breaker trips across all models.
    pub breaker_trips: u64,
    /// Failure counts keyed by [`FailureKind::name`].
    pub failures: BTreeMap<&'static str, u64>,
}

impl FaultSummary {
    /// Total cells that ended in a failure record.
    pub fn total_failures(&self) -> u64 {
        self.failures.values().sum()
    }

    /// One JSON object (no external dependencies — keys are static and
    /// values numeric, so no escaping is needed).
    pub fn to_json(&self) -> String {
        let mut kinds = String::new();
        for (i, (k, v)) in self.failures.iter().enumerate() {
            if i > 0 {
                kinds.push(',');
            }
            kinds.push_str(&format!("\"{k}\":{v}"));
        }
        format!(
            "{{\"cells\":{},\"attempts\":{},\"retries\":{},\"breaker_trips\":{},\
             \"failed_cells\":{},\"failures\":{{{kinds}}}}}",
            self.cells,
            self.attempts,
            self.retries,
            self.breaker_trips,
            self.total_failures(),
        )
    }

    /// Fold another summary into this one (componentwise sums). Shard
    /// summaries cover disjoint cell sets, so merging them in any order —
    /// or any grouping — reproduces the single-run summary exactly.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.cells += other.cells;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.breaker_trips += other.breaker_trips;
        for (name, count) in &other.failures {
            *self.failures.entry(name).or_insert(0) += count;
        }
    }
}

/// A full benchmark run.
#[derive(Debug, Default)]
pub struct BenchmarkRun {
    /// Per-query records — the full grid in grid order, or (under
    /// [`BenchmarkConfig::shard`]) this shard's cells in grid order.
    pub records: Vec<QueryRecord>,
    /// Fault/retry/breaker accounting (all zeros when the fault layer is
    /// inert and no predicted query hit a budget). Covers only this shard's
    /// cells, so shard summaries sum to the full-run summary.
    pub faults: FaultSummary,
    /// Telemetry report, present iff [`BenchmarkConfig::telemetry`] was set.
    pub telemetry: Option<Report>,
    /// Checkpoint accounting, present iff [`BenchmarkConfig::checkpoint`]
    /// was set.
    pub checkpoint: Option<CheckpointStats>,
    /// The run's [grid fingerprint](crate::checkpoint::grid_fingerprint).
    pub fingerprint: u64,
    /// Total grid cells (across all shards, whether or not this invocation
    /// executed them).
    pub grid_cells: usize,
}

impl BenchmarkRun {
    /// Records filtered by workflow name.
    pub fn by_workflow<'a>(&'a self, workflow: &'a str) -> impl Iterator<Item = &'a QueryRecord> {
        self.records.iter().filter(move |r| r.workflow == workflow)
    }

    /// Mean execution accuracy over a record subset.
    ///
    /// **Empty-subset semantics:** an empty iterator yields `0.0`, not NaN —
    /// a deliberate convention so figure-generation code can difference
    /// accuracies across arbitrary slices without NaN poisoning. Callers
    /// that must distinguish "no records" from "all incorrect" should check
    /// emptiness themselves before calling.
    pub fn exec_accuracy<'a>(records: impl IntoIterator<Item = &'a QueryRecord>) -> f64 {
        let mut n = 0usize;
        let mut correct = 0usize;
        for r in records {
            n += 1;
            correct += usize::from(r.exec_correct);
        }
        if n == 0 {
            0.0
        } else {
            correct as f64 / n as f64
        }
    }

    /// Mean query recall over a record subset (parse failures excluded, as
    /// in §5.2).
    ///
    /// **Empty-subset semantics:** `0.0` when the subset is empty *or*
    /// contains only parse failures (no linking scores to average) — same
    /// no-NaN convention as [`BenchmarkRun::exec_accuracy`]; check
    /// emptiness first if the distinction matters.
    pub fn mean_recall<'a>(records: impl IntoIterator<Item = &'a QueryRecord>) -> f64 {
        let scores: Vec<f64> = records
            .into_iter()
            .filter_map(|r| r.linking.map(|l| l.recall))
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

/// Per-question gold context, computed once per database.
struct GoldContext {
    ids: snails_sql::QueryIdentifiers,
    result: Option<snails_engine::ResultSet>,
}

/// Reusable per-(database, variant) evaluation state.
///
/// Builds the denaturalization map once; repeated [`EvalContext::evaluate`]
/// calls across workflows and questions share it instead of rebuilding it
/// per call (it walks the full crosswalk).
pub struct EvalContext<'a> {
    db: &'a SnailsDatabase,
    view: &'a SchemaView,
    denat: snails_sql::IdentifierMap,
    plans: PlanCache,
}

impl<'a> EvalContext<'a> {
    /// Precompute the shared state for `db` at the view's variant.
    pub fn new(db: &'a SnailsDatabase, view: &'a SchemaView) -> Self {
        let denat = snails_llm::middleware::denaturalization_map(db, view.variant);
        EvalContext { db, view, denat, plans: PlanCache::new() }
    }

    /// Evaluate one workflow on one question.
    pub fn evaluate(
        &self,
        workflow: Workflow,
        pair: &snails_data::GoldPair,
        seed: u64,
    ) -> QueryRecord {
        evaluate_cell_with(
            workflow,
            self.db,
            self.view,
            &self.denat,
            pair,
            seed,
            &self.plans,
            ExecOptions { limits: ExecLimits::UNLIMITED, ..Default::default() },
        )
        .0
    }
}

/// Evaluate one clean (no fault plan) grid cell against caller-owned shared
/// state: a prebuilt denaturalization map, a shared [`PlanCache`], and the
/// caller's [`ExecOptions`]. Returns the record plus the denaturalized SQL
/// when the cell reached the execution stage.
///
/// This is the single-cell entry the serve layer uses: each tenant owns its
/// plan cache and execution budgets, and the per-question gold context is
/// recomputed per call (gold queries are trusted fixtures, cheap relative to
/// inference). Batch callers should prefer [`run_benchmark_on`], which
/// amortizes the gold context across the grid and layers in fault planning.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_cell_with(
    workflow: Workflow,
    db: &SnailsDatabase,
    view: &SchemaView,
    denat: &snails_sql::IdentifierMap,
    pair: &snails_data::GoldPair,
    seed: u64,
    plans: &PlanCache,
    opts: ExecOptions,
) -> (QueryRecord, Option<String>) {
    let gold = gold_context(db, pair);
    let qm = query_measures(db, view.variant, &gold.ids);
    evaluate_with_context(
        workflow,
        db,
        view,
        pair,
        seed,
        denat,
        &gold,
        &qm,
        &CellPlan::clean(0),
        opts,
        plans,
    )
}

/// Evaluate one workflow on one question at one variant.
///
/// Convenience wrapper building a fresh [`EvalContext`]; batch callers
/// should build the context once and call [`EvalContext::evaluate`].
pub fn evaluate_question(
    workflow: Workflow,
    db: &SnailsDatabase,
    view: &SchemaView,
    pair: &snails_data::GoldPair,
    seed: u64,
) -> QueryRecord {
    EvalContext::new(db, view).evaluate(workflow, pair, seed)
}

fn gold_context(db: &SnailsDatabase, pair: &snails_data::GoldPair) -> GoldContext {
    let stmt = parse(&pair.sql).expect("gold parses");
    let ids = extract_identifiers(&stmt);
    let result = snails_engine::run_sql(&db.db, &pair.sql).ok();
    GoldContext { ids, result }
}

/// Build the record for a cell that never produced a usable inference:
/// exhausted retries, an open breaker, or an isolated panic. Shaped like a
/// parse failure (the paper's treatment of unusable generations) plus the
/// failure classification and attempt count.
#[allow(clippy::too_many_arguments)]
fn failed_record(
    workflow: Workflow,
    db: &SnailsDatabase,
    variant: SchemaVariant,
    pair: &snails_data::GoldPair,
    gold: &GoldContext,
    qm: &QueryMeasures,
    failure: FailureKind,
    attempts: u32,
) -> QueryRecord {
    QueryRecord {
        workflow: workflow.display_name(),
        database: db.spec.name.to_owned(),
        variant,
        question_id: pair.id,
        parse_ok: false,
        set_matched: false,
        exec_correct: false,
        linking: None,
        subset: None,
        gold_ids: gold.ids.all(),
        pred_ids: BTreeSet::new(),
        measures: *qm,
        failure: Some(failure),
        attempts,
    }
}

/// Evaluate one grid cell. Returns the record plus the denaturalized SQL
/// when the cell reached the execution stage — the checkpoint layer
/// persists that SQL so a resumed run can re-warm the plan cache without
/// re-running the cell.
#[allow(clippy::too_many_arguments)]
fn evaluate_with_context(
    workflow: Workflow,
    db: &SnailsDatabase,
    view: &SchemaView,
    pair: &snails_data::GoldPair,
    seed: u64,
    denat: &snails_sql::IdentifierMap,
    gold: &GoldContext,
    qm: &QueryMeasures,
    plan: &CellPlan,
    opts: ExecOptions,
    plans: &PlanCache,
) -> (QueryRecord, Option<String>) {
    let variant = view.variant;
    // Span guards are inert unless the scheduler installed an observability
    // scope (telemetry runs); under the simulated clock their tick structure
    // per task is exact, so the rollup joins the deterministic report.
    let _cell = snails_obs::span("cell");
    // The resilience middleware: retries/breaker/corruption were planned
    // serially; `run_cell` executes the plan (and genuinely panics for
    // planned-panic cells — the scheduler's isolation handles those).
    let (result, failure) = {
        let _s = snails_obs::span("cell.infer");
        match run_cell(plan, workflow, db, view, pair, seed) {
            CellExecution::Completed { result, failure } => (result, failure),
            CellExecution::Failed(kind) => {
                return (
                    failed_record(workflow, db, variant, pair, gold, qm, kind, plan.attempts),
                    None,
                )
            }
        }
    };

    let mut record = QueryRecord {
        workflow: result.workflow,
        database: db.spec.name.to_owned(),
        variant,
        question_id: pair.id,
        parse_ok: false,
        set_matched: false,
        exec_correct: false,
        linking: None,
        subset: result
            .subset
            .as_ref()
            .map(|s| (s.recall(), s.precision(), s.f1())),
        gold_ids: gold.ids.all(),
        pred_ids: BTreeSet::new(),
        measures: *qm,
        failure,
        attempts: plan.attempts,
    };

    // Denaturalize the raw output back to the Native namespace.
    let denat_result = {
        let _s = snails_obs::span("cell.denaturalize");
        snails_sql::denaturalize_query(&result.inference.raw_sql, denat)
    };
    let Ok(native_sql) = denat_result else {
        return (record, None); // unparseable output: excluded from linking analysis
    };
    record.parse_ok = true;

    // Schema linking (on the denaturalized query, appendix E.4).
    {
        let _s = snails_obs::span("cell.link");
        let pred_stmt = parse(&native_sql).expect("denaturalization preserves parseability");
        let pred_qi = extract_identifiers(&pred_stmt);
        record.pred_ids = pred_qi.all();
        record.linking = Some(query_linking(&gold.ids, &pred_qi));
    }

    // Execution accuracy: run both queries, superset-match, audit. The
    // predicted query is untrusted model output and runs under the
    // configured budgets; gold ran unguarded in `gold_context`. Predicted
    // queries flow through the shared plan cache: distinct workflows and
    // questions frequently converge on the same denaturalized SQL, so the
    // statement is lowered once and re-executed from the compiled plan.
    let Some(gold_rs) = &gold.result else { return (record, None) };
    let _exec = snails_obs::span("cell.exec");
    let pred_rs = match plans.run(&db.db, &native_sql, opts) {
        Ok(rs) => rs,
        Err(e) => {
            if e.is_resource_exhausted() {
                record.failure = Some(FailureKind::ResourceExhausted);
            }
            return (record, Some(native_sql));
        }
    };
    if match_result_sets(gold_rs, &pred_rs).is_match() {
        record.set_matched = true;
        record.exec_correct = audit_semantics(&pair.sql, &native_sql);
    }
    (record, Some(native_sql))
}

/// Per-(database, variant) shared state for a benchmark run: the schema
/// view, the denaturalization map, and the per-question naturalness
/// measures — each computed once and shared read-only by every worker.
struct VariantContext {
    view: SchemaView,
    denat: snails_sql::IdentifierMap,
    measures: Vec<QueryMeasures>,
}

/// One cell of the (database × variant × workflow × question) grid.
struct WorkItem<'a> {
    db: &'a SnailsDatabase,
    vctx: &'a VariantContext,
    workflow: Workflow,
    pair: &'a snails_data::GoldPair,
    gold: &'a GoldContext,
    qm: &'a QueryMeasures,
    /// Retry/breaker/fault plan for this cell, computed by the serial
    /// planning pre-pass (see [`run_benchmark_on`]).
    plan: CellPlan,
    /// Circuit-breaker trips the planning of *this* cell caused. Attributing
    /// trips to cells (instead of reading the planner's global total) makes
    /// [`FaultSummary`] componentwise-summable over disjoint shards.
    trips: u64,
}

/// A pending cell of a (possibly sharded, possibly resumed) run: the work
/// item plus its grid-global index.
struct ExecSlot<'a, 'b> {
    global: usize,
    item: &'b WorkItem<'a>,
}

/// A cell restored from the checkpoint store instead of executed.
struct Restored {
    record: QueryRecord,
    delta: Option<CellDelta>,
}

/// Run the benchmark over a prebuilt collection.
///
/// The grid is flattened into independent work items and executed on
/// `config.threads` workers (default: available parallelism). Each item is
/// a pure function of `(config.seed, item)`, and the scheduler reassembles
/// results in grid order, so the records are identical — in content and
/// order — to the serial nested loop at any thread count.
pub fn run_benchmark_on(
    collection: &[SnailsDatabase],
    config: &BenchmarkConfig,
) -> BenchmarkRun {
    let dbs: Vec<&SnailsDatabase> = collection
        .iter()
        .filter(|db| {
            config
                .databases
                .iter()
                .any(|n| n.eq_ignore_ascii_case(db.spec.name))
        })
        .collect();

    // Shared per-(db, question) and per-(db, variant) contexts, computed
    // once up front instead of per grid cell.
    let golds: Vec<Vec<GoldContext>> = dbs
        .iter()
        .map(|db| db.questions.iter().map(|p| gold_context(db, p)).collect())
        .collect();
    let variants: Vec<Vec<VariantContext>> = dbs
        .iter()
        .zip(&golds)
        .map(|(db, golds)| {
            config
                .variants
                .iter()
                .map(|&variant| VariantContext {
                    view: SchemaView::new(db, variant),
                    denat: snails_llm::middleware::denaturalization_map(db, variant),
                    measures: golds
                        .iter()
                        .map(|g| query_measures(db, variant, &g.ids))
                        .collect(),
                })
                .collect()
        })
        .collect();

    // Serial planning pre-pass: the circuit breaker and simulated clock are
    // *shared mutable* state (a breaker tripped by cell N must skip cell
    // N+1), which cannot be threaded through a parallel map without
    // order-dependence. So fault draws, retries, and breaker transitions
    // are resolved here, in grid order, while building the item list — it
    // is pure RNG arithmetic, orders of magnitude cheaper than inference —
    // and each resulting `CellPlan` is a pure input to the parallel phase.
    // With an inert profile every plan is `CellPlan::clean` and records are
    // byte-identical to a build without the fault layer.
    let fault_layer = !config.fault_profile.is_inert();
    let mut planner = fault_layer.then(|| {
        Planner::new(ResilienceConfig {
            profile: config.fault_profile,
            ..Default::default()
        })
    });
    if fault_layer {
        // Injected panics are expected control flow under fault profiles;
        // keep them out of stderr (real panics still print).
        faults::silence_injected_panics();
    }

    // Telemetry context for the run. The simulated clock keeps the span
    // rollup deterministic; gold-query precompute above is deliberately
    // outside the scope (the report describes planning + predicted-query
    // work, not trusted fixtures).
    let obs = config.telemetry.then(|| Arc::new(ObsCtx::new(ClockMode::Sim)));
    // The serial planning pre-pass records the llm.* counters — install the
    // scope on this thread for the item-building loop.
    let _plan_scope = obs.as_ref().map(snails_obs::scope);

    let mut items: Vec<WorkItem<'_>> = Vec::new();
    for (di, &db) in dbs.iter().enumerate() {
        for vctx in &variants[di] {
            for &workflow in &config.workflows {
                for (qi, pair) in db.questions.iter().enumerate() {
                    let (plan, trips) = match planner.as_mut() {
                        Some(planner) => {
                            let cell_seed = mix_seed(
                                &[
                                    workflow.display_name(),
                                    db.spec.name,
                                    vctx.view.variant.display_name(),
                                    "fault-cell",
                                ],
                                &[config.seed, pair.id as u64],
                            );
                            let before = planner.breaker_trips();
                            let plan =
                                planner.plan_cell(workflow.display_name(), cell_seed);
                            (plan, planner.breaker_trips() - before)
                        }
                        None => {
                            // Keep the resilience counters reconcilable
                            // with `FaultSummary` on every profile: a clean
                            // cell is one planned cell with one attempt.
                            snails_obs::add(Metric::LlmCellsPlanned, 1);
                            snails_obs::add(Metric::LlmResilienceAttempts, 1);
                            (CellPlan::clean(0), 0)
                        }
                    };
                    items.push(WorkItem {
                        db,
                        vctx,
                        workflow,
                        pair,
                        gold: &golds[di][qi],
                        qm: &vctx.measures[qi],
                        plan,
                        trips,
                    });
                }
            }
        }
    }

    let threads = config.threads.unwrap_or_else(scheduler::available_threads);
    let fingerprint = checkpoint::grid_fingerprint(config, &dbs);
    let shard = config.shard;
    // One plan cache for the whole grid: cache keys include the database
    // name, and plan execution is a pure function of (db, sql, opts), so
    // sharing it across workers cannot perturb record content or order.
    let plans = match config.cache_capacity {
        Some(c) => PlanCache::with_capacity(c),
        None => PlanCache::new(),
    };

    // Restore pass: load any verified checkpoint records for this shard's
    // cells before executing what remains. Corruption quarantines the file
    // and recomputes the cell — it never aborts and is never silently
    // trusted.
    let store = config.checkpoint.as_ref().map(|spec| {
        CellStore::open(spec, fingerprint)
            .unwrap_or_else(|e| panic!("cannot open checkpoint dir {:?}: {e}", spec.dir))
    });
    let mut stats = CheckpointStats::default();
    let mut restored: Vec<Option<Restored>> = Vec::with_capacity(items.len());
    for (global, item) in items.iter().enumerate() {
        let slot = match (&store, shard.contains(global)) {
            (Some(store), true) => match store.load(global, config.telemetry) {
                CellLoad::Hit { record, exec_sql, delta } => {
                    stats.hits += 1;
                    snails_obs::add(Metric::CkptHit, 1);
                    // Re-warm the plan cache with the SQL this cell executed,
                    // in grid order — a resumed run then reaches the
                    // remaining cells with the same cache contents the
                    // uninterrupted run would have had at *some* interleaving
                    // (cache contents only affect speed, never results).
                    if let Some(sql) = &exec_sql {
                        plans.warm(&item.db.db, sql);
                    }
                    Some(Restored { record, delta })
                }
                CellLoad::Miss => {
                    stats.misses += 1;
                    snails_obs::add(Metric::CkptMiss, 1);
                    None
                }
                CellLoad::Corrupt => {
                    stats.corrupt += 1;
                    snails_obs::add(Metric::CkptCorrupt, 1);
                    None
                }
            },
            _ => None,
        };
        restored.push(slot);
    }

    // The cells this invocation still owes: in-shard and not restored.
    let pending: Vec<ExecSlot<'_, '_>> = items
        .iter()
        .enumerate()
        .filter(|(i, _)| shard.contains(*i) && restored[*i].is_none())
        .map(|(global, item)| ExecSlot { global, item })
        .collect();

    // Per-cell telemetry capture is only needed when a record must carry its
    // deterministic telemetry delta into the store (checkpoint + telemetry).
    let capture = store.is_some() && obs.is_some();
    let run_cell_slot = |slot: &ExecSlot<'_, '_>| {
        let it = slot.item;
        evaluate_with_context(
            it.workflow,
            it.db,
            &it.vctx.view,
            it.pair,
            config.seed,
            &it.vctx.denat,
            it.gold,
            it.qm,
            &it.plan,
            ExecOptions {
                limits: config.limits,
                optimize: config.optimize,
                ..Default::default()
            },
            &plans,
        )
    };
    let computed = scheduler::run_ordered_observed_keyed(
        &pending,
        threads,
        obs.as_ref(),
        // Task ids are grid-global, so the span streams of sharded and
        // resumed runs interleave exactly like the full run's.
        |_, slot| slot.global as u64,
        |_, slot| {
            if !capture {
                let (record, exec_sql) = run_cell_slot(slot);
                if let Some(store) = &store {
                    let _ = store.store(slot.global, &record, exec_sql.as_deref(), None);
                    snails_obs::add(Metric::CkptWritten, 1);
                }
                return record;
            }
            // Capture this cell's deterministic telemetry in a nested
            // temporary context, persist it alongside the record, then fold
            // it into the run context — so a future resume can replay the
            // cell's exact telemetry without re-executing it.
            let temp = Arc::new(ObsCtx::new(ClockMode::Sim));
            let outcome = {
                let _scope = snails_obs::scope(&temp);
                snails_obs::task(slot.global as u64, || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_cell_slot(slot)
                    }))
                })
            };
            let snap = temp.registry.snapshot();
            let rollup = temp.tracer.rollup();
            let delta = CellDelta::capture(&snap, &rollup);
            let ctx = obs.as_ref().expect("capture implies telemetry");
            ctx.registry.absorb(&snap);
            ctx.tracer.absorb(temp.tracer.drain_sorted());
            match outcome {
                Ok((record, exec_sql)) => {
                    let store = store.as_ref().expect("capture implies checkpointing");
                    let _ = store.store(
                        slot.global,
                        &record,
                        exec_sql.as_deref(),
                        Some(&delta),
                    );
                    ctx.registry.add(Metric::CkptWritten, 1);
                    record
                }
                // A panicking cell (an injected fault) is never
                // checkpointed — its partial telemetry was folded in above
                // (matching the uncheckpointed run, where the unwound task
                // still flushes), and the panic continues to the scheduler's
                // isolation layer, which substitutes the failure record.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        },
        |_, slot, payload| {
            // Only planned (injected) panics are absorbed into failure
            // records; a genuine bug still aborts the run loudly.
            if !faults::is_injected_panic(payload.as_ref()) {
                std::panic::resume_unwind(payload);
            }
            let it = slot.item;
            failed_record(
                it.workflow,
                it.db,
                it.vctx.view.variant,
                it.pair,
                it.gold,
                it.qm,
                FailureKind::Panic,
                it.plan.attempts,
            )
        },
    );
    stats.written = store.as_ref().map_or(0, |s| s.written());

    // Reassemble this shard's records in grid order, replaying restored
    // cells' stored telemetry so the final report is indistinguishable from
    // having executed them.
    let mut restored_spans: BTreeMap<&'static str, snails_obs::SpanStat> = BTreeMap::new();
    let mut computed_iter = computed.into_iter();
    let mut records = Vec::with_capacity(pending.len() + stats.hits as usize);
    for (global, slot) in restored.into_iter().enumerate() {
        if !shard.contains(global) {
            continue;
        }
        match slot {
            Some(r) => {
                if let Some(ctx) = obs.as_ref() {
                    if let Some(delta) = &r.delta {
                        delta
                            .replay(&ctx.registry)
                            .expect("verified delta replays cleanly");
                        for (name, count, total) in &delta.spans {
                            let stat = restored_spans.entry(name).or_default();
                            stat.count += count;
                            stat.total += total;
                        }
                    }
                    // The scheduler counts executed items; a restored cell
                    // is an item this run *accounts for* without executing.
                    ctx.registry.add(Metric::CoreSchedulerItems, 1);
                }
                records.push(r.record);
            }
            None => records.push(
                computed_iter.next().expect("one computed record per pending cell"),
            ),
        }
    }
    debug_assert!(computed_iter.next().is_none());

    let mut faults = FaultSummary::default();
    for (i, it) in items.iter().enumerate() {
        if !shard.contains(i) {
            continue;
        }
        faults.cells += 1;
        faults.attempts += u64::from(it.plan.attempts);
        faults.retries += u64::from(it.plan.retries());
        faults.breaker_trips += it.trips;
    }
    for r in &records {
        if let Some(kind) = r.failure {
            *faults.failures.entry(kind.name()).or_insert(0) += 1;
        }
    }

    let telemetry = obs.map(|ctx| {
        let mut report = ctx.report();
        for (name, stat) in restored_spans {
            let slot = report.spans.entry(name).or_default();
            slot.count += stat.count;
            slot.total += stat.total;
        }
        report
    });
    BenchmarkRun {
        records,
        faults,
        telemetry,
        checkpoint: store.is_some().then_some(stats),
        fingerprint,
        grid_cells: items.len(),
    }
}

/// Build the databases named in the config and run the benchmark.
pub fn run_benchmark(config: &BenchmarkConfig) -> BenchmarkRun {
    let collection: Vec<SnailsDatabase> = config
        .databases
        .iter()
        .map(|n| snails_data::build_database(n))
        .collect();
    run_benchmark_on(&collection, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_llm::ModelKind;

    fn small_config() -> BenchmarkConfig {
        BenchmarkConfig {
            seed: 7,
            databases: vec!["CWO".into()],
            variants: vec![SchemaVariant::Native, SchemaVariant::Least],
            workflows: vec![
                Workflow::ZeroShot(ModelKind::Gpt4o),
                Workflow::ZeroShot(ModelKind::PhindCodeLlama),
            ],
            threads: None,
            ..BenchmarkConfig::default()
        }
    }

    #[test]
    fn pipeline_produces_records() {
        let run = run_benchmark(&small_config());
        // 40 questions × 2 variants × 2 workflows.
        assert_eq!(run.records.len(), 160);
        // Every record has valid bounded measures.
        for r in &run.records {
            if let Some(l) = r.linking {
                assert!((0.0..=1.0).contains(&l.recall));
                assert!((0.0..=1.0).contains(&l.precision));
            }
            assert!(!r.gold_ids.is_empty());
        }
    }

    #[test]
    fn strong_model_beats_weak_model() {
        let run = run_benchmark(&small_config());
        let strong = BenchmarkRun::exec_accuracy(run.by_workflow("gpt-4o"));
        let weak =
            BenchmarkRun::exec_accuracy(run.by_workflow("Phind-CodeLlama-34B-v2"));
        assert!(strong > weak, "gpt-4o {strong} !> phind {weak}");
    }

    #[test]
    fn least_variant_hurts_both_metrics() {
        let run = run_benchmark(&small_config());
        let native: Vec<&QueryRecord> = run
            .records
            .iter()
            .filter(|r| r.variant == SchemaVariant::Native)
            .collect();
        let least: Vec<&QueryRecord> = run
            .records
            .iter()
            .filter(|r| r.variant == SchemaVariant::Least)
            .collect();
        assert!(
            BenchmarkRun::exec_accuracy(native.iter().copied())
                > BenchmarkRun::exec_accuracy(least.iter().copied())
        );
        assert!(
            BenchmarkRun::mean_recall(native.iter().copied())
                > BenchmarkRun::mean_recall(least.iter().copied())
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run_benchmark(&small_config());
        let b = run_benchmark(&small_config());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.exec_correct, y.exec_correct);
            assert_eq!(x.pred_ids, y.pred_ids);
        }
    }

    #[test]
    fn exec_correct_implies_set_matched() {
        let run = run_benchmark(&small_config());
        for r in &run.records {
            if r.exec_correct {
                assert!(r.set_matched);
                assert!(r.parse_ok);
            }
        }
    }

    #[test]
    fn empty_subsets_yield_zero_not_nan() {
        // The documented empty-subset convention: 0.0, never NaN.
        assert_eq!(BenchmarkRun::exec_accuracy(std::iter::empty()), 0.0);
        assert_eq!(BenchmarkRun::mean_recall(std::iter::empty()), 0.0);
        // mean_recall also returns 0.0 when every record is a parse failure
        // (no linking scores to average).
        let run = run_benchmark(&small_config());
        let mut r = run.records[0].clone();
        r.parse_ok = false;
        r.linking = None;
        let only_failures = [r];
        assert_eq!(BenchmarkRun::mean_recall(only_failures.iter()), 0.0);
        // A run over an unknown database filter produces the empty grid and
        // the metrics stay finite.
        let empty = run_benchmark_on(
            &[],
            &BenchmarkConfig { databases: vec![], ..BenchmarkConfig::default() },
        );
        assert!(empty.records.is_empty());
        assert_eq!(BenchmarkRun::exec_accuracy(&empty.records), 0.0);
        assert_eq!(BenchmarkRun::mean_recall(&empty.records), 0.0);
    }

    #[test]
    fn inert_profile_yields_clean_accounting() {
        let run = run_benchmark(&small_config());
        assert_eq!(run.faults.cells, run.records.len());
        assert_eq!(run.faults.retries, 0);
        assert_eq!(run.faults.breaker_trips, 0);
        assert_eq!(run.faults.total_failures(), 0);
        for r in &run.records {
            assert_eq!(r.failure, None);
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn flaky_profile_is_deterministic_across_thread_counts() {
        let config = |threads| BenchmarkConfig {
            fault_profile: snails_llm::FaultProfile::FLAKY,
            threads: Some(threads),
            ..small_config()
        };
        let baseline = run_benchmark(&config(1));
        for threads in [2, 8] {
            let run = run_benchmark(&config(threads));
            assert_eq!(run.records, baseline.records, "threads = {threads}");
            assert_eq!(run.faults, baseline.faults, "threads = {threads}");
        }
    }

    #[test]
    fn fault_summary_json_is_well_formed() {
        let mut summary = FaultSummary { cells: 3, attempts: 7, retries: 4, ..Default::default() };
        summary.failures.insert("timeout", 2);
        summary.failures.insert("panic", 1);
        assert_eq!(
            summary.to_json(),
            "{\"cells\":3,\"attempts\":7,\"retries\":4,\"breaker_trips\":0,\
             \"failed_cells\":3,\"failures\":{\"panic\":1,\"timeout\":2}}"
        );
    }

    #[test]
    fn some_audits_reject_set_matches() {
        // The paper's E.3 finding: a small share of set-matched predictions
        // fail manual review. With the weak model over both variants some
        // rejections should appear; tolerate zero only if no set matches.
        let run = run_benchmark(&small_config());
        let set_matched = run.records.iter().filter(|r| r.set_matched).count();
        let rejected = run
            .records
            .iter()
            .filter(|r| r.set_matched && !r.exec_correct)
            .count();
        assert!(set_matched > 0);
        assert!(
            rejected * 2 <= set_matched,
            "audit rejected {rejected} of {set_matched} — too aggressive"
        );
    }
}
