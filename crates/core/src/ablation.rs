//! Ablation study over the simulated-model design choices (DESIGN.md §4).
//!
//! The benchmark's central claim is *mechanistic*: naturalness affects
//! NL-to-SQL because identifier tokens decode with class-dependent
//! probability. Each ablation disables one simulation component and reruns a
//! zero-shot benchmark; the table reports per-variant QueryRecall, the
//! Regular→Least gap, and the Kendall-τ between query combined naturalness
//! and recall.
//!
//! The decisive row is **uniform-decode**: with all token classes decoding
//! at the dictionary-word rate, the naturalness effect must vanish (gap ≈ 0,
//! τ ≈ 0) — demonstrating that the reproduced Figures 8–11 are driven by the
//! decoding mechanism, not by an artifact of the pipeline.

use snails_data::SnailsDatabase;
use snails_eval::report::{fmt2, TextTable};
use snails_eval::stats::kendall_tau_b;
use snails_eval::query_linking;
use snails_llm::middleware::denaturalization_map;
use snails_llm::{infer, ModelConfig, ModelKind, SchemaView};
use snails_naturalness::category::SchemaVariant;
use snails_sql::{extract_identifiers, parse};

/// One ablation: a name and a transform applied to the base model config.
pub struct Ablation {
    /// Row label.
    pub name: &'static str,
    /// What the ablation disables.
    pub description: &'static str,
    /// Config transform.
    pub apply: fn(ModelConfig) -> ModelConfig,
}

/// The standard ablation set.
pub fn standard_ablations() -> Vec<Ablation> {
    vec![
        Ablation {
            name: "full",
            description: "the calibrated simulation",
            apply: |c| c,
        },
        Ablation {
            name: "uniform-decode",
            description: "all token classes decode at the word rate",
            apply: |mut c| {
                c.abbrev_decode = c.word_decode;
                c.opaque_decode = c.word_decode;
                c
            },
        },
        Ablation {
            name: "no-distraction",
            description: "schema size does not shrink link probability",
            apply: |mut c| {
                c.distraction = 0.0;
                c
            },
        },
        Ablation {
            name: "no-hallucination",
            description: "failed links never mutate identifiers",
            apply: |mut c| {
                c.hallucination = 0.0;
                c
            },
        },
        Ablation {
            name: "no-guessing",
            description: "failed links never guess natural names",
            apply: |mut c| {
                c.guess_natural = 0.0;
                c
            },
        },
        Ablation {
            name: "perfect-structure",
            description: "no structural mutations or syntax failures",
            apply: |mut c| {
                c.structure_skill = 1.0;
                c.syntax_failure = 0.0;
                c
            },
        },
    ]
}

/// Per-variant mean recall plus the naturalness correlation for one config.
#[derive(Debug, Clone, Copy)]
pub struct AblationOutcome {
    /// Mean QueryRecall per variant, `[Native, Regular, Low, Least]`.
    pub recall: [f64; 4],
    /// τ between query combined naturalness and recall (all variants pooled);
    /// `None` when the correlation is undefined.
    pub tau: Option<f64>,
    /// Its p-value.
    pub p_value: Option<f64>,
}

impl AblationOutcome {
    /// The Regular→Least recall gap — the naturalness effect size.
    pub fn gap(&self) -> f64 {
        self.recall[1] - self.recall[3]
    }
}

/// Run one config over a database at all variants (zero-shot).
pub fn run_ablation(config: &ModelConfig, db: &SnailsDatabase, seed: u64) -> AblationOutcome {
    let mut recall = [0.0f64; 4];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (vi, &variant) in SchemaVariant::ALL.iter().enumerate() {
        let view = SchemaView::new(db, variant);
        let denat = denaturalization_map(db, variant);
        let mut sum = 0.0;
        let mut n = 0usize;
        for pair in &db.questions {
            let inference = infer(config, db, &view, pair, seed);
            let Ok(native_sql) = snails_sql::denaturalize_query(&inference.raw_sql, &denat)
            else {
                continue;
            };
            let gold = extract_identifiers(&parse(&pair.sql).expect("gold parses"));
            let pred = extract_identifiers(&parse(&native_sql).expect("denat parses"));
            let scores = query_linking(&gold, &pred);
            sum += scores.recall;
            n += 1;
            let measures = crate::measures::query_measures(db, variant, &gold);
            xs.push(measures.combined);
            ys.push(scores.recall);
        }
        recall[vi] = if n == 0 { 0.0 } else { sum / n as f64 };
    }
    let k = kendall_tau_b(&xs, &ys);
    AblationOutcome {
        recall,
        tau: k.map(|r| r.tau),
        p_value: k.map(|r| r.p_value),
    }
}

/// The full ablation table for one base model over one database.
pub fn ablation_report(db: &SnailsDatabase, base: ModelKind, seed: u64) -> String {
    let mut table = TextTable::new(&[
        "Ablation", "Native", "Regular", "Low", "Least", "Reg-Least gap", "tau(combined)",
    ]);
    for ablation in standard_ablations() {
        let config = (ablation.apply)(base.config());
        let outcome = run_ablation(&config, db, seed);
        table.row(vec![
            ablation.name.to_owned(),
            fmt2(outcome.recall[0]),
            fmt2(outcome.recall[1]),
            fmt2(outcome.recall[2]),
            fmt2(outcome.recall[3]),
            fmt2(outcome.gap()),
            outcome.tau.map(fmt2).unwrap_or_else(|| "n/a".into()),
        ]);
    }
    format!(
        "Ablation study ({} over {}): QueryRecall per schema variant with one \
         simulation component disabled at a time. `uniform-decode` removes the \
         class-dependent token decoding and with it the naturalness effect — \
         the mechanism, not the pipeline, produces the paper's results.\n{}",
        base.display_name(),
        db.spec.name,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_data::build_database;

    #[test]
    fn uniform_decode_removes_naturalness_effect() {
        let db = build_database("CWO");
        let base = ModelKind::Gpt35.config();
        let full = run_ablation(&base, &db, 5);
        let uniform = run_ablation(&(standard_ablations()[1].apply)(base), &db, 5);
        // The calibrated model shows a clear Regular→Least gap...
        assert!(full.gap() > 0.10, "full gap {:.3}", full.gap());
        // ...which (nearly) vanishes with uniform decoding.
        assert!(
            uniform.gap().abs() < 0.05,
            "uniform-decode gap {:.3} should be ≈0",
            uniform.gap()
        );
        // And the naturalness correlation collapses with it.
        let full_tau = full.tau.unwrap();
        assert!(full_tau > 0.1, "full τ {full_tau:.3}");
        if let Some(t) = uniform.tau {
            assert!(t.abs() < 0.08, "uniform τ {t:.3} should be ≈0");
        }
    }

    #[test]
    fn perfect_structure_raises_recall_keeps_effect() {
        let db = build_database("CWO");
        let base = ModelKind::PhindCodeLlama.config();
        let full = run_ablation(&base, &db, 5);
        let perfect =
            run_ablation(&(standard_ablations()[5].apply)(base), &db, 5);
        // Recall improves everywhere (no drop-join mutations)...
        assert!(perfect.recall[1] >= full.recall[1] - 0.02);
        // ...but the naturalness gap persists.
        assert!(perfect.gap() > 0.10, "gap {:.3}", perfect.gap());
    }

    #[test]
    fn ablation_report_renders() {
        let db = build_database("CWO");
        let report = ablation_report(&db, ModelKind::Gpt35, 5);
        assert!(report.contains("uniform-decode"));
        assert!(report.contains("no-distraction"));
        assert_eq!(report.matches('\n').count() >= 8, true);
    }
}
