#![warn(missing_docs)]

//! # snails-core
//!
//! Experiment orchestration: the paper's benchmarking pipeline (Figures 6
//! and 7) and the reproduction functions for every table and figure.
//!
//! The pipeline runs, for each (workflow × database × schema variant ×
//! question): prompt naturalization, simulated NL-to-SQL inference, query
//! denaturalization, execution on the native instance, result set-superset
//! matching, semantic audit, and schema-linking measurement. Records carry
//! the per-query naturalness measures used by the Kendall-τ analyses.
//!
//! * [`pipeline`] — [`pipeline::run_benchmark`] and the [`pipeline::QueryRecord`] schema;
//! * [`measures`] — per-query naturalness and token-ratio measures;
//! * [`dataset_figures`] — Tables 1–5, Figures 2/3/5 and appendix B/C
//!   figures (no benchmark run required);
//! * [`result_figures`] — Figures 8–13, Figure 30, and the Kendall-τ tables
//!   (31a–47b), computed from a [`pipeline::BenchmarkRun`].

pub mod ablation;
pub mod checkpoint;
pub mod dataset_figures;
pub mod measures;
pub mod pipeline;
pub mod result_figures;
pub mod scheduler;

pub use checkpoint::{
    grid_fingerprint, manifest_from_run, merge_manifests, CheckpointSpec, CheckpointStats, Shard,
    ShardManifest,
};
pub use pipeline::{run_benchmark, BenchmarkConfig, BenchmarkRun, QueryRecord};
pub use scheduler::available_threads;

/// Telemetry types re-exported from the observability crate so binaries and
/// downstream consumers of [`BenchmarkRun::telemetry`] need no direct
/// `snails-obs` dependency.
pub mod telemetry {
    pub use snails_obs::{
        add, gauge_set, observe, scope, span, task, ClockMode, HistSnapshot, Metric, ObsCtx,
        Report, Section, Snapshot, SpanStat,
    };
}
