//! Parallel scheduler determinism.
//!
//! `run_benchmark_on` must produce records identical in content AND order
//! to the serial loop at every thread count — figure generation and the
//! reproducibility guarantees consume `BenchmarkRun.records` positionally.

use snails_core::pipeline::{run_benchmark_on, BenchmarkConfig};
use snails_data::SnailsDatabase;
use snails_llm::{ModelKind, Workflow};
use snails_naturalness::category::SchemaVariant;

fn config(threads: Option<usize>) -> BenchmarkConfig {
    BenchmarkConfig {
        seed: 11,
        databases: vec!["CWO".into(), "KIS".into()],
        variants: vec![SchemaVariant::Native, SchemaVariant::Low],
        workflows: vec![
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::ZeroShot(ModelKind::CodeS),
        ],
        threads,
        ..BenchmarkConfig::default()
    }
}

#[test]
fn any_thread_count_reproduces_the_serial_records() {
    let collection: Vec<SnailsDatabase> = vec![
        snails_data::build_database("CWO"),
        snails_data::build_database("KIS"),
    ];
    let serial = run_benchmark_on(&collection, &config(Some(1)));
    assert!(!serial.records.is_empty());

    for threads in [2, 8] {
        let parallel = run_benchmark_on(&collection, &config(Some(threads)));
        assert_eq!(
            serial.records.len(),
            parallel.records.len(),
            "threads = {threads}"
        );
        for (i, (s, p)) in serial.records.iter().zip(&parallel.records).enumerate() {
            assert_eq!(s, p, "record {i} diverged at threads = {threads}");
        }
    }

    // The default (machine parallelism) takes the same code path.
    let auto = run_benchmark_on(&collection, &config(None));
    assert_eq!(serial.records, auto.records);
}
