//! Checkpoint/resume, sharding, and merge invariants.
//!
//! The recovery-correctness contract: a run that crashes, resumes, shards,
//! or trips over corrupted checkpoint files must end with records, fault
//! summary, and deterministic telemetry **byte-identical** to the
//! uninterrupted single-process run. These tests drive the pipeline
//! in-process (the kill-the-worker harness lives in the workspace-root
//! `tests/`, where the `snails` binary is available).

use proptest::prelude::*;
use snails_core::checkpoint::{manifest_from_run, merge_manifests, CheckpointSpec, Shard};
use snails_core::pipeline::{run_benchmark_on, BenchmarkConfig, FaultSummary};
use snails_data::SnailsDatabase;
use snails_llm::faults::FaultProfile;
use snails_llm::{ModelKind, Workflow};
use snails_naturalness::category::SchemaVariant;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn collection() -> Vec<SnailsDatabase> {
    vec![snails_data::build_database("CWO")]
}

/// 160 cells: 2 variants × 2 workflows × 40 questions on one database.
fn small_config(profile: FaultProfile) -> BenchmarkConfig {
    BenchmarkConfig {
        seed: 7,
        databases: vec!["CWO".into()],
        variants: vec![SchemaVariant::Native, SchemaVariant::Least],
        workflows: vec![
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::ZeroShot(ModelKind::PhindCodeLlama),
        ],
        threads: Some(2),
        fault_profile: profile,
        telemetry: true,
        ..BenchmarkConfig::default()
    }
}

/// Fresh scratch directory under the target-adjacent temp root.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snails-ckpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn cell_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("cells"))
        .expect("cells dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rec"))
        .collect();
    files.sort();
    files
}

fn quarantined(dir: &Path) -> usize {
    std::fs::read_dir(dir.join("quarantine")).map_or(0, |d| d.count())
}

#[test]
fn fresh_checkpointed_run_matches_uncheckpointed_run() {
    let dbs = collection();
    let baseline_cfg = small_config(FaultProfile::FLAKY);
    let baseline = run_benchmark_on(&dbs, &baseline_cfg);

    let dir = scratch("fresh");
    let cfg = BenchmarkConfig {
        checkpoint: Some(CheckpointSpec::at(&dir)),
        ..small_config(FaultProfile::FLAKY)
    };
    let run = run_benchmark_on(&dbs, &cfg);

    assert_eq!(run.records, baseline.records);
    assert_eq!(run.faults, baseline.faults);
    assert_eq!(
        run.telemetry.as_ref().unwrap().deterministic_json(),
        baseline.telemetry.as_ref().unwrap().deterministic_json(),
        "checkpointing must not perturb the deterministic telemetry"
    );
    assert_eq!(
        manifest_from_run(&run, &cfg).to_string(),
        manifest_from_run(&baseline, &baseline_cfg).to_string()
    );
    let stats = run.checkpoint.expect("checkpoint stats present");
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.corrupt, 0);
    assert_eq!(stats.misses, 160);
    // Every non-panicking cell persisted; injected-panic cells unwind out
    // of the evaluator before the store sees them.
    let panics = *run.faults.failures.get("panic").unwrap_or(&0);
    assert_eq!(stats.written + panics, 160);
    assert_eq!(cell_files(&dir).len() as u64, stats.written);
}

#[test]
fn partial_resume_is_byte_identical_across_thread_counts() {
    let dbs = collection();
    let dir = scratch("resume");
    let cfg = |threads: usize| BenchmarkConfig {
        threads: Some(threads),
        checkpoint: Some(CheckpointSpec::at(&dir)),
        ..small_config(FaultProfile::FLAKY)
    };
    let fresh = run_benchmark_on(&dbs, &cfg(1));
    let fresh_manifest = manifest_from_run(&fresh, &cfg(1)).to_string();

    // Knock out every other stored record; the resumed run must recompute
    // exactly those cells and reproduce the run byte-for-byte — at a
    // different thread count than the fresh run, to boot.
    for (i, path) in cell_files(&dir).iter().enumerate() {
        if i % 2 == 0 {
            std::fs::remove_file(path).unwrap();
        }
    }
    for threads in [2usize, 8] {
        let resumed = run_benchmark_on(&dbs, &cfg(threads));
        let stats = resumed.checkpoint.expect("stats");
        assert!(stats.hits > 0, "some cells restored");
        assert!(stats.misses > 0, "some cells recomputed");
        assert_eq!(stats.corrupt, 0);
        assert_eq!(resumed.records, fresh.records);
        assert_eq!(resumed.faults, fresh.faults);
        assert_eq!(manifest_from_run(&resumed, &cfg(threads)).to_string(), fresh_manifest);
        assert_eq!(
            resumed.telemetry.as_ref().unwrap().deterministic_json(),
            fresh.telemetry.as_ref().unwrap().deterministic_json(),
            "restored cells must replay their telemetry deltas exactly"
        );
        let report = resumed.telemetry.as_ref().unwrap();
        assert_eq!(report.counter("checkpoint.hit"), stats.hits);
        assert!(
            report.counter("engine.plan.resume_warm") > 0,
            "restored cells re-warm the plan cache"
        );
        // Knock the same half out again so the second thread count also
        // exercises a genuine partial resume.
        for (i, path) in cell_files(&dir).iter().enumerate() {
            if i % 2 == 0 {
                std::fs::remove_file(path).unwrap();
            }
        }
    }
}

#[test]
fn corrupted_records_are_quarantined_and_recomputed() {
    let dbs = collection();
    let dir = scratch("corrupt");
    let cfg = BenchmarkConfig {
        checkpoint: Some(CheckpointSpec::at(&dir)),
        ..small_config(FaultProfile::FLAKY)
    };
    let fresh = run_benchmark_on(&dbs, &cfg);
    let files = cell_files(&dir);
    assert!(files.len() > 8, "enough records to vandalize");

    // Four distinct corruption modes: truncation, a bit flip, wholesale
    // garbage, and an empty file.
    let original = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &original[..original.len() / 2]).unwrap();
    let mut flipped = std::fs::read(&files[2]).unwrap();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    std::fs::write(&files[2], &flipped).unwrap();
    std::fs::write(&files[4], b"not a checkpoint at all\n").unwrap();
    std::fs::write(&files[6], b"").unwrap();

    let resumed = run_benchmark_on(&dbs, &cfg);
    let stats = resumed.checkpoint.expect("stats");
    assert_eq!(stats.corrupt, 4, "all four vandalized records detected");
    assert_eq!(quarantined(&dir), 4, "vandalized files moved aside");
    assert_eq!(resumed.records, fresh.records, "corruption is recomputed, not trusted");
    assert_eq!(resumed.faults, fresh.faults);
    assert_eq!(
        resumed.telemetry.as_ref().unwrap().deterministic_json(),
        fresh.telemetry.as_ref().unwrap().deterministic_json()
    );
    assert_eq!(resumed.telemetry.as_ref().unwrap().counter("checkpoint.corrupt"), 4);
    // The recomputed cells were re-stored: a third run restores everything.
    let third = run_benchmark_on(&dbs, &cfg);
    let stats = third.checkpoint.expect("stats");
    assert_eq!(stats.corrupt, 0);
    assert_eq!(stats.written, 0);
    assert_eq!(third.records, fresh.records);
}

#[test]
fn cross_grid_records_are_rejected_not_misused() {
    let dbs = collection();
    let dir = scratch("foreign");
    let cfg_a = BenchmarkConfig {
        checkpoint: Some(CheckpointSpec::at(&dir)),
        ..small_config(FaultProfile::FLAKY)
    };
    // A different seed is a different grid fingerprint sharing the same
    // checkpoint directory.
    let cfg_b = BenchmarkConfig { seed: 8, ..cfg_a.clone() };
    let run_a = run_benchmark_on(&dbs, &cfg_a);
    assert_ne!(run_a.fingerprint, run_benchmark_on(&dbs, &cfg_b).fingerprint);

    // Grid B's records live under different content-addressed names, so
    // grid A simply misses them — but if one is *renamed* over an A path
    // (simulating a stale or mixed-up store), the fingerprint check must
    // quarantine it rather than let B's result impersonate A's.
    let files = cell_files(&dir);
    let a_path = files
        .iter()
        .find(|p| std::fs::read_to_string(p).unwrap().contains(&format!(
            "fp {:016x}",
            run_a.fingerprint
        )))
        .expect("an A record exists")
        .clone();
    let b_path = files
        .iter()
        .find(|p| !std::fs::read_to_string(p).unwrap().contains(&format!(
            "fp {:016x}",
            run_a.fingerprint
        )))
        .expect("a B record exists");
    std::fs::copy(b_path, &a_path).unwrap();

    let resumed = run_benchmark_on(&dbs, &cfg_a);
    let stats = resumed.checkpoint.expect("stats");
    assert!(stats.corrupt >= 1, "foreign-fingerprint record quarantined");
    assert_eq!(resumed.records, run_a.records);
}

#[test]
fn shard_merge_reproduces_the_full_run_manifest() {
    let dbs = collection();
    let full_cfg = small_config(FaultProfile::FLAKY);
    let full = run_benchmark_on(&dbs, &full_cfg);
    let full_manifest = manifest_from_run(&full, &full_cfg).to_string();

    for count in [2usize, 4] {
        let mut manifests = Vec::new();
        for index in 0..count {
            let cfg = BenchmarkConfig {
                shard: Shard { index, count },
                // Vary the thread count per shard: determinism must not
                // depend on how each shard was scheduled.
                threads: Some(1 + index % 3),
                ..small_config(FaultProfile::FLAKY)
            };
            let run = run_benchmark_on(&dbs, &cfg);
            assert_eq!(run.faults.cells, run.records.len());
            manifests.push(manifest_from_run(&run, &cfg));
        }
        // Present the shards out of order: the merge is order-insensitive.
        manifests.rotate_left(count / 2);
        let merged = merge_manifests(manifests).expect("complete disjoint shards merge");
        assert_eq!(
            merged.to_string(),
            full_manifest,
            "{count}-way shard merge must be byte-identical to the full run"
        );
        assert_eq!(merged.faults, full.faults);
    }
}

#[test]
fn sharded_fault_summaries_sum_to_the_full_run_summary_under_hostile_faults() {
    let dbs = collection();
    let mut base = small_config(FaultProfile::HOSTILE);
    base.telemetry = false;
    let full = run_benchmark_on(&dbs, &base);
    assert!(full.faults.breaker_trips > 0, "hostile profile trips breakers");

    let mut summed = FaultSummary::default();
    let mut all_records = Vec::new();
    for index in 0..4 {
        let cfg = BenchmarkConfig { shard: Shard { index, count: 4 }, ..base.clone() };
        let run = run_benchmark_on(&dbs, &cfg);
        summed.merge(&run.faults);
        all_records.push(run.records);
    }
    assert_eq!(summed, full.faults, "per-cell trip attribution survives sharding");

    // Interleaving the shard record streams reproduces the full stream.
    let mut iters: Vec<_> = all_records.into_iter().map(Vec::into_iter).collect();
    let interleaved: Vec<_> = (0..full.records.len()).map(|i| iters[i % 4].next().unwrap()).collect();
    assert_eq!(interleaved, full.records);
}

fn arb_summary() -> impl Strategy<Value = FaultSummary> {
    (
        0usize..2000,
        0u64..10_000,
        0u64..5_000,
        0u64..50,
        proptest::collection::vec((0usize..7, 0u64..100), 0..7),
    )
        .prop_map(|(cells, attempts, retries, trips, kinds)| {
            let names = [
                "timeout",
                "rate_limit",
                "truncated",
                "garbage",
                "panic",
                "circuit_open",
                "resource_exhausted",
            ];
            let mut failures: BTreeMap<&'static str, u64> = BTreeMap::new();
            for (k, n) in kinds {
                *failures.entry(names[k]).or_insert(0) += n;
            }
            FaultSummary { cells, attempts, retries, breaker_trips: trips, failures }
        })
}

fn merged(parts: &[&FaultSummary]) -> FaultSummary {
    let mut out = FaultSummary::default();
    for p in parts {
        out.merge(p);
    }
    out
}

proptest! {
    #[test]
    fn fault_summary_merge_is_associative_and_commutative(
        a in arb_summary(),
        b in arb_summary(),
        c in arb_summary(),
    ) {
        // Commutative.
        prop_assert_eq!(merged(&[&a, &b]), merged(&[&b, &a]));
        // Associative: (a+b)+c == a+(b+c).
        let ab_c = merged(&[&merged(&[&a, &b]), &c]);
        let a_bc = merged(&[&a, &merged(&[&b, &c])]);
        prop_assert_eq!(&ab_c, &a_bc);
        // Identity.
        prop_assert_eq!(merged(&[&a, &FaultSummary::default()]), a.clone());
        // The JSON rendering agrees wherever the summaries do.
        prop_assert_eq!(ab_c.to_json(), a_bc.to_json());
    }
}

#[test]
fn stored_record_fuzz_never_panics_and_never_lies() {
    use proptest::test_runner::TestRng;
    use snails_core::checkpoint::{CellLoad, CellStore};

    let dir = scratch("fuzz");
    let spec = CheckpointSpec::at(&dir);
    let store = CellStore::open(&spec, 0xfeed_f00d).unwrap();

    // One real record to vandalize, produced by the actual pipeline.
    let dbs = collection();
    let mut cfg = small_config(FaultProfile::NONE);
    cfg.telemetry = false;
    let run = run_benchmark_on(&dbs, &cfg);
    let record = run.records[0].clone();
    store.store(3, &record, Some("SELECT 1"), None).unwrap();
    let path = cell_files(&dir)[0].clone();
    let pristine = std::fs::read(&path).unwrap();

    let mut rng = TestRng::new(0x5eed);
    for case in 0..512u32 {
        let mut bytes = pristine.clone();
        match case % 3 {
            0 => bytes.truncate(rng.below(pristine.len() + 1)),
            1 => {
                let p = rng.below(pristine.len());
                bytes[p] ^= 1 << rng.below(8);
            }
            _ => {
                let p = rng.below(pristine.len());
                bytes.splice(p..p, b"junk".iter().copied());
            }
        }
        std::fs::write(&path, &bytes).unwrap();
        match store.load(3, false) {
            // Only identical bytes may verify (truncation at the full
            // length is the one mutation that is a no-op).
            CellLoad::Hit { record: r, exec_sql, .. } => {
                assert_eq!(
                    bytes, pristine,
                    "case {case}: a mutated record must never verify"
                );
                assert_eq!(r, record);
                assert_eq!(exec_sql.as_deref(), Some("SELECT 1"));
            }
            CellLoad::Corrupt => {
                assert_ne!(bytes, pristine, "case {case}: pristine record rejected");
            }
            CellLoad::Miss => panic!("case {case}: file exists; load must not miss"),
        }
        std::fs::write(&path, &pristine).unwrap();
    }
    // The pristine record still verifies after the whole gauntlet.
    assert!(matches!(store.load(3, false), CellLoad::Hit { .. }));
}
