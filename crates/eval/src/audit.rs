//! Semantic audit (appendix E.3, automated).
//!
//! The paper's authors manually reviewed every prediction that passed result
//! set-superset matching and rejected ≈2% as false positives — the canonical
//! example being a query whose result happened to match although it selected
//! the wrong table (`AHEM` instead of `OHEM`). This module automates that
//! review with the checks a human reviewer applies:
//!
//! * every gold *table* must actually be referenced by the prediction (the
//!   AHEM/OHEM case);
//! * the prediction must not have lost the gold query's aggregation
//!   structure (a `GROUP BY` dropped but coincidentally matching).

use snails_sql::{clause_profile, extract_identifiers, parse};

/// Audit a set-matched prediction; `true` = passes (finally correct).
///
/// Unparseable predictions fail the audit (they cannot be reviewed).
pub fn audit_semantics(gold_sql: &str, predicted_sql: &str) -> bool {
    let Ok(gold) = parse(gold_sql) else { return false };
    let Ok(pred) = parse(predicted_sql) else { return false };

    let gold_ids = extract_identifiers(&gold);
    let pred_ids = extract_identifiers(&pred);

    // Wrong-table check: every gold table referenced.
    if !gold_ids.tables.is_subset(&pred_ids.tables) {
        return false;
    }

    // Aggregation-structure check: grouping present iff gold groups.
    let gold_profile = clause_profile(&gold);
    let pred_profile = clause_profile(&pred);
    if gold_profile.group_by && !pred_profile.group_by {
        return false;
    }

    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_queries_pass() {
        let sql = "SELECT a FROM t WHERE a = 1";
        assert!(audit_semantics(sql, sql));
    }

    #[test]
    fn wrong_table_fails() {
        // The paper's AHEM/OHEM example: result sets matched, table wrong.
        let gold = "SELECT StatusOfP FROM OHEM";
        let pred = "SELECT StatusOfP FROM AHEM";
        assert!(!audit_semantics(gold, pred));
    }

    #[test]
    fn extra_tables_tolerated() {
        let gold = "SELECT a FROM t";
        let pred = "SELECT a FROM t JOIN u ON t.x = u.x";
        assert!(audit_semantics(gold, pred));
    }

    #[test]
    fn dropped_group_by_fails() {
        let gold = "SELECT a, COUNT(*) FROM t GROUP BY a";
        let pred = "SELECT a, 3 FROM t";
        assert!(!audit_semantics(gold, pred));
    }

    #[test]
    fn unparseable_prediction_fails() {
        assert!(!audit_semantics("SELECT a FROM t", "SELECT the FROM WHERE"));
    }

    #[test]
    fn alias_differences_pass() {
        let gold = "SELECT a AS x FROM t";
        let pred = "SELECT a AS y FROM t";
        assert!(audit_semantics(gold, pred));
    }
}
