//! Plain-text table formatting for the experiment reports.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        push_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }
}

/// Format a proportion/score to 2 decimals (the paper's table precision).
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a correlation to 6 decimals (the paper's τ-table precision).
pub fn fmt6(v: f64) -> String {
    format!("{v:.6}")
}

/// Format a p-value like the paper's tables (6 decimals, floored at 0).
pub fn fmt_p(p: f64) -> String {
    if p < 1e-6 {
        "0.000000".to_owned()
    } else {
        format!("{p:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["Model", "Acc"]);
        t.row(vec!["gpt-4o".into(), "0.82".into()]);
        t.row(vec!["CodeS".into(), "0.21".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("gpt-4o"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt2(0.123), "0.12");
        assert_eq!(fmt6(-0.142596), "-0.142596");
        assert_eq!(fmt_p(1e-9), "0.000000");
        assert_eq!(fmt_p(0.012116), "0.012116");
    }
}
