#![warn(missing_docs)]

//! # snails-eval
//!
//! The SNAILS performance-evaluation layer (§5, appendix E):
//!
//! * [`execution`] — execution accuracy via result set-superset matching
//!   (appendix E.2): predicted columns must be a superset of gold columns,
//!   tuple order is ignored unless the question demands one;
//! * [`audit`] — the automated counterpart of the paper's manual-validation
//!   stage (appendix E.3), catching false positives that pass set matching;
//! * [`linking`] — query-level recall/precision/F1 (Equations 1–3) and
//!   identifier-level recall (Equation 4);
//! * [`stats`] — Kendall τ-b with tie-corrected normal-approximation
//!   p-values (the correlation machinery of tables 31a–47b) plus mean /
//!   confidence-interval helpers for the Figure 9 error bars;
//! * [`report`] — plain-text table formatting shared by the experiment
//!   binaries.

pub mod audit;
pub mod execution;
pub mod linking;
pub mod report;
pub mod stats;

pub use audit::audit_semantics;
pub use execution::{match_result_sets, ExecutionOutcome};
pub use linking::{identifier_recall, query_linking, IdentifierTally, LinkingScores};
pub use stats::{kendall_tau_b, mean_confidence_interval, KendallResult};
