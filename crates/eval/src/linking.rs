//! Schema-linking metrics (§5.2).
//!
//! *Query-level* (Equations 1–3): with gold identifier set `QI_g` and
//! predicted set `QI_p`,
//!
//! ```text
//! QueryRecall    = |QI_g ∩ QI_p| / |QI_g|
//! QueryPrecision = |QI_g ∩ QI_p| / |QI_p|
//! QueryF1        = 2·R·P / (R + P)
//! ```
//!
//! *Identifier-level* (Equation 4): for each native identifier `I`,
//! `IdentifierRecall = I_match / I_gold` over all predictions.

use snails_sql::QueryIdentifiers;
use std::collections::BTreeMap;

/// Query-level linking scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkingScores {
    /// Equation 1.
    pub recall: f64,
    /// Equation 2.
    pub precision: f64,
    /// Equation 3.
    pub f1: f64,
    /// |QI_g ∩ QI_p|.
    pub true_positives: usize,
}

/// Compute query-level linking scores from gold and predicted identifier
/// sets.
pub fn query_linking(gold: &QueryIdentifiers, predicted: &QueryIdentifiers) -> LinkingScores {
    let g = gold.all();
    let p = predicted.all();
    let tp = g.intersection(&p).count();
    let recall = if g.is_empty() { 1.0 } else { tp as f64 / g.len() as f64 };
    let precision = if p.is_empty() { 0.0 } else { tp as f64 / p.len() as f64 };
    let f1 = if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    };
    LinkingScores { recall, precision, f1, true_positives: tp }
}

/// Identifier-level recall accumulator (Equation 4).
#[derive(Debug, Clone, Default)]
pub struct IdentifierTally {
    counts: BTreeMap<String, (usize, usize)>, // name → (match, gold)
}

impl IdentifierTally {
    /// New empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one prediction: every identifier in the gold set increments
    /// its gold count; those also present in the predicted set increment
    /// their match count.
    pub fn record(&mut self, gold: &QueryIdentifiers, predicted: &QueryIdentifiers) {
        let p = predicted.all();
        for id in gold.all() {
            let entry = self.counts.entry(id.clone()).or_insert((0, 0));
            entry.1 += 1;
            if p.contains(&id) {
                entry.0 += 1;
            }
        }
    }

    /// Per-identifier recall values: `(identifier, recall, gold_count)`.
    pub fn recalls(&self) -> Vec<(String, f64, usize)> {
        self.counts
            .iter()
            .map(|(id, (m, g))| (id.clone(), *m as f64 / (*g).max(1) as f64, *g))
            .collect()
    }

    /// Recall of one identifier, if it ever appeared in a gold query.
    pub fn recall_of(&self, identifier: &str) -> Option<f64> {
        self.counts
            .get(&identifier.to_ascii_uppercase())
            .map(|(m, g)| *m as f64 / (*g).max(1) as f64)
    }

    /// Number of tracked identifiers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// One-shot identifier recall over (gold, predicted) pairs.
pub fn identifier_recall<'a>(
    pairs: impl IntoIterator<Item = (&'a QueryIdentifiers, &'a QueryIdentifiers)>,
) -> IdentifierTally {
    let mut tally = IdentifierTally::new();
    for (g, p) in pairs {
        tally.record(g, p);
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_sql::{extract_identifiers, parse};

    fn ids(sql: &str) -> QueryIdentifiers {
        extract_identifiers(&parse(sql).unwrap())
    }

    #[test]
    fn paper_appendix_e4_example() {
        // ATBI question 30: gold has 9 identifiers, predicted 10, overlap 6.
        let gold = ids(
            "SELECT species, CommonName FROM tlu_PlantSpecies sp WHERE EXISTS( \
             SELECT overstory_id FROM tbl_Overstory WHERE SpCode = sp.SpeciesCode ) \
             AND NOT EXISTS ( \
             SELECT Seedlings_ID FROM tbl_Seedlings WHERE SpCode = sp.SpeciesCode )",
        );
        let predicted = ids(
            "SELECT DISTINCT tlu_PlantSpecies.genus, tlu_PlantSpecies.subgenus, \
             tlu_PlantSpecies.species, tlu_PlantSpecies.subspecies, \
             tlu_PlantSpecies.SpeciesCode, tlu_PlantSpecies.CommonName \
             FROM tlu_PlantSpecies \
             LEFT JOIN tbl_Overstory ON tbl_Overstory.SpCode = tlu_PlantSpecies.SpeciesCode \
             LEFT JOIN tbl_Saplings ON tbl_Saplings.SpCode = tlu_PlantSpecies.SpeciesCode \
             WHERE tbl_Overstory.SpCode IS NOT NULL AND tbl_Saplings.SpCode IS NULL",
        );
        assert_eq!(gold.all().len(), 9);
        assert_eq!(predicted.all().len(), 10);
        let scores = query_linking(&gold, &predicted);
        assert_eq!(scores.true_positives, 6);
        assert!((scores.recall - 6.0 / 9.0).abs() < 1e-9);
        assert!((scores.precision - 6.0 / 10.0).abs() < 1e-9);
        assert!((scores.f1 - 0.631_578_947).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction() {
        let gold = ids("SELECT a, b FROM t WHERE c = 1");
        let scores = query_linking(&gold, &gold);
        assert_eq!(scores.recall, 1.0);
        assert_eq!(scores.precision, 1.0);
        assert_eq!(scores.f1, 1.0);
    }

    #[test]
    fn disjoint_prediction() {
        let gold = ids("SELECT a FROM t");
        let pred = ids("SELECT x FROM u");
        let scores = query_linking(&gold, &pred);
        assert_eq!(scores.recall, 0.0);
        assert_eq!(scores.precision, 0.0);
        assert_eq!(scores.f1, 0.0);
    }

    #[test]
    fn extra_identifiers_hurt_precision_not_recall() {
        let gold = ids("SELECT a FROM t");
        let pred = ids("SELECT a, b, c FROM t");
        let scores = query_linking(&gold, &pred);
        assert_eq!(scores.recall, 1.0);
        assert!(scores.precision < 1.0);
    }

    #[test]
    fn identifier_tally_accumulates() {
        let gold1 = ids("SELECT a FROM t");
        let pred1 = ids("SELECT a FROM t");
        let gold2 = ids("SELECT a, b FROM t");
        let pred2 = ids("SELECT b FROM t");
        let tally = identifier_recall([(&gold1, &pred1), (&gold2, &pred2)]);
        // `A`: gold twice, matched once.
        assert_eq!(tally.recall_of("a"), Some(0.5));
        // `B`: gold once, matched once.
        assert_eq!(tally.recall_of("B"), Some(1.0));
        // `T`: gold twice, matched twice.
        assert_eq!(tally.recall_of("t"), Some(1.0));
        assert_eq!(tally.recall_of("zzz"), None);
        assert_eq!(tally.len(), 3);
    }

    #[test]
    fn empty_tally() {
        let t = IdentifierTally::new();
        assert!(t.is_empty());
        assert!(t.recalls().is_empty());
    }
}
