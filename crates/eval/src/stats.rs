//! Statistics: Kendall τ-b and confidence intervals.
//!
//! The paper's correlation tables (31a–47b) report Kendall-Tau coefficients
//! with p-values between per-query naturalness measures and performance
//! outcomes. Performance outcomes are heavily tied (binary accuracy, recall
//! with few distinct values), so τ-b with tie correction is required; the
//! p-value uses the tie-corrected normal approximation.

/// The result of a Kendall τ-b test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KendallResult {
    /// τ-b coefficient in `[-1, 1]`.
    pub tau: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Kendall τ-b between two samples, with tie-corrected variance.
///
/// Returns `None` when fewer than 2 points or either variable is constant.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> Option<KendallResult> {
    let n = x.len().min(y.len());
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i].partial_cmp(&x[j])?;
            let dy = y[i].partial_cmp(&y[j])?;
            use std::cmp::Ordering::*;
            match (dx, dy) {
                (Less, Less) | (Greater, Greater) => concordant += 1,
                (Less, Greater) | (Greater, Less) => discordant += 1,
                _ => {}
            }
        }
    }
    let tie_groups = |v: &[f64]| -> Vec<u64> {
        let mut sorted: Vec<f64> = v[..n].to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut groups = Vec::new();
        let mut run = 1u64;
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                if run > 1 {
                    groups.push(run);
                }
                run = 1;
            }
        }
        if run > 1 {
            groups.push(run);
        }
        groups
    };
    let tx = tie_groups(x);
    let ty = tie_groups(y);

    let n = n as f64;
    let n0 = n * (n - 1.0) / 2.0;
    let n1: f64 = tx.iter().map(|&t| t as f64 * (t as f64 - 1.0) / 2.0).sum();
    let n2: f64 = ty.iter().map(|&t| t as f64 * (t as f64 - 1.0) / 2.0).sum();
    let denom = ((n0 - n1) * (n0 - n2)).sqrt();
    if denom == 0.0 {
        return None; // a variable is constant
    }
    let s = (concordant - discordant) as f64;
    let tau = s / denom;

    // Tie-corrected variance of S (Kendall 1970).
    let v0 = n * (n - 1.0) * (2.0 * n + 5.0);
    let vt: f64 = tx
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * (t - 1.0) * (2.0 * t + 5.0)
        })
        .sum();
    let vu: f64 = ty
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * (t - 1.0) * (2.0 * t + 5.0)
        })
        .sum();
    let sum_t2: f64 = tx.iter().map(|&t| {
        let t = t as f64;
        t * (t - 1.0) * (t - 2.0)
    }).sum();
    let sum_u2: f64 = ty.iter().map(|&t| {
        let t = t as f64;
        t * (t - 1.0) * (t - 2.0)
    }).sum();
    let sum_t1: f64 = tx.iter().map(|&t| {
        let t = t as f64;
        t * (t - 1.0)
    }).sum();
    let sum_u1: f64 = ty.iter().map(|&t| {
        let t = t as f64;
        t * (t - 1.0)
    }).sum();

    let mut var = (v0 - vt - vu) / 18.0;
    if n > 2.0 {
        var += sum_t2 * sum_u2 / (9.0 * n * (n - 1.0) * (n - 2.0));
    }
    var += sum_t1 * sum_u1 / (2.0 * n * (n - 1.0));
    if var <= 0.0 {
        return None;
    }
    let z = s / var.sqrt();
    let p_value = 2.0 * (1.0 - standard_normal_cdf(z.abs()));
    Some(KendallResult { tau, p_value: p_value.clamp(0.0, 1.0), n: x.len().min(y.len()) })
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Mean with a normal-approximation confidence interval (the Figure 9 error
/// bars use 0.95).
///
/// Returns `(mean, half_width)`; half-width is 0 for fewer than 2 samples.
pub fn mean_confidence_interval(values: &[f64], confidence: f64) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    // Two-sided z for the requested confidence.
    let z = inverse_normal_cdf(0.5 + confidence / 2.0);
    (mean, z * se)
}

/// Inverse standard-normal CDF (Acklam's rational approximation).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p in (0,1), got {p}");
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_521,
        -275.928_510_446_969,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_24,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.024_25;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_concordance() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 20.0, 30.0, 40.0, 50.0];
        let r = kendall_tau_b(&x, &y).unwrap();
        assert!((r.tau - 1.0).abs() < 1e-12);
        assert!(r.p_value < 0.05);
    }

    #[test]
    fn perfect_discordance() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        let r = kendall_tau_b(&x, &y).unwrap();
        assert!((r.tau + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independence_near_zero() {
        // Alternating pattern with no monotone trend.
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let r = kendall_tau_b(&x, &y).unwrap();
        assert!(r.tau.abs() < 0.15, "{}", r.tau);
        assert!(r.p_value > 0.05, "{}", r.p_value);
    }

    #[test]
    fn tie_corrected_reference() {
        // x = [1,2,2,3], y = [1,2,3,3]: C = 4, D = 0, one tie-pair on each
        // side → τ-b = 4 / √((6−1)(6−1)) = 0.8 (matches scipy's kendalltau).
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 3.0];
        let r = kendall_tau_b(&x, &y).unwrap();
        assert!((r.tau - 0.8).abs() < 1e-9, "{}", r.tau);
    }

    #[test]
    fn binary_outcome_correlation() {
        // The benchmark's shape: continuous naturalness vs binary accuracy.
        let x: Vec<f64> = (0..200).map(|i| (i % 10) as f64 / 10.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| if v > 0.5 { 1.0 } else { 0.0 }).collect();
        let r = kendall_tau_b(&x, &y).unwrap();
        assert!(r.tau > 0.5);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(kendall_tau_b(&[1.0], &[2.0]).is_none());
        assert!(kendall_tau_b(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(kendall_tau_b(&[], &[]).is_none());
    }

    #[test]
    fn antisymmetry() {
        let x = [0.2, 0.9, 0.4, 0.7, 0.1, 0.6];
        let y = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let a = kendall_tau_b(&x, &y).unwrap();
        let neg_y: Vec<f64> = y.iter().map(|v| -v).collect();
        let b = kendall_tau_b(&x, &neg_y).unwrap();
        assert!((a.tau + b.tau).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn inverse_normal_round_trip() {
        for p in [0.01, 0.1, 0.5, 0.9, 0.975, 0.99] {
            let z = inverse_normal_cdf(p);
            assert!((standard_normal_cdf(z) - p).abs() < 1e-3, "{p}");
        }
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        let (_, ci_small) = mean_confidence_interval(&small, 0.95);
        let (_, ci_large) = mean_confidence_interval(&large, 0.95);
        assert!(ci_small > ci_large);
        assert!(ci_large > 0.0);
    }

    #[test]
    fn confidence_interval_edge_cases() {
        assert_eq!(mean_confidence_interval(&[], 0.95), (0.0, 0.0));
        assert_eq!(mean_confidence_interval(&[3.0], 0.95), (3.0, 0.0));
        let (m, hw) = mean_confidence_interval(&[2.0, 2.0, 2.0], 0.95);
        assert_eq!(m, 2.0);
        assert_eq!(hw, 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// τ-b stays within [-1, 1] and p within [0, 1].
        #[test]
        fn tau_bounds(data in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..50)) {
            let x: Vec<f64> = data.iter().map(|(a, _)| (*a * 4.0).round() / 4.0).collect();
            let y: Vec<f64> = data.iter().map(|(_, b)| (*b * 2.0).round() / 2.0).collect();
            if let Some(r) = kendall_tau_b(&x, &y) {
                prop_assert!((-1.0..=1.0).contains(&r.tau), "{}", r.tau);
                prop_assert!((0.0..=1.0).contains(&r.p_value), "{}", r.p_value);
            }
        }

        /// Symmetry: τ(x, y) == τ(y, x).
        #[test]
        fn tau_symmetric(data in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..30)) {
            let x: Vec<f64> = data.iter().map(|(a, _)| *a).collect();
            let y: Vec<f64> = data.iter().map(|(_, b)| *b).collect();
            let ab = kendall_tau_b(&x, &y);
            let ba = kendall_tau_b(&y, &x);
            match (ab, ba) {
                (Some(r1), Some(r2)) => prop_assert!((r1.tau - r2.tau).abs() < 1e-12),
                (None, None) => {}
                other => prop_assert!(false, "asymmetric None: {other:?}"),
            }
        }
    }
}
