//! Execution result set-superset matching (appendix E.2).
//!
//! A predicted result matches the gold result when:
//!
//! 1. **Result cardinality** — both results are non-empty and have the same
//!    number of tuples;
//! 2. **Projection completeness** — every gold column has a corresponding
//!    predicted column (the predicted column set is a *superset* of the gold
//!    column set); correspondence is established by value comparison, not by
//!    name, because aliases differ;
//! 3. the tuples agree row-wise on the matched columns once both sides are
//!    sorted consistently (tuple order is not required unless the question
//!    demands one).

use snails_engine::{ResultSet, Value};
use std::cmp::Ordering;

/// The execution-comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionOutcome {
    /// Superset match: the prediction is (provisionally) correct.
    Match,
    /// Result sets differ.
    NoMatch,
    /// A result set was empty — tagged undetermined by the paper and ruled
    /// incorrect for accuracy purposes (gold queries never return empty).
    EmptyResult,
}

impl ExecutionOutcome {
    /// True when the outcome counts as correct before manual audit.
    pub fn is_match(&self) -> bool {
        matches!(self, ExecutionOutcome::Match)
    }
}

/// Loose per-value agreement: numeric cross-type equality within epsilon
/// (COUNT renders Int, SUM may be Float), exact `total_cmp` otherwise.
fn values_agree(x: &Value, y: &Value) -> bool {
    match (x.as_f64(), y.as_f64()) {
        (Some(p), Some(q)) => (p - q).abs() < 1e-9,
        _ => x.total_cmp(y) == Ordering::Equal && x.is_null() == y.is_null(),
    }
}

/// Sort key comparison for whole rows.
fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Row indices `0..rows` ordered by the value in column `col` — a sorted
/// view of the column without cloning any values.
fn column_order(rs: &ResultSet, col: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..rs.row_count()).collect();
    idx.sort_by(|&a, &b| rs.rows[a][col].total_cmp(&rs.rows[b][col]));
    idx
}

/// Multiset equality between two columns, each given as (result set, column
/// index, sorted row order). Both orders come from [`column_order`], so the
/// pairwise walk sees each column ascending.
fn columns_match(
    gold: &ResultSet,
    gi: usize,
    g_order: &[usize],
    pred: &ResultSet,
    pj: usize,
    p_order: &[usize],
) -> bool {
    g_order.len() == p_order.len()
        && g_order
            .iter()
            .zip(p_order)
            .all(|(&gr, &pr)| values_agree(&gold.rows[gr][gi], &pred.rows[pr][pj]))
}

/// Find an injective assignment of gold columns to predicted columns such
/// that each pair matches as a multiset, by backtracking over the (small)
/// candidate sets.
fn assign_columns(gold: &ResultSet, predicted: &ResultSet) -> Option<Vec<usize>> {
    let g_orders: Vec<Vec<usize>> = (0..gold.column_count())
        .map(|i| column_order(gold, i))
        .collect();
    let p_orders: Vec<Vec<usize>> = (0..predicted.column_count())
        .map(|j| column_order(predicted, j))
        .collect();
    let candidates: Vec<Vec<usize>> = g_orders
        .iter()
        .enumerate()
        .map(|(i, g_order)| {
            (0..p_orders.len())
                .filter(|&j| columns_match(gold, i, g_order, predicted, j, &p_orders[j]))
                .collect()
        })
        .collect();
    fn backtrack(
        candidates: &[Vec<usize>],
        i: usize,
        used: &mut Vec<bool>,
        assignment: &mut Vec<usize>,
    ) -> bool {
        if i == candidates.len() {
            return true;
        }
        for &j in &candidates[i] {
            if !used[j] {
                used[j] = true;
                assignment.push(j);
                if backtrack(candidates, i + 1, used, assignment) {
                    return true;
                }
                assignment.pop();
                used[j] = false;
            }
        }
        false
    }
    let mut used = vec![false; p_orders.len()];
    let mut assignment = Vec::with_capacity(g_orders.len());
    backtrack(&candidates, 0, &mut used, &mut assignment).then_some(assignment)
}

/// Superset-match a predicted result set against the gold result set.
pub fn match_result_sets(gold: &ResultSet, predicted: &ResultSet) -> ExecutionOutcome {
    if gold.is_empty() || predicted.is_empty() {
        return ExecutionOutcome::EmptyResult;
    }
    if gold.row_count() != predicted.row_count() {
        return ExecutionOutcome::NoMatch;
    }
    let Some(assignment) = assign_columns(gold, predicted) else {
        return ExecutionOutcome::NoMatch;
    };
    // Row-wise verification on the matched columns: sort *index
    // permutations* of both sides — the gold rows by their full tuples, the
    // predicted rows viewed through the assignment — then walk the
    // permutations in lockstep. No row is cloned or rebuilt; the predicted
    // projection exists only as the `assignment` indirection. Both sorts are
    // stable with the same `total_cmp`-lexicographic comparator the cloning
    // version used, so the visited value sequences (and verdict) are
    // identical.
    let mut gold_perm: Vec<usize> = (0..gold.row_count()).collect();
    gold_perm.sort_by(|&a, &b| cmp_rows(&gold.rows[a], &gold.rows[b]));
    let mut pred_perm: Vec<usize> = (0..predicted.row_count()).collect();
    pred_perm.sort_by(|&a, &b| {
        let (ra, rb) = (&predicted.rows[a], &predicted.rows[b]);
        assignment
            .iter()
            .map(|&j| ra[j].total_cmp(&rb[j]))
            .find(|&ord| ord != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
    let all_equal = gold_perm.iter().zip(&pred_perm).all(|(&gr, &pr)| {
        gold.rows[gr]
            .iter()
            .zip(&assignment)
            .all(|(x, &j)| values_agree(x, &predicted.rows[pr][j]))
    });
    if all_equal {
        ExecutionOutcome::Match
    } else {
        ExecutionOutcome::NoMatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(columns: &[&str], rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet { columns: columns.iter().map(|c| c.to_string()).collect(), rows }
    }

    #[test]
    fn identical_results_match() {
        let gold = rs(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(match_result_sets(&gold, &gold), ExecutionOutcome::Match);
    }

    #[test]
    fn row_order_ignored() {
        let gold = rs(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let pred = rs(&["a"], vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::Match);
    }

    #[test]
    fn superset_columns_tolerated() {
        // Predicted projects an extra column; still a match (relaxed
        // execution matching, appendix E.2).
        let gold = rs(&["n"], vec![vec![Value::Int(5)]]);
        let pred = rs(
            &["extra", "n"],
            vec![vec![Value::from("x"), Value::Int(5)]],
        );
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::Match);
    }

    #[test]
    fn missing_gold_column_fails() {
        let gold = rs(
            &["a", "b"],
            vec![vec![Value::Int(1), Value::from("x")]],
        );
        let pred = rs(&["a"], vec![vec![Value::Int(1)]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::NoMatch);
    }

    #[test]
    fn cardinality_mismatch_fails() {
        let gold = rs(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let pred = rs(&["a"], vec![vec![Value::Int(1)]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::NoMatch);
    }

    #[test]
    fn empty_results_undetermined() {
        let gold = rs(&["a"], vec![vec![Value::Int(1)]]);
        let empty = rs(&["a"], vec![]);
        assert_eq!(match_result_sets(&gold, &empty), ExecutionOutcome::EmptyResult);
        assert_eq!(match_result_sets(&empty, &gold), ExecutionOutcome::EmptyResult);
        assert!(!ExecutionOutcome::EmptyResult.is_match());
    }

    #[test]
    fn column_names_irrelevant() {
        let gold = rs(&["count"], vec![vec![Value::Int(7)]]);
        let pred = rs(&["totally_different_alias"], vec![vec![Value::Int(7)]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::Match);
    }

    #[test]
    fn numeric_cross_type_equality() {
        let gold = rs(&["s"], vec![vec![Value::Int(10)]]);
        let pred = rs(&["s"], vec![vec![Value::Float(10.0)]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::Match);
    }

    #[test]
    fn wrong_values_fail() {
        let gold = rs(&["a"], vec![vec![Value::Int(1)]]);
        let pred = rs(&["a"], vec![vec![Value::Int(2)]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::NoMatch);
    }

    #[test]
    fn correlated_rows_required() {
        // Column multisets match individually, but the tuples pair values
        // differently — must NOT match.
        let gold = rs(
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::from("x")],
                vec![Value::Int(2), Value::from("y")],
            ],
        );
        let pred = rs(
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::from("y")],
                vec![Value::Int(2), Value::from("x")],
            ],
        );
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::NoMatch);
    }

    #[test]
    fn duplicate_column_values_need_injective_assignment() {
        // Gold has two identical columns; predicted has only one copy.
        let gold = rs(
            &["a", "a2"],
            vec![vec![Value::Int(1), Value::Int(1)]],
        );
        let pred = rs(&["a"], vec![vec![Value::Int(1)]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::NoMatch);
        // With two copies available, it matches.
        let pred2 = rs(
            &["x", "y"],
            vec![vec![Value::Int(1), Value::Int(1)]],
        );
        assert_eq!(match_result_sets(&gold, &pred2), ExecutionOutcome::Match);
    }

    #[test]
    fn null_handling() {
        let gold = rs(&["a"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let pred = rs(&["a"], vec![vec![Value::Int(1)], vec![Value::Null]]);
        assert_eq!(match_result_sets(&gold, &pred), ExecutionOutcome::Match);
        let pred_no_null = rs(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        assert_eq!(match_result_sets(&gold, &pred_no_null), ExecutionOutcome::NoMatch);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rs(rows: usize, cols: usize) -> impl Strategy<Value = ResultSet> {
        proptest::collection::vec(
            proptest::collection::vec(-5i64..5, cols..=cols),
            rows..=rows,
        )
        .prop_map(move |data| ResultSet {
            columns: (0..cols).map(|i| format!("c{i}")).collect(),
            rows: data
                .into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
        })
    }

    proptest! {
        /// Matching is reflexive for non-empty results.
        #[test]
        fn reflexive(rs in arb_rs(3, 2)) {
            prop_assert_eq!(match_result_sets(&rs, &rs), ExecutionOutcome::Match);
        }

        /// Shuffling predicted rows never changes the verdict.
        #[test]
        fn row_order_invariant(rs in arb_rs(4, 2), seed in 0usize..24) {
            let mut shuffled = rs.clone();
            let len = shuffled.rows.len().max(1);
            shuffled.rows.rotate_left(seed % len);
            prop_assert_eq!(match_result_sets(&rs, &shuffled), ExecutionOutcome::Match);
        }

        /// Adding a predicted column never turns a match into a non-match.
        #[test]
        fn superset_monotone(rs in arb_rs(3, 2), extra in proptest::collection::vec(-5i64..5, 3)) {
            let mut bigger = rs.clone();
            bigger.columns.push("extra".into());
            for (row, v) in bigger.rows.iter_mut().zip(&extra) {
                row.push(Value::Int(*v));
            }
            prop_assert_eq!(match_result_sets(&rs, &bigger), ExecutionOutcome::Match);
        }
    }
}
