//! End-to-end pipeline tests asserting the paper's headline findings (§5):
//! naturalness degrades schema linking and execution accuracy, weak models
//! are more sensitive, and the Kendall-τ correlations carry the paper's
//! signs at high significance.

use snails::core::result_figures::{tau_table, TauMeasure, TauOutcome};
use snails::eval::kendall_tau_b;
use snails::prelude::*;

fn run_two_db_benchmark() -> (Vec<SnailsDatabase>, BenchmarkRun) {
    let collection = vec![build_database("KIS"), build_database("NTSB")];
    let config = BenchmarkConfig {
        seed: 2024,
        databases: vec!["KIS".into(), "NTSB".into()],
        variants: SchemaVariant::ALL.to_vec(),
        workflows: Workflow::all(),
        threads: None,
        ..BenchmarkConfig::default()
    };
    let run = run_benchmark_on(&collection, &config);
    (collection, run)
}

#[test]
fn headline_findings_hold() {
    let (_, run) = run_two_db_benchmark();
    assert_eq!(run.records.len(), (40 + 100) * 4 * 6);

    // Finding 1 (Figure 8/10): Least-variant performance is worse than
    // Regular for every workflow, on both metrics.
    for wf in [
        "gemini-1.5-pro",
        "gpt-4o",
        "DINSQL",
        "gpt-3.5",
        "Phind-CodeLlama-34B-v2",
        "CodeS",
    ] {
        let by = |variant: SchemaVariant| {
            run.records
                .iter()
                .filter(|r| r.workflow == wf && r.variant == variant)
                .collect::<Vec<_>>()
        };
        let regular = by(SchemaVariant::Regular);
        let least = by(SchemaVariant::Least);
        let acc_r = BenchmarkRun::exec_accuracy(regular.iter().copied());
        let acc_l = BenchmarkRun::exec_accuracy(least.iter().copied());
        assert!(acc_r > acc_l, "{wf}: exec acc Regular {acc_r} !> Least {acc_l}");
        let rec_r = BenchmarkRun::mean_recall(regular.iter().copied());
        let rec_l = BenchmarkRun::mean_recall(least.iter().copied());
        assert!(rec_r > rec_l, "{wf}: recall Regular {rec_r} !> Least {rec_l}");
    }

    // Finding 2 (§5.2): the Regular→Least recall drop is substantial
    // (the paper reports ≈20%) for the open-source models.
    for wf in ["Phind-CodeLlama-34B-v2", "CodeS"] {
        let rec = |v: SchemaVariant| {
            BenchmarkRun::mean_recall(
                run.records.iter().filter(|r| r.workflow == wf && r.variant == v),
            )
        };
        let drop = rec(SchemaVariant::Regular) - rec(SchemaVariant::Least);
        assert!(drop > 0.12, "{wf}: Regular→Least recall drop only {drop:.3}");
    }

    // Finding 3 (§6): open-source models are more naturalness-sensitive
    // than the top closed models.
    let sensitivity = |wf: &str| {
        let rec = |v: SchemaVariant| {
            BenchmarkRun::mean_recall(
                run.records.iter().filter(|r| r.workflow == wf && r.variant == v),
            )
        };
        rec(SchemaVariant::Regular) - rec(SchemaVariant::Least)
    };
    assert!(
        sensitivity("Phind-CodeLlama-34B-v2") > sensitivity("gpt-4o"),
        "phind {} !> gpt-4o {}",
        sensitivity("Phind-CodeLlama-34B-v2"),
        sensitivity("gpt-4o")
    );

    // Finding 4 (tables 32b, 37b): combined naturalness correlates
    // positively with recall, Least proportion negatively, significantly,
    // for every workflow.
    for wf in ["gpt-4o", "gpt-3.5", "CodeS"] {
        let records: Vec<_> = run.records.iter().filter(|r| r.workflow == wf).collect();
        let xs: Vec<f64> = records
            .iter()
            .filter(|r| r.linking.is_some())
            .map(|r| r.measures.combined)
            .collect();
        let ys: Vec<f64> = records
            .iter()
            .filter_map(|r| r.linking.map(|l| l.recall))
            .collect();
        let k = kendall_tau_b(&xs, &ys).expect("correlation defined");
        assert!(k.tau > 0.0, "{wf}: combined-recall τ = {}", k.tau);
        assert!(k.p_value < 0.01, "{wf}: p = {}", k.p_value);

        let xs_least: Vec<f64> = records
            .iter()
            .filter(|r| r.linking.is_some())
            .map(|r| r.measures.prop_least)
            .collect();
        let k2 = kendall_tau_b(&xs_least, &ys).expect("correlation defined");
        assert!(k2.tau < 0.0, "{wf}: least-recall τ = {}", k2.tau);
        assert!(k2.p_value < 0.01, "{wf}: p = {}", k2.p_value);
    }
}

#[test]
fn low_combined_databases_improve_with_regular_renaming() {
    // §5.1: "for databases with Native schema combined naturalness scores
    // less than 0.69, modifying the schema identifiers to increase
    // naturalness improves execution accuracy." NTSB is such a database.
    let (collection, run) = run_two_db_benchmark();
    let ntsb = collection.iter().find(|d| d.spec.name == "NTSB").unwrap();
    assert!(ntsb.combined_naturalness() < 0.69);
    let acc = |v: SchemaVariant| {
        BenchmarkRun::exec_accuracy(
            run.records
                .iter()
                .filter(|r| r.database == "NTSB" && r.variant == v),
        )
    };
    assert!(
        acc(SchemaVariant::Regular) > acc(SchemaVariant::Native),
        "NTSB: Regular {} !> Native {}",
        acc(SchemaVariant::Regular),
        acc(SchemaVariant::Native)
    );
}

#[test]
fn tau_tables_render_for_full_workflow_set() {
    let (_, run) = run_two_db_benchmark();
    let t = tau_table(&run, TauMeasure::MeanTcr, TauOutcome::Recall, false);
    // Token-to-character ratio correlates NEGATIVELY with recall (tables
    // 31a/31b) for every model.
    for line in t.lines().skip(3) {
        let tau: f64 = line
            .split_whitespace()
            .rev()
            .nth(2)
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::NAN);
        assert!(tau < 0.0, "non-negative TCR correlation: {line}");
    }
}

#[test]
fn subsetting_metrics_present_only_for_chained_workflows() {
    let (_, run) = run_two_db_benchmark();
    for r in &run.records {
        match r.workflow {
            "DINSQL" | "CodeS" => assert!(r.subset.is_some()),
            _ => assert!(r.subset.is_none()),
        }
    }
}
