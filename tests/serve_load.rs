//! End-to-end smoke of the `snails serve` / `snails load` pair through the
//! real binary and a real unix socket (ISSUE 10 acceptance): a serial
//! server comes up, a lockstep load completes with zero dropped requests
//! and a stable transcript hash, and a shutdown frame drains the server to
//! a truthful `Goodbye`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("snails-serve-e2e-{}-{tag}.sock", std::process::id()))
}

fn spawn_serve(socket: &Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_snails"))
        .arg("serve")
        .arg("--socket")
        .arg(socket)
        .args(["--dbs", "CWO", "--tenants", "alpha,beta"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn snails serve")
}

fn wait_for_socket(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "server never bound {}", socket.display());
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn run_load(socket: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_snails"))
        .arg("load")
        .arg("--socket")
        .arg(socket)
        .args(["--dbs", "CWO", "--tenants", "alpha,beta"])
        .args(extra)
        .output()
        .expect("spawn snails load")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Pull `"key":value` (or `"key":"value"`) out of a stage line without a
/// JSON parser.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len()..];
    rest.split([',', '}']).next().expect("field value").trim_matches('"')
}

#[test]
fn serve_and_load_over_a_unix_socket_end_to_end() {
    let socket = socket_path("serial");
    let _ = std::fs::remove_file(&socket);
    let mut server = spawn_serve(&socket, &["--serial"]);
    wait_for_socket(&socket);

    // Two identical lockstep drives: zero dropped requests, and — because
    // the server is serial and every response is a pure function of
    // (tenant state, request, seed) — the same transcript hash.
    let first = run_load(&socket, &["--clients", "5", "--requests", "3"]);
    assert!(first.status.success(), "load failed: {}", String::from_utf8_lossy(&first.stderr));
    let line1 = stdout_of(&first);
    assert_eq!(field(&line1, "dropped"), "0");
    assert_eq!(field(&line1, "total"), "15");

    let second = run_load(&socket, &["--clients", "5", "--requests", "3"]);
    assert!(second.status.success());
    let line2 = stdout_of(&second);
    assert_eq!(
        field(&line1, "transcript_hash"),
        field(&line2, "transcript_hash"),
        "replay against the live server diverged"
    );

    // Third drive shuts the server down over its own wire; the Goodbye
    // count equals every admitted request across all three drives.
    let last = run_load(&socket, &["--clients", "5", "--requests", "3", "--shutdown"]);
    assert!(last.status.success(), "load failed: {}", String::from_utf8_lossy(&last.stderr));
    let out = stdout_of(&last);
    assert_eq!(field(&out, "dropped"), "0");
    let shutdown_line = out.lines().find(|l| l.contains("\"shutdown\"")).expect("shutdown line");
    assert_eq!(field(shutdown_line, "responses"), "45", "Goodbye must report all responses");

    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited nonzero");
    let mut server_out = String::new();
    use std::io::Read;
    server.stdout.take().expect("stdout piped").read_to_string(&mut server_out).expect("read");
    assert!(server_out.contains("\"serve\":\"ready\""));
    assert!(server_out.contains("\"serve\":\"goodbye\",\"responses\":45"));
    assert!(!socket.exists(), "server must remove its socket file on exit");
}

#[test]
fn concurrent_server_matches_the_serial_transcript() {
    // The same workload against a worker-driven (non-serial) server must
    // produce the same lockstep transcript bytes — the cross-mode face of
    // the determinism contract, through the real binary.
    let serial_sock = socket_path("xser");
    let worker_sock = socket_path("xcon");
    let _ = std::fs::remove_file(&serial_sock);
    let _ = std::fs::remove_file(&worker_sock);
    let mut serial = spawn_serve(&serial_sock, &["--serial"]);
    let mut workers = spawn_serve(&worker_sock, &["--threads", "2"]);
    wait_for_socket(&serial_sock);
    wait_for_socket(&worker_sock);

    let load_args = ["--clients", "4", "--requests", "2", "--shutdown"];
    let a = run_load(&serial_sock, &load_args);
    let b = run_load(&worker_sock, &load_args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        field(&stdout_of(&a), "transcript_hash"),
        field(&stdout_of(&b), "transcript_hash"),
        "serial and worker-driven servers must serve identical bytes"
    );
    assert!(serial.wait().expect("serial exit").success());
    assert!(workers.wait().expect("worker exit").success());
}
