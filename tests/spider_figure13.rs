//! Figure 13 integration test: the Spider-sim collection renamed with the
//! SNAILS artifacts shows the paper's pattern — effects largest between Low
//! and Least.

use snails::core::pipeline::{run_benchmark_on, BenchmarkConfig, BenchmarkRun};
use snails::prelude::*;

#[test]
fn spider_renaming_reproduces_figure_13() {
    let spider = snails::data::spider::build_spider();
    let config = BenchmarkConfig {
        seed: 2024,
        databases: spider.iter().map(|d| d.spec.name.to_string()).collect(),
        variants: SchemaVariant::ALL.to_vec(),
        workflows: vec![
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::ZeroShot(ModelKind::Gpt35),
            Workflow::ZeroShot(ModelKind::PhindCodeLlama),
        ],
        threads: None,
        ..BenchmarkConfig::default()
    };
    let run = run_benchmark_on(&spider, &config);
    assert_eq!(run.records.len(), 80 * 4 * 3);

    let recall = |v: SchemaVariant| {
        BenchmarkRun::mean_recall(run.records.iter().filter(|r| r.variant == v))
    };
    let acc = |v: SchemaVariant| {
        BenchmarkRun::exec_accuracy(run.records.iter().filter(|r| r.variant == v))
    };

    // Spider is highly natural: Native ≈ Regular, both high.
    assert!(
        (recall(SchemaVariant::Native) - recall(SchemaVariant::Regular)).abs() < 0.12,
        "native {:.3} vs regular {:.3}",
        recall(SchemaVariant::Native),
        recall(SchemaVariant::Regular)
    );

    // The biggest drop is between Low and Least (Figure 13).
    let drop_regular_low = recall(SchemaVariant::Regular) - recall(SchemaVariant::Low);
    let drop_low_least = recall(SchemaVariant::Low) - recall(SchemaVariant::Least);
    assert!(
        drop_low_least > 0.0,
        "no Low→Least drop: {drop_low_least:.3}"
    );
    assert!(
        drop_low_least + 0.05 > drop_regular_low,
        "Low→Least drop ({drop_low_least:.3}) should rival Regular→Low ({drop_regular_low:.3})"
    );

    // Execution accuracy falls monotonically from Regular to Least.
    assert!(acc(SchemaVariant::Regular) > acc(SchemaVariant::Least));
}
