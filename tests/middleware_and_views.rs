//! Integration tests for the two practitioner deployment options of
//! appendix H.2: naturalization middleware and natural views.

use snails::llm::middleware::{denaturalize, naturalize_prompt};
use snails::llm::views::naturalize_database;
use snails::prelude::*;

#[test]
fn middleware_round_trips_gold_queries_on_all_variants() {
    for name in ["ASIS", "NYSED"] {
        let db = build_database(name);
        for variant in [SchemaVariant::Regular, SchemaVariant::Low, SchemaVariant::Least] {
            let fwd = db.crosswalk.native_to_variant(variant);
            for pair in db.questions.iter().take(15) {
                let modified = snails::sql::denaturalize_query(&pair.sql, &fwd)
                    .unwrap_or_else(|e| panic!("{name} q{} naturalize: {e}", pair.id));
                let back = denaturalize(&db, variant, &modified)
                    .unwrap_or_else(|e| panic!("{name} q{} denaturalize: {e}", pair.id));
                assert_eq!(
                    back.to_ascii_uppercase(),
                    snails::sql::normalize(&pair.sql).unwrap().to_ascii_uppercase(),
                    "{name} q{} round trip via {variant}",
                    pair.id
                );
                // The round-tripped query still executes with the gold rows.
                let gold = run_sql(&db.db, &pair.sql).unwrap();
                let rt = run_sql(&db.db, &back).unwrap();
                assert_eq!(gold.rows, rt.rows, "{name} q{}", pair.id);
            }
        }
    }
}

#[test]
fn naturalized_prompts_contain_no_native_low_identifiers() {
    // A Regular-variant prompt must not leak Least-level native identifiers.
    let db = build_database("SBOD");
    let prompt = naturalize_prompt(&db, SchemaVariant::Regular, "question?");
    for e in db.crosswalk.entries().iter().take(300) {
        if e.native_level == snails::naturalness::Naturalness::Least
            && e.native.len() >= 4
        {
            let needle = format!("{} ", e.native);
            assert!(
                !prompt.contains(&needle),
                "Least native identifier {} leaked into Regular prompt",
                e.native
            );
        }
    }
}

#[test]
fn natural_views_answer_every_core_gold_query() {
    // Install natural views, translate gold queries to Regular names, and
    // execute them through the db_nl views: the results must equal the
    // native results.
    let mut db = build_database("CWO");
    naturalize_database(&mut db).unwrap();
    let to_regular = db.crosswalk.native_to_variant(SchemaVariant::Regular);
    for pair in db.questions.iter().take(20) {
        let regular_sql = snails::sql::denaturalize_query(&pair.sql, &to_regular).unwrap();
        // Views resolve unqualified; the db_nl schema holds every table.
        let via_views = run_sql(&db.db, &regular_sql)
            .unwrap_or_else(|e| panic!("q{} via views: {e}\n{regular_sql}", pair.id));
        let native = run_sql(&db.db, &pair.sql).unwrap();
        assert_eq!(native.rows, via_views.rows, "q{}", pair.id);
    }
}

#[test]
fn prompt_token_budget_depends_on_variant() {
    // Regular prompts spell identifiers out fully; Least prompts are
    // shorter in characters but fragment into comparably many BPE tokens
    // (the appendix B.9 effect).
    use snails::tokenize::{tokenizer_for, TokenizerProfile};
    let db = build_database("PILB");
    let t = tokenizer_for(TokenizerProfile::GptLike);
    let regular = naturalize_prompt(&db, SchemaVariant::Regular, "q?");
    let least = naturalize_prompt(&db, SchemaVariant::Least, "q?");
    assert!(regular.len() > least.len(), "Regular prompt should be longer in chars");
    let tcr = |s: &str| t.token_count(s) as f64 / s.chars().count() as f64;
    assert!(
        tcr(&least) > tcr(&regular),
        "Least prompt should cost more tokens per character"
    );
}
