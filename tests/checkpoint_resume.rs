//! Crash-recovery contract for the sharded, checkpointed grid (PR 7
//! acceptance criteria), driven through the real `snails` binary.
//!
//! A worker killed mid-grid at a deterministic injection point must leave a
//! store that a fresh process resumes into the *byte-identical* manifest of
//! an uninterrupted single-process run — records, fault summary, and the
//! deterministic telemetry section — at any thread count, under both the
//! `none` and `flaky` fault profiles. Disjoint shards merged out of order
//! must produce the same bytes, and a corrupted record must be quarantined
//! and recomputed, never aborting the run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snails-killtest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Run `snails grid` with the given flags, returning the raw process output.
fn grid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_snails"))
        .arg("grid")
        .args(args)
        .output()
        .expect("spawn snails grid")
}

fn merge(out: &Path, manifests: &[&Path]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_snails"));
    cmd.arg("merge").arg("--out").arg(out);
    for m in manifests {
        cmd.arg(m);
    }
    cmd.output().expect("spawn snails merge")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read manifest {}: {e}", path.display()))
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn cell_files(ckpt: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(ckpt.join("cells"))
        .expect("cells dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rec"))
        .collect();
    files.sort();
    files
}

/// The full kill → resume → shard-merge invariant for one fault profile.
fn kill_resume_merge_invariant(profile: &str, kill_after: &str, tag: &str) {
    let dir = scratch(tag);
    let manifest = |name: &str| dir.join(name);
    let prof = ["--fault-profile", profile, "--telemetry"];

    // Uninterrupted single-process reference, plus thread-invariance of the
    // manifest itself (records + faults + deterministic telemetry).
    let clean = manifest("clean.txt");
    let out = grid(&[&prof[..], &["--threads", "8", "--out"], &[clean.to_str().unwrap()]].concat());
    assert!(out.status.success(), "clean run failed: {}", stderr_of(&out));
    let clean_bytes = read(&clean);
    for threads in ["1", "2"] {
        let m = manifest(&format!("clean-t{threads}.txt"));
        let out =
            grid(&[&prof[..], &["--threads", threads, "--out"], &[m.to_str().unwrap()]].concat());
        assert!(out.status.success(), "threads={threads}: {}", stderr_of(&out));
        assert_eq!(read(&m), clean_bytes, "manifest differs at threads={threads}");
    }

    // Kill a checkpointed worker after exactly `kill_after` record writes.
    let ckpt = dir.join("ckpt");
    let killed_out = manifest("killed.txt");
    let out = grid(
        &[
            &prof[..],
            &["--threads", "8", "--ckpt"],
            &[ckpt.to_str().unwrap()],
            &["--kill-after", kill_after, "--out"],
            &[killed_out.to_str().unwrap()],
        ]
        .concat(),
    );
    assert!(!out.status.success(), "kill-injected run must abort");
    assert!(!killed_out.exists(), "aborted run must not write a manifest");
    // The abort fires on the thread that completes the Nth rename; peer
    // threads may land a few more renames in the race window, so the store
    // holds at least N but strictly fewer than all cells.
    let survivors = cell_files(&ckpt).len();
    let expected: usize = kill_after.parse().unwrap();
    assert!(
        survivors >= expected && survivors < 1280,
        "kill@{expected} left {survivors} records"
    );

    // Resume from the survivors in a fresh process at a different thread
    // count: byte-identical to the uninterrupted run, nothing corrupt.
    let resumed = manifest("resumed.txt");
    let out = grid(
        &[
            &prof[..],
            &["--threads", "2", "--ckpt"],
            &[ckpt.to_str().unwrap()],
            &["--out", resumed.to_str().unwrap()],
        ]
        .concat(),
    );
    assert!(out.status.success(), "resume failed: {}", stderr_of(&out));
    let status = stderr_of(&out);
    assert!(status.contains(&format!("\"hits\":{survivors}")), "resume status: {status}");
    assert!(status.contains("\"corrupt\":0"), "resume status: {status}");
    assert_eq!(read(&resumed), clean_bytes, "resumed manifest diverged from clean run");

    // Corrupt one surviving record in the now-complete store: the next run
    // must quarantine + recompute it and still produce the same bytes.
    let victim = &cell_files(&ckpt)[expected / 2];
    let mut bytes = std::fs::read(victim).expect("read victim record");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(victim, &bytes).expect("corrupt victim record");
    let healed = manifest("healed.txt");
    let out = grid(
        &[
            &prof[..],
            &["--threads", "8", "--ckpt"],
            &[ckpt.to_str().unwrap()],
            &["--out", healed.to_str().unwrap()],
        ]
        .concat(),
    );
    assert!(out.status.success(), "corrupt record must not abort: {}", stderr_of(&out));
    let status = stderr_of(&out);
    assert!(status.contains("\"corrupt\":1"), "corruption not detected: {status}");
    assert_eq!(read(&healed), clean_bytes, "healed manifest diverged from clean run");
    assert!(
        ckpt.join("quarantine").read_dir().is_ok_and(|mut d| d.next().is_some()),
        "corrupt record was not quarantined"
    );

    // Disjoint shards at mixed thread counts, merged out of order.
    let shards: Vec<PathBuf> = (0..2)
        .map(|i| {
            let m = manifest(&format!("shard{i}.txt"));
            let shard = format!("{i}/2");
            let threads = if i == 0 { "1" } else { "8" };
            let out = grid(
                &[
                    &prof[..],
                    &["--threads", threads, "--shard", &shard],
                    &["--out", m.to_str().unwrap()],
                ]
                .concat(),
            );
            assert!(out.status.success(), "shard {shard} failed: {}", stderr_of(&out));
            m
        })
        .collect();
    let merged = manifest("merged.txt");
    let out = merge(&merged, &[&shards[1], &shards[0]]);
    assert!(out.status.success(), "merge failed: {}", stderr_of(&out));
    assert_eq!(read(&merged), clean_bytes, "merged manifest diverged from clean run");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_resume_merge_is_byte_identical_without_faults() {
    kill_resume_merge_invariant("none", "64", "none");
}

#[test]
fn kill_resume_merge_is_byte_identical_under_flaky_faults() {
    kill_resume_merge_invariant("flaky", "640", "flaky");
}

#[test]
fn merge_rejects_incomplete_and_mismatched_shards() {
    let dir = scratch("reject");
    let shard0 = dir.join("s0.txt");
    let out = grid(&["--shard", "0/2", "--threads", "4", "--out", shard0.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    // One shard of two: the merge must refuse to fabricate the other half.
    let merged = dir.join("m.txt");
    let out = merge(&merged, &[&shard0]);
    assert!(!out.status.success(), "merging an incomplete shard set must fail");
    assert!(!merged.exists());

    // A duplicated shard is just as incomplete.
    let out = merge(&merged, &[&shard0, &shard0]);
    assert!(!out.status.success(), "merging a duplicated shard must fail");

    // Mismatched grids (different seed → different fingerprint) must not mix.
    let other = dir.join("other.txt");
    let out = grid(&["--seed", "7", "--shard", "1/2", "--threads", "4", "--out",
        other.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = merge(&merged, &[&shard0, &other]);
    assert!(!out.status.success(), "merging across grid fingerprints must fail");
    let msg = stderr_of(&out);
    assert!(msg.contains("fingerprint"), "error should name the mismatch: {msg}");

    let _ = std::fs::remove_dir_all(&dir);
}
