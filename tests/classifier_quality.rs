//! Classifier-quality integration tests (Table 5 ordering and §2.2 usage).

use snails::data::schemapile;
use snails::naturalness::{
    evaluate_classifier, Classifier, FeatureConfig, FewShotClassifier, HeuristicClassifier,
    SoftmaxClassifier, TrainConfig,
};

#[test]
fn table5_ordering_reproduced() {
    let collection = schemapile::labeled_identifiers(0xC2, 6_000);
    let train = &collection[..4_000];
    let test = &collection[4_000..];

    let heuristic = evaluate_classifier(&HeuristicClassifier::default(), test);
    let fewshot = evaluate_classifier(
        &FewShotClassifier::from_examples("fs", train, 25, FeatureConfig::default()),
        test,
    );
    let finetuned_plain = evaluate_classifier(
        &SoftmaxClassifier::train(
            "ft",
            train,
            TrainConfig { features: FeatureConfig::without_tagging(), ..Default::default() },
        ),
        test,
    );
    let finetuned_tg = evaluate_classifier(
        &SoftmaxClassifier::train("ft+tg", train, TrainConfig::default()),
        test,
    );

    // Table 5 ordering: heuristic / few-shot < finetuned; +TG helps.
    assert!(
        finetuned_tg.accuracy > fewshot.accuracy,
        "finetuned {:.3} !> fewshot {:.3}",
        finetuned_tg.accuracy,
        fewshot.accuracy
    );
    assert!(
        finetuned_tg.accuracy > heuristic.accuracy,
        "finetuned {:.3} !> heuristic {:.3}",
        finetuned_tg.accuracy,
        heuristic.accuracy
    );
    assert!(
        finetuned_tg.f1 >= finetuned_plain.f1 - 0.01,
        "+TG hurt F1: {:.3} vs {:.3}",
        finetuned_tg.f1,
        finetuned_plain.f1
    );
    // The paper's best classifiers reach ≈0.89–0.90 accuracy; ours must be
    // in that regime on its own (synthetic) labeled set.
    assert!(
        finetuned_tg.accuracy > 0.80,
        "best classifier only {:.3}",
        finetuned_tg.accuracy
    );
}

#[test]
fn classifier_generalizes_to_benchmark_schemas() {
    // Classify the CWO native identifiers with a classifier trained on the
    // synthetic collection; agreement with gold levels should be strong.
    let collection = schemapile::labeled_identifiers(0xC2, 8_000);
    let clf = SoftmaxClassifier::train("ref", &collection, TrainConfig::default());
    let db = snails::data::build_database("CWO");
    let mut agree = 0usize;
    let mut total = 0usize;
    for (name, gold_level) in db.identifier_levels() {
        total += 1;
        if clf.classify(&name) == gold_level {
            agree += 1;
        }
    }
    let accuracy = agree as f64 / total as f64;
    assert!(accuracy > 0.6, "schema classification accuracy {accuracy:.3}");
}
