//! Cross-crate invariants of the benchmark artifacts (Artifacts 1, 4, 6):
//! every database builds to its Table 2 shape, every gold query executes
//! non-empty, and every crosswalk is a per-level bijection covering the
//! schema.

use snails::prelude::*;
use std::collections::HashSet;

#[test]
fn all_nine_databases_match_table_2() {
    // (name, tables, columns, questions) — Table 2 verbatim.
    let expected = [
        ("ASIS", 36, 245, 40),
        ("ATBI", 28, 192, 40),
        ("CWO", 13, 71, 40),
        ("KIS", 18, 157, 40),
        ("NPFM", 27, 190, 40),
        ("NTSB", 40, 1611, 100),
        ("NYSED", 27, 423, 63),
        ("PILB", 21, 196, 40),
        ("SBOD", 2588, 90_477, 100),
    ];
    let mut total_questions = 0;
    for (name, tables, columns, questions) in expected {
        let db = build_database(name);
        assert_eq!(db.db.table_count(), tables, "{name} tables");
        assert_eq!(db.db.column_count(), columns, "{name} columns");
        assert_eq!(db.questions.len(), questions, "{name} questions");
        total_questions += questions;
    }
    assert_eq!(total_questions, 503, "Artifact 6 has 503 NL-SQL pairs");
}

#[test]
fn gold_queries_execute_non_empty_everywhere() {
    // The Artifact-6 invariant over the databases not covered by unit tests
    // (including the two largest).
    for name in ["CWO", "NTSB", "SBOD"] {
        let db = build_database(name);
        for pair in &db.questions {
            let rs = run_sql(&db.db, &pair.sql)
                .unwrap_or_else(|e| panic!("{name} q{}: {e}\n{}", pair.id, pair.sql));
            assert!(!rs.is_empty(), "{name} q{} returned no rows: {}", pair.id, pair.sql);
        }
    }
}

#[test]
fn crosswalks_cover_schemas_and_are_bijective() {
    for name in ["ASIS", "NTSB", "SBOD"] {
        let db = build_database(name);
        // Coverage: every schema identifier has an entry.
        for id in db.db.identifier_names() {
            assert!(db.crosswalk.entry(&id).is_some(), "{name}: {id} uncovered");
        }
        // Per-level bijectivity (case-insensitive).
        for level in 0..3 {
            let mut seen = HashSet::new();
            for e in db.crosswalk.entries() {
                assert!(
                    seen.insert(e.renderings[level].to_ascii_uppercase()),
                    "{name}: level {level} collision on {}",
                    e.renderings[level]
                );
            }
        }
        // Self-mapping at native level (§2.3).
        for e in db.crosswalk.entries() {
            assert_eq!(e.renderings[e.native_level.index()], e.native, "{name}");
        }
    }
}

#[test]
fn native_combined_naturalness_matches_figure_5() {
    // Figure 5 / appendix A combined-naturalness targets, ±0.06 generation
    // tolerance.
    let targets = [
        ("ASIS", 0.77),
        ("ATBI", 0.70),
        ("CWO", 0.84),
        ("KIS", 0.79),
        ("NPFM", 0.70),
        ("NTSB", 0.59),
        ("NYSED", 0.68),
        ("PILB", 0.76),
        ("SBOD", 0.49),
    ];
    for (name, target) in targets {
        let db = build_database(name);
        let combined = db.combined_naturalness();
        assert!(
            (combined - target).abs() < 0.06,
            "{name}: combined {combined:.3} vs Figure 5 target {target}"
        );
    }
}

#[test]
fn database_ordering_by_naturalness_is_preserved() {
    // CWO is the most natural schema; SBOD the least (§3.1 / appendix A).
    let cwo = build_database("CWO").combined_naturalness();
    let sbod = build_database("SBOD").combined_naturalness();
    let ntsb = build_database("NTSB").combined_naturalness();
    assert!(cwo > ntsb && ntsb > sbod, "cwo {cwo} ntsb {ntsb} sbod {sbod}");
}

#[test]
fn gold_clause_distribution_tracks_table_3() {
    // Spot-check two signature Table 3 cells: NTSB is the composite-key-join
    // database (21 CK joins); SBOD has no EXISTS/negation/subqueries.
    let ntsb = build_database("NTSB");
    let ck = ntsb
        .questions
        .iter()
        .filter(|q| {
            snails::sql::clause_profile(&snails::sql::parse(&q.sql).unwrap())
                .composite_key_joins
                > 0
        })
        .count();
    assert_eq!(ck, 21, "NTSB CK joins");

    let sbod = build_database("SBOD");
    for q in &sbod.questions {
        let p = snails::sql::clause_profile(&snails::sql::parse(&q.sql).unwrap());
        assert_eq!(p.exists, 0, "SBOD q{} has EXISTS", q.id);
        assert!(!p.negation, "SBOD q{} has negation", q.id);
    }
}

#[test]
fn data_dictionaries_resolve_least_identifiers() {
    // The RAG expander must be able to recover Regular names for Least
    // identifiers using the generated data dictionary (appendix C.2).
    let db = build_database("NTSB");
    let meta = snails::modify::MetadataIndex::from_text(&db.data_dictionary);
    let expander = Expander::with_metadata(meta);
    let mut tested = 0;
    let mut recovered = 0;
    for e in db.crosswalk.entries() {
        if e.native_level == snails::naturalness::Naturalness::Least && tested < 50 {
            tested += 1;
            let expanded = expander.expand_identifier(&e.native);
            // Success = the expansion matches the Regular rendering's words
            // (ignoring crosswalk deduplication suffixes like `_2`).
            let want = e.renderings[0]
                .trim_end_matches(|c: char| c.is_ascii_digit())
                .trim_end_matches('_');
            if expanded.eq_ignore_ascii_case(want) {
                recovered += 1;
            }
        }
    }
    assert!(tested > 10, "not enough Least identifiers to test");
    assert!(
        recovered * 2 >= tested,
        "expander recovered only {recovered}/{tested}"
    );
}
