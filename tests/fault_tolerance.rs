//! End-to-end fault-tolerance contract (PR 2 acceptance criteria).
//!
//! Under an active fault profile the full benchmark grid must complete with
//! zero process aborts: every injected timeout, rate limit, corrupted
//! completion, and panic either retries to success or lands as a
//! `QueryRecord` carrying a `FailureKind` — and the whole run stays
//! bit-identical across thread counts and identical to a faultless build
//! when the profile is `none`.

use snails::prelude::*;

fn base_config(threads: usize, profile: FaultProfile) -> BenchmarkConfig {
    BenchmarkConfig {
        seed: 2024,
        databases: vec!["CWO".into(), "KIS".into()],
        variants: SchemaVariant::ALL.to_vec(),
        workflows: Workflow::all(),
        threads: Some(threads),
        fault_profile: profile,
        ..BenchmarkConfig::default()
    }
}

#[test]
fn flaky_grid_is_bit_identical_across_thread_counts() {
    let baseline = run_benchmark(&base_config(1, FaultProfile::FLAKY));
    assert_eq!(baseline.faults.cells, baseline.records.len(), "no aborted cells");
    for threads in [2, 8] {
        let run = run_benchmark(&base_config(threads, FaultProfile::FLAKY));
        assert_eq!(run.records.len(), baseline.records.len(), "threads = {threads}");
        for (i, (a, b)) in baseline.records.iter().zip(&run.records).enumerate() {
            assert_eq!(a, b, "record {i} diverged at threads = {threads}");
        }
        assert_eq!(run.faults, baseline.faults, "threads = {threads}");
    }
}

#[test]
fn none_profile_reproduces_the_faultless_records() {
    // `--fault-profile none` must be byte-identical to a run that predates
    // the fault layer: no retries, no failures, attempts pinned at 1, and
    // the evaluation outcomes untouched.
    let run = run_benchmark(&base_config(2, FaultProfile::NONE));
    assert_eq!(run.faults.retries, 0);
    assert_eq!(run.faults.breaker_trips, 0);
    assert_eq!(run.faults.total_failures(), 0);
    for r in &run.records {
        assert_eq!(r.failure, None);
        assert_eq!(r.attempts, 1);
    }
}

#[test]
fn flaky_failures_surface_as_records_not_aborts() {
    // The full two-database grid (40+25 questions × 4 variants × 6
    // workflows = 1560 cells) is large enough that the flaky preset
    // reliably produces retries and at least one terminal failure — and
    // every one of them must be a record, not a crash.
    let run = run_benchmark(&base_config(4, FaultProfile::FLAKY));
    assert_eq!(run.faults.cells, run.records.len());
    assert!(run.faults.retries > 0, "flaky grid produced no retries");
    let failed: Vec<_> = run.records.iter().filter(|r| r.failure.is_some()).collect();
    assert_eq!(failed.len() as u64, run.faults.total_failures());
    for r in &failed {
        // Terminal transport failures look like parse failures downstream
        // (excluded from linking, incorrect execution), per the paper's
        // handling of unusable generations.
        if matches!(
            r.failure,
            Some(FailureKind::Timeout)
                | Some(FailureKind::RateLimit)
                | Some(FailureKind::CircuitOpen)
                | Some(FailureKind::Panic)
        ) {
            assert!(!r.parse_ok);
            assert!(!r.exec_correct);
        }
    }
    // Clean-but-retried cells keep their normal evaluation.
    assert!(run
        .records
        .iter()
        .any(|r| r.failure.is_none() && r.attempts > 1));
}

#[test]
fn hostile_profile_trips_breakers_and_still_completes() {
    let run = run_benchmark(&base_config(4, FaultProfile::HOSTILE));
    assert_eq!(run.faults.cells, run.records.len(), "no aborted cells");
    assert!(run.faults.breaker_trips > 0, "hostile grid tripped no breakers");
    assert!(
        run.records
            .iter()
            .any(|r| r.failure == Some(FailureKind::CircuitOpen)),
        "tripped breakers produced no skipped cells"
    );
    // Degradation is graceful: a hostile transport hurts but does not
    // zero out the benchmark.
    assert!(BenchmarkRun::exec_accuracy(&run.records) > 0.05);
}

#[test]
fn injected_panics_are_isolated_into_panic_records() {
    // The hostile preset panics at 2% per attempt; over 1560 cells the
    // expected count is ≈30, so absence would indicate broken isolation
    // (or a panic escaping and killing the test — the real regression).
    let run = run_benchmark(&base_config(8, FaultProfile::HOSTILE));
    let panics = run
        .records
        .iter()
        .filter(|r| r.failure == Some(FailureKind::Panic))
        .count();
    assert!(panics > 0, "hostile grid produced no isolated panic records");
}

#[test]
fn cross_join_bomb_is_contained_as_resource_exhausted() {
    // Engine budgets, end to end: a hostile "prediction" whose cross join
    // explodes must come back as an error under guarded limits, not hang.
    let db = build_database("NTSB");
    let big = db
        .db
        .tables()
        .max_by_key(|t| t.rows.len())
        .expect("NTSB has tables");
    let name = &big.schema.name;
    assert!(big.rows.len() >= 100, "need a non-trivial table for the bomb");
    let bomb = format!(
        "SELECT COUNT(*) FROM {name} AS a CROSS JOIN {name} AS b \
         CROSS JOIN {name} AS c CROSS JOIN {name} AS d"
    );
    let guarded = snails::engine::run_sql_with(
        &db.db,
        &bomb,
        snails::engine::ExecOptions { limits: ExecLimits::guarded(), ..Default::default() },
    );
    match guarded {
        Err(e) => assert!(e.is_resource_exhausted(), "unexpected error: {e}"),
        Ok(_) => panic!("cross-join bomb completed under guarded limits"),
    }
}

#[test]
fn hostile_telemetry_reconciles_with_fault_summary() {
    // The resilience layer is counted twice, independently: `FaultSummary`
    // aggregates the planner's `CellPlan`s after the run, while the
    // telemetry counters are recorded live inside `plan_cell`. The two
    // accounting paths must agree exactly.
    let config = BenchmarkConfig { telemetry: true, ..base_config(4, FaultProfile::HOSTILE) };
    let run = run_benchmark(&config);
    let report = run.telemetry.as_ref().expect("telemetry was enabled");
    assert_eq!(report.counter("llm.cells.planned"), run.faults.cells as u64);
    assert_eq!(report.counter("llm.resilience.attempts"), run.faults.attempts);
    assert_eq!(report.counter("llm.resilience.retries"), run.faults.retries);
    assert_eq!(report.counter("llm.breaker.trips"), run.faults.breaker_trips);
    // Breaker-gated cells are exactly the circuit-open failure records.
    let circuit_open = run
        .records
        .iter()
        .filter(|r| r.failure == Some(FailureKind::CircuitOpen))
        .count() as u64;
    assert_eq!(report.counter("llm.cells.skipped"), circuit_open);
    // Retries waited: a hostile grid cannot have zero backoff.
    assert!(report.counter("llm.resilience.backoff_ms") > 0);
    // Fault draws are per attempt, failure records per cell, so the draw
    // counters bound the record counts from above.
    let panic_records = run
        .records
        .iter()
        .filter(|r| r.failure == Some(FailureKind::Panic))
        .count() as u64;
    assert!(report.counter("llm.faults.panic") >= panic_records);

    // The deterministic telemetry section stays byte-identical across
    // thread counts even with faults, retries, and isolated panics.
    let det = report.deterministic_json();
    for threads in [1usize, 8] {
        let config =
            BenchmarkConfig { telemetry: true, ..base_config(threads, FaultProfile::HOSTILE) };
        let report = run_benchmark(&config).telemetry.expect("telemetry was enabled");
        assert_eq!(report.deterministic_json(), det, "threads = {threads}");
    }
}
