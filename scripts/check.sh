#!/usr/bin/env bash
# Pre-PR verification gate. Run from the repository root:
#
#   ./scripts/check.sh
#
# Everything runs offline (--offline; external deps resolve to the
# in-tree stand-ins under crates/compat/). A PR is ready when all
# stages pass.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace, offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (workspace, offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy --workspace -- -D warnings (offline)"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo clippy -p snails-engine --benches -- -D warnings (offline)"
# The engine (plan/IR layer) and the bench harnesses are gated
# separately so a workspace-level allow can never mask a regression in
# the compiled-plan code or the criterion targets.
cargo clippy -p snails-engine -p snails-bench --benches --offline -- -D warnings

echo "==> snails bench --fault-profile flaky (smoke: zero aborted cells)"
# The bench exits non-zero when any grid cell aborts without a record or
# when parallel records diverge from serial; grep double-checks the
# machine-readable line it prints.
bench_out=$(cargo run -q --release --offline --bin snails -- bench --fault-profile flaky)
echo "$bench_out"
echo "$bench_out" | grep -q '"bench":"fault_summary","profile":"flaky","aborted_cells":0' || {
    echo "error: flaky fault smoke run reported aborted cells" >&2
    exit 1
}

echo "==> snails bench --telemetry (smoke: deterministic report, full key coverage)"
# Telemetry smoke: the report must parse, the deterministic section must
# be byte-identical across thread counts (the bench exits non-zero
# otherwise), and every registered metric key must appear exactly once.
telemetry_out=$(mktemp)
trap 'rm -f "$telemetry_out"' EXIT
cargo run -q --release --offline --bin snails -- bench --telemetry "$telemetry_out" > /dev/null
python3 - "$telemetry_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["clock"] == "sim", "benchmark telemetry must use the simulated clock"
seen = []
for section in (report["deterministic"], report["assembly"], report["volatile"]):
    for kind in ("counters", "gauges", "histograms"):
        seen.extend(section[kind])
assert len(seen) == len(set(seen)), "duplicate metric key in report"
for key in ("engine.plan.compile", "engine.op.scan.rows", "engine.exec.steps",
            "engine.vec.batches", "engine.vec.selectivity_pct",
            "engine.vec.dict.entries",
            "llm.cells.planned", "llm.resilience.attempts",
            "core.scheduler.items", "core.scheduler.workers"):
    assert key in seen, f"metric key {key} missing from report"
# Fused-pipeline telemetry must land in the *deterministic* section (it is
# byte-compared across thread counts by the bench itself), never volatile.
det_counters = report["deterministic"]["counters"]
for key in ("engine.vec.fused_pipelines", "engine.vec.pool.hits",
            "engine.vec.pool.allocs", "engine.vec.dict_kernel_rows"):
    assert key in det_counters, (
        f"fusion metric {key} missing from the deterministic section")
hit = report["assembly"]["counters"]["engine.plan.cache_hit"]
miss = report["assembly"]["counters"]["engine.plan.cache_miss"]
assert hit + miss > 0, "grid run recorded no plan-cache lookups"
spans = report["deterministic"]["spans"]
assert spans["cell"]["count"] > 0, "no cell spans recorded"
print(f"    {len(seen)} metric keys, plan-cache hit rate "
      f"{hit / (hit + miss):.3f}, {spans['cell']['count']} cell spans")
PY

echo "==> checkpoint kill/resume smoke (SIGKILL mid-grid, resume, byte-compare)"
# Crash-recovery smoke: run the grid with a deterministic abort injected
# after 200 checkpoint writes, resume from the surviving store, and
# byte-compare the resumed manifest against an uninterrupted run. Also
# merges a 2-way shard split into the same bytes.
ckpt_dir=$(mktemp -d)
manifest_dir=$(mktemp -d)
trap 'rm -f "$telemetry_out"; rm -rf "$ckpt_dir" "$manifest_dir"' EXIT
snails=./target/release/snails
"$snails" grid --threads 4 --out "$manifest_dir/clean.txt" 2> /dev/null
if "$snails" grid --threads 4 --ckpt "$ckpt_dir" --kill-after 200 \
        --out "$manifest_dir/killed.txt" 2> /dev/null; then
    echo "error: --kill-after 200 run was expected to abort mid-grid" >&2
    exit 1
fi
[ ! -f "$manifest_dir/killed.txt" ] || {
    echo "error: killed run should not have produced a manifest" >&2
    exit 1
}
"$snails" grid --threads 4 --ckpt "$ckpt_dir" --out "$manifest_dir/resumed.txt" 2> /dev/null
cmp -s "$manifest_dir/clean.txt" "$manifest_dir/resumed.txt" || {
    echo "error: resumed manifest differs from the uninterrupted run" >&2
    exit 1
}
"$snails" grid --threads 2 --shard 0/2 --out "$manifest_dir/s0.txt" 2> /dev/null
"$snails" grid --threads 8 --shard 1/2 --out "$manifest_dir/s1.txt" 2> /dev/null
"$snails" merge --out "$manifest_dir/merged.txt" \
    "$manifest_dir/s1.txt" "$manifest_dir/s0.txt" 2> /dev/null
cmp -s "$manifest_dir/clean.txt" "$manifest_dir/merged.txt" || {
    echo "error: 2-way shard merge differs from the single-process run" >&2
    exit 1
}
echo "    kill@200 resume and 2-way shard merge both byte-identical"

echo "==> snails explain (stable across threads 1/2/8, JSON parses, est vs actual)"
# The cost-based planner's explanation must be a pure function of the
# plan and the statistics — never of the thread count — and the trailing
# machine-readable line must parse and carry estimated vs actual
# cardinalities on at least one join operator of a 3-table gold query.
"$snails" explain KIS 32 --threads 1 > "$manifest_dir/explain1.txt"
"$snails" explain KIS 32 --threads 2 > "$manifest_dir/explain2.txt"
"$snails" explain KIS 32 --threads 8 > "$manifest_dir/explain8.txt"
cmp -s "$manifest_dir/explain1.txt" "$manifest_dir/explain2.txt" || {
    echo "error: explain output differs between --threads 1 and 2" >&2
    exit 1
}
cmp -s "$manifest_dir/explain1.txt" "$manifest_dir/explain8.txt" || {
    echo "error: explain output differs between --threads 1 and 8" >&2
    exit 1
}
python3 - "$manifest_dir/explain1.txt" <<'PY'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.startswith('{"explain":')]
assert len(lines) == 1, "expected exactly one machine-readable explain line"
ex = json.loads(lines[0])["explain"]
assert ex["optimized"], "KIS question 32 should be optimizer-eligible"
joins = [s for s in ex["steps"] if s["op"].startswith("join")]
assert joins, "no join operators in the 3-table explain"
for s in joins:
    assert isinstance(s["est_rows"], (int, float)), "join step lacks est_rows"
    assert isinstance(s["actual_rows"], int), "join step lacks actual_rows"
print(f"    optimized 3-table plan, {len(joins)} joins, "
      f"order {ex['join_order']}, {ex['rows_out']} rows out")
PY

echo "==> optimizer equivalence on the grid (--no-optimize byte-identical)"
# Every grid record the optimizer touches must stay byte-identical to the
# unoptimized run: the planner may only change how answers are computed,
# never the answers, the match verdicts, or the manifest bytes.
"$snails" grid --threads 4 --no-optimize --out "$manifest_dir/noopt.txt" 2> /dev/null
cmp -s "$manifest_dir/clean.txt" "$manifest_dir/noopt.txt" || {
    echo "error: optimizer-on grid manifest differs from --no-optimize" >&2
    exit 1
}
echo "    optimizer-on and --no-optimize grid manifests byte-identical"

echo "==> BENCH_engine.json artifact (exists, well-formed, plan stage present)"
# `snails bench` writes the artifact as its last act; it must exist, be
# valid JSON, and carry the plan_exec stage with identical results.
[ -f BENCH_engine.json ] || {
    echo "error: snails bench did not write BENCH_engine.json (re-run" \
         "'cargo run --release --bin snails -- bench' to regenerate it)" >&2
    exit 1
}
python3 - <<'PY'
import json, sys
try:
    doc = json.load(open("BENCH_engine.json"))
except ValueError as exc:
    sys.exit(f"error: BENCH_engine.json is not valid JSON ({exc}); "
             "re-run 'cargo run --release --bin snails -- bench'")
stages = {s["bench"]: s for s in doc["stages"]}
assert "plan_exec" in stages, "plan_exec stage missing"
assert stages["plan_exec"]["results_identical"], "compiled plans diverged"
assert stages["grid_determinism"]["identical"], "grid not thread-deterministic"
print(f"    plan_exec speedup {stages['plan_exec']['speedup']}x, "
      f"{stages['plan_exec']['rows_per_s']} rows/s, telemetry overhead "
      f"{stages['plan_exec']['telemetry_overhead_pct']}%")
# Vectorized executor: the fused pipelines must beat the row-at-a-time
# plan path on the gold workload by the PR 9 floor, return byte-identical
# results everywhere, and sustain the million-row synthetic join at the
# 9M rows/s floor with steady-state allocations pooled away.
vec = stages["vector_exec"]
assert vec["results_identical"], "vectorized results diverged"
assert vec["speedup_vs_row_plan"] >= 4.5, (
    f"fused pipelines below the 4.5x floor over row plans "
    f"({vec['speedup_vs_row_plan']}x)")
join = stages["synthetic_join"]
assert join["results_identical"], "synthetic join results diverged"
assert join["rows"] >= 1_000_000, "synthetic join below the 1M-row scale"
assert join["rows_per_s"] >= 9_000_000, (
    f"synthetic join below the 9M rows/s floor ({join['rows_per_s']})")
assert join["allocs_per_batch"] <= 2.0, (
    f"steady-state allocations not pooled: {join['allocs_per_batch']} "
    "allocs per batch in the synthetic join hot loop (floor: 2)")
sweep = stages["vector_batch_sweep"]
assert "ms_adaptive" in sweep, "sweep does not record the adaptive policy"
assert sweep["adaptive_pick_width2"] > sweep["adaptive_pick_width32"], (
    "adaptive batch sizing is not width-sensitive")
# Cost-based planner: the 3-table star-join stage must show at least the
# 3x floor from join reordering + predicate pushdown + index probes, with
# byte-identical results, and the plan-cache capacity stage must render a
# compulsory-vs-capacity verdict from a real hit-rate measurement.
mj = stages["multi_join"]
assert mj["results_identical"], "optimized multi-join results diverged"
assert mj["speedup"] >= 7.0, (
    f"multi_join speedup {mj['speedup']}x below the 7x floor")
cap = stages["plan_cache_capacity"]
assert cap["misses_are"] in ("compulsory", "capacity"), "bad cache verdict"
assert cap["records_match"], "capacity-bounded grid records diverged"
print(f"    multi_join {mj['speedup']}x over unoptimized at "
      f"{mj['rows']} fact rows; plan cache misses are {cap['misses_are']} "
      f"(hit rate {cap['hit_rate']} -> {cap['hit_rate_2x']} at 2x)")
ckpt = stages["checkpoint_resume"]
assert ckpt["identical"], "resume / shard-merge diverged from the cold run"
assert ckpt["resume_hits"] > 0, "50% resume restored no checkpointed cells"
print(f"    checkpoint_resume cold {ckpt['cold_ms']}ms, 50%-resume "
      f"{ckpt['resume50_ms']}ms ({ckpt['resume_speedup']}x), 4-shard "
      f"{ckpt['shard4_ms']}ms + merge {ckpt['merge_ms']}ms")
print(f"    vector_exec {vec['speedup_vs_interpreter']}x vs interpreter, "
      f"{vec['speedup_vs_row_plan']}x vs row plans; synthetic_join "
      f"{join['speedup']}x at {join['rows_per_s']} rows/s, "
      f"{join['allocs_per_batch']} allocs/batch")
PY

echo "==> snails load (serve suite: >=1000 clients, deterministic replay, overload)"
# The in-process serving load suite exits non-zero on any violated gate
# (dropped requests, diverging serial transcripts, unbounded queue); the
# validator then re-checks the BENCH_serve.json artifact it wrote so a
# malformed artifact fails fast even if the run "passed".
"$snails" load --clients 1024 --requests 2 --out BENCH_serve.json
python3 - <<'PY'
import json, sys
try:
    doc = json.load(open("BENCH_serve.json"))
except ValueError as exc:
    sys.exit(f"error: BENCH_serve.json is not valid JSON ({exc}); "
             "re-run './target/release/snails load'")
stages = {s["serve"]: s for s in doc["stages"]}
for name in ("load", "serial_replay", "fault_soak", "overload"):
    assert name in stages, f"serve stage {name} missing from BENCH_serve.json"
load = stages["load"]
assert load["clients"] >= 1000, f"load stage ran only {load['clients']} clients"
assert load["dropped"] == 0, f"{load['dropped']} requests never resolved"
assert load["ok"] + load["errors"] + load["shed"] == load["requests"], \
    "load accounting does not add up"
for key in ("p50_us", "p99_us", "throughput_rps"):
    assert isinstance(load[key], (int, float)), f"load stage lacks {key}"
replay = stages["serial_replay"]
assert replay["identical"], "serial replay transcripts or telemetry diverged"
assert replay["transcripts"] == 1 and replay["telemetries"] == 1
assert replay["shed"] > 0, "replay burst never exercised the shed path"
soak = stages["fault_soak"]
assert soak["dropped"] == 0, "fault soak dropped requests"
assert soak["faults_injected"] > 0, "flaky profile injected nothing"
assert soak["tenants_reconciled"], "per-tenant counters leaked under faults"
over = stages["overload"]
assert over["shed_exact"] and over["bounded"] and over["complete"] \
    and over["drain_complete"], f"overload invariants violated: {over}"
print(f"    {load['clients']} clients at {load['throughput_rps']} rps "
      f"(p50 {load['p50_us']}us, p99 {load['p99_us']}us); replay identical "
      f"across threads 1/2/8; overload shed {over['shed']} of 64 at depth "
      f"{over['queue_depth']}")
PY

echo "==> snails serve smoke (unix socket, lockstep load, shutdown frame)"
# A serial server on a real unix socket, driven by a short seeded lockstep
# load, then shut down over its own wire. Gates: zero dropped requests and
# a truthful Goodbye.
serve_sock="$manifest_dir/serve.sock"
serve_log="$manifest_dir/serve.log"
"$snails" serve --socket "$serve_sock" --serial --dbs CWO --tenants alpha,beta \
    > "$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 200); do [ -S "$serve_sock" ] && break; sleep 0.1; done
[ -S "$serve_sock" ] || {
    echo "error: snails serve never bound its socket" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2> /dev/null || true
    exit 1
}
load_out=$("$snails" load --socket "$serve_sock" --dbs CWO --tenants alpha,beta \
    --clients 6 --requests 3 --shutdown)
echo "$load_out" | grep -q '"dropped":0' || {
    echo "error: socket load smoke dropped requests: $load_out" >&2
    exit 1
}
echo "$load_out" | grep -q '"load":"shutdown","responses":18' || {
    echo "error: shutdown Goodbye did not report all 18 responses: $load_out" >&2
    exit 1
}
wait "$serve_pid" || {
    echo "error: snails serve exited non-zero" >&2
    cat "$serve_log" >&2
    exit 1
}
grep -q '"serve":"goodbye","responses":18' "$serve_log" || {
    echo "error: server goodbye line missing or wrong: $(cat "$serve_log")" >&2
    exit 1
}
echo "    6 clients x 3 requests over the socket, 0 dropped, clean goodbye"

echo "==> all checks passed"
