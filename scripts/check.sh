#!/usr/bin/env bash
# Pre-PR verification gate. Run from the repository root:
#
#   ./scripts/check.sh
#
# Everything runs offline (--offline; external deps resolve to the
# in-tree stand-ins under crates/compat/). A PR is ready when all three
# stages pass.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace, offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (workspace, offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy --workspace -- -D warnings (offline)"
cargo clippy --workspace --offline -- -D warnings

echo "==> all checks passed"
