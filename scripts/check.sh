#!/usr/bin/env bash
# Pre-PR verification gate. Run from the repository root:
#
#   ./scripts/check.sh
#
# Everything runs offline (--offline; external deps resolve to the
# in-tree stand-ins under crates/compat/). A PR is ready when all four
# stages pass.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace, offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (workspace, offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy --workspace -- -D warnings (offline)"
cargo clippy --workspace --offline -- -D warnings

echo "==> snails bench --fault-profile flaky (smoke: zero aborted cells)"
# The bench exits non-zero when any grid cell aborts without a record or
# when parallel records diverge from serial; grep double-checks the
# machine-readable line it prints.
bench_out=$(cargo run -q --release --offline --bin snails -- bench --fault-profile flaky)
echo "$bench_out"
echo "$bench_out" | grep -q '"bench":"fault_summary","profile":"flaky","aborted_cells":0' || {
    echo "error: flaky fault smoke run reported aborted cells" >&2
    exit 1
}

echo "==> all checks passed"
