#!/usr/bin/env bash
# Pre-PR verification gate. Run from the repository root:
#
#   ./scripts/check.sh
#
# Everything runs offline (--offline; external deps resolve to the
# in-tree stand-ins under crates/compat/). A PR is ready when all
# stages pass.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace, offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (workspace, offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy --workspace -- -D warnings (offline)"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo clippy -p snails-engine --benches -- -D warnings (offline)"
# The engine (plan/IR layer) and the bench harnesses are gated
# separately so a workspace-level allow can never mask a regression in
# the compiled-plan code or the criterion targets.
cargo clippy -p snails-engine -p snails-bench --benches --offline -- -D warnings

echo "==> snails bench --fault-profile flaky (smoke: zero aborted cells)"
# The bench exits non-zero when any grid cell aborts without a record or
# when parallel records diverge from serial; grep double-checks the
# machine-readable line it prints.
bench_out=$(cargo run -q --release --offline --bin snails -- bench --fault-profile flaky)
echo "$bench_out"
echo "$bench_out" | grep -q '"bench":"fault_summary","profile":"flaky","aborted_cells":0' || {
    echo "error: flaky fault smoke run reported aborted cells" >&2
    exit 1
}

echo "==> snails bench --telemetry (smoke: deterministic report, full key coverage)"
# Telemetry smoke: the report must parse, the deterministic section must
# be byte-identical across thread counts (the bench exits non-zero
# otherwise), and every registered metric key must appear exactly once.
telemetry_out=$(mktemp)
trap 'rm -f "$telemetry_out"' EXIT
cargo run -q --release --offline --bin snails -- bench --telemetry "$telemetry_out" > /dev/null
python3 - "$telemetry_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["clock"] == "sim", "benchmark telemetry must use the simulated clock"
seen = []
for section in (report["deterministic"], report["volatile"]):
    for kind in ("counters", "gauges", "histograms"):
        seen.extend(section[kind])
assert len(seen) == len(set(seen)), "duplicate metric key in report"
for key in ("engine.plan.compile", "engine.op.scan.rows", "engine.exec.steps",
            "engine.vec.batches", "engine.vec.selectivity_pct",
            "engine.vec.dict.entries",
            "llm.cells.planned", "llm.resilience.attempts",
            "core.scheduler.items", "core.scheduler.workers"):
    assert key in seen, f"metric key {key} missing from report"
hit = report["deterministic"]["counters"]["engine.plan.cache_hit"]
miss = report["deterministic"]["counters"]["engine.plan.cache_miss"]
assert hit + miss > 0, "grid run recorded no plan-cache lookups"
spans = report["deterministic"]["spans"]
assert spans["cell"]["count"] > 0, "no cell spans recorded"
print(f"    {len(seen)} metric keys, plan-cache hit rate "
      f"{hit / (hit + miss):.3f}, {spans['cell']['count']} cell spans")
PY

echo "==> BENCH_engine.json artifact (exists, well-formed, plan stage present)"
# `snails bench` writes the artifact as its last act; it must exist, be
# valid JSON, and carry the plan_exec stage with identical results.
[ -f BENCH_engine.json ] || {
    echo "error: snails bench did not write BENCH_engine.json" >&2
    exit 1
}
python3 - <<'PY'
import json, sys
doc = json.load(open("BENCH_engine.json"))
stages = {s["bench"]: s for s in doc["stages"]}
assert "plan_exec" in stages, "plan_exec stage missing"
assert stages["plan_exec"]["results_identical"], "compiled plans diverged"
assert stages["grid_determinism"]["identical"], "grid not thread-deterministic"
print(f"    plan_exec speedup {stages['plan_exec']['speedup']}x, "
      f"{stages['plan_exec']['rows_per_s']} rows/s, telemetry overhead "
      f"{stages['plan_exec']['telemetry_overhead_pct']}%")
# Vectorized executor: must beat the row-at-a-time plan path on the gold
# workload, return byte-identical results everywhere, and sustain the
# million-row synthetic join.
vec = stages["vector_exec"]
assert vec["results_identical"], "vectorized results diverged"
assert vec["speedup_vs_row_plan"] >= 1.0, (
    f"vectorized slower than row plans ({vec['speedup_vs_row_plan']}x)")
join = stages["synthetic_join"]
assert join["results_identical"], "synthetic join results diverged"
assert join["rows"] >= 1_000_000, "synthetic join below the 1M-row scale"
assert join["speedup"] >= 1.0, f"vectorized join slower ({join['speedup']}x)"
assert "vector_batch_sweep" in stages, "batch-size sweep missing"
print(f"    vector_exec {vec['speedup_vs_interpreter']}x vs interpreter, "
      f"{vec['speedup_vs_row_plan']}x vs row plans; synthetic_join "
      f"{join['speedup']}x at {join['rows_per_s']} rows/s")
PY

echo "==> all checks passed"
