//! A miniature benchmark run: two databases × all variants × two workflows,
//! printing Figure 8/10-style tables in under a minute. The full
//! reproduction lives in the `experiments` binary.
//!
//! ```text
//! cargo run --release --example benchmark_mini
//! ```

use snails::core::result_figures::{figure10, figure8, tau_table, TauMeasure, TauOutcome};
use snails::prelude::*;

fn main() {
    let config = BenchmarkConfig {
        seed: 2024,
        databases: vec!["CWO".into(), "NTSB".into()],
        variants: SchemaVariant::ALL.to_vec(),
        workflows: vec![
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::ZeroShot(ModelKind::PhindCodeLlama),
        ],
        threads: None,
        ..BenchmarkConfig::default()
    };
    println!(
        "Running {} databases × {} variants × {} workflows...\n",
        config.databases.len(),
        config.variants.len(),
        config.workflows.len()
    );
    let run = run_benchmark(&config);
    println!("{} inferences evaluated.\n", run.records.len());

    println!("{}", figure8(&run));
    println!("{}", figure10(&run));
    println!(
        "{}",
        tau_table(&run, TauMeasure::Combined, TauOutcome::ExecAccuracy, false)
    );
    println!(
        "{}",
        tau_table(&run, TauMeasure::PropLeast, TauOutcome::Recall, false)
    );
}
