//! Naturalness audit: the practitioner workflow of §6 — assess an existing
//! schema's identifier naturalness before hooking up an LLM-based NLI, and
//! get rename recommendations for the worst offenders.
//!
//! ```text
//! cargo run --release --example naturalness_audit            # audits NTSB
//! cargo run --release --example naturalness_audit -- SBOD
//! ```

use snails::naturalness::{Classifier, Naturalness, NaturalnessProfile};
use snails::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "NTSB".to_owned());
    let db = build_database(&name);

    // Train the reference classifier (the paper's CANINE-based Artifact 3)
    // and classify every identifier in the schema.
    println!("Training the naturalness classifier (Artifact 3)...");
    let clf = snails::core::dataset_figures::reference_classifier();

    let names = db.db.identifier_names();
    let labels: Vec<Naturalness> = names.iter().map(|n| clf.classify(n)).collect();
    let profile = NaturalnessProfile::from_labels(labels.iter().copied());

    println!("\n=== Naturalness audit: {name} ===");
    println!("Identifiers classified: {}", profile.total());
    for level in Naturalness::ALL {
        println!(
            "  {:<8} {:>5.1}%",
            level.display_name(),
            100.0 * profile.proportion(level)
        );
    }
    println!("Combined naturalness: {:.2}", profile.combined());
    if profile.combined() < 0.69 {
        println!(
            "→ Below the 0.69 threshold: the paper's results predict that \
             renaming to Regular will improve NL-to-SQL accuracy (Figure 30)."
        );
    } else {
        println!("→ Already natural; renaming is unlikely to help (Figure 30).");
    }

    // Rename recommendations for the Least identifiers, via the expander
    // with the database's data dictionary (Artifact 5, appendix C.2).
    let meta = snails::modify::MetadataIndex::from_text(&db.data_dictionary);
    let expander = Expander::with_metadata(meta);
    println!("\nWorst offenders (classified Least) and suggested renames:");
    let mut shown = 0;
    for (id, label) in names.iter().zip(&labels) {
        if *label == Naturalness::Least && shown < 12 {
            let suggestion = expander.expand_identifier(id);
            println!("  {id:<24} → {suggestion}");
            shown += 1;
        }
    }
    if shown == 0 {
        println!("  (none — schema is free of Least-naturalness identifiers)");
    }
    println!(
        "\nAt a minimum, rename Least identifiers to Regular; if feasible, \
         Low as well (§6). Alternatively create natural views — see the \
         natural_views example."
    );
}
