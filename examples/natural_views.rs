//! Natural views (appendix H.2, option 2): create a `db_nl` schema of
//! Regular-named views over the native tables, so an LLM NLI can query
//! natural names directly while existing integrations keep using the native
//! schema.
//!
//! ```text
//! cargo run --release --example natural_views
//! ```

use snails::llm::views::{natural_view_ddl, naturalize_database};
use snails::prelude::*;

fn main() {
    let mut db = build_database("KIS");
    println!(
        "KIS (Klamath invasive species): {} tables, combined naturalness {:.2}\n",
        db.db.table_count(),
        db.combined_naturalness()
    );

    // Show the generated DDL for the first two tables (the appendix H.2
    // `classify_rename_and_build_view` output).
    println!("--- Generated natural-view DDL (excerpt) ---");
    for stmt in natural_view_ddl(&db.db, &db.crosswalk).iter().take(2) {
        println!("{stmt};\n");
    }

    // Install all views.
    let installed = naturalize_database(&mut db).expect("views install");
    println!("Installed {installed} natural views in the db_nl schema.\n");

    // Query through the natural names: pick the event table's Regular name.
    let event_native = db.core.native(snails::data::core_schema::CoreRole::EventTable);
    let event_regular = db.crosswalk.entry(&event_native).unwrap().renderings[0].clone();
    let status_native = db.core.native(snails::data::core_schema::CoreRole::EventStatus);
    let status_regular = db.crosswalk.entry(&status_native).unwrap().renderings[0].clone();

    let natural_sql = format!(
        "SELECT {status}, COUNT(*) AS events FROM db_nl.{table} GROUP BY {status} ORDER BY events DESC",
        status = snails::sql::render::quoted(&status_regular),
        table = snails::sql::render::quoted(&event_regular),
    );
    println!("Natural-view query:\n  {natural_sql}\n");
    let rs = run_sql(&db.db, &natural_sql).expect("view query executes");
    println!("{rs}");

    // The same data via the native schema, proving equivalence.
    let native_sql = format!(
        "SELECT {status}, COUNT(*) AS events FROM {table} GROUP BY {status} ORDER BY events DESC",
        status = snails::sql::render::quoted(&status_native),
        table = snails::sql::render::quoted(&event_native),
    );
    let native_rs = run_sql(&db.db, &native_sql).expect("native query executes");
    assert_eq!(rs.rows, native_rs.rows);
    println!("Native-schema query returns identical rows — integrations unaffected.");
}
