//! A natural-language interface with naturalization middleware (appendix
//! H.2, option 1): the LLM is prompted with a Regular-naturalness view of a
//! low-naturalness schema, and generated queries are denaturalized before
//! execution on the untouched native database.
//!
//! ```text
//! cargo run --release --example nl_interface
//! ```

use snails::llm::middleware::{denaturalize, naturalize_prompt};
use snails::prelude::*;

fn main() {
    // SBOD is the least natural schema in the collection (combined ≈ 0.49) —
    // the case where middleware helps the most.
    let db = build_database("SBOD");
    println!(
        "Connected to {} ({} tables; prompt uses the {}-table pruned module).",
        db.spec.name,
        db.db.table_count(),
        db.prompt_tables.len()
    );
    println!("Native combined naturalness: {:.2}\n", db.combined_naturalness());

    // The middleware presents the schema at Regular naturalness.
    let variant = SchemaVariant::Regular;
    let view = SchemaView::new(&db, variant);
    let model = ModelKind::Gpt4o.config();

    for pair in db.questions.iter().take(5) {
        println!("Q: {}", pair.question);

        // 1. Naturalized prompt (identifiers shown at Regular level).
        let prompt = naturalize_prompt(&db, variant, &pair.question);
        println!("   [prompt: {} chars of Regular-naturalness schema knowledge]", prompt.len());

        // 2. LLM generates SQL against the natural names.
        let inference = infer(&model, &db, &view, pair, 7);
        println!("   LLM SQL:    {}", inference.raw_sql);

        // 3. Middleware denaturalizes back to the native namespace.
        match denaturalize(&db, variant, &inference.raw_sql) {
            Ok(native_sql) => {
                println!("   Native SQL: {native_sql}");
                // 4. Execute on the untouched native database.
                match run_sql(&db.db, &native_sql) {
                    Ok(rs) => {
                        println!("   → {} row(s); first: {:?}", rs.row_count(),
                            rs.rows.first().map(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>()));
                        let gold = run_sql(&db.db, &pair.sql).expect("gold executes");
                        println!("   → superset match vs gold: {:?}", match_result_sets(&gold, &rs));
                    }
                    Err(e) => println!("   → execution error: {e}"),
                }
            }
            Err(e) => println!("   → model output unparseable: {e}"),
        }
        println!();
    }
}
