//! Quickstart: build a SNAILS database, inspect its naturalness, run one
//! simulated NL-to-SQL inference end to end, and execute the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snails::prelude::*;

fn main() {
    // 1. Build a benchmark database (CWO: Craters of the Moon wildlife
    //    observations — the smallest, most natural schema in the collection).
    let db = build_database("CWO");
    println!(
        "Database {}: {} tables, {} columns, {} NL-SQL pairs",
        db.spec.name,
        db.db.table_count(),
        db.db.column_count(),
        db.questions.len()
    );
    println!("Native combined naturalness: {:.2}\n", db.combined_naturalness());

    // 2. Show the zero-shot prompt the model would receive (appendix D.1).
    let view = SchemaView::new(&db, SchemaVariant::Native);
    let pair = &db.questions[0];
    let prompt = build_prompt(&view, &pair.question);
    println!("--- Prompt (first 5 lines) ---");
    for line in prompt.lines().take(5) {
        println!("{line}");
    }

    // 3. Simulate a GPT-4o inference.
    let inference = infer(&ModelKind::Gpt4o.config(), &db, &view, pair, 42);
    println!("\nQuestion:  {}", pair.question);
    println!("Gold SQL:  {}", pair.sql);
    println!("Predicted: {}", inference.raw_sql);

    // 4. Execute both and compare result sets (superset matching).
    let gold_rs = run_sql(&db.db, &pair.sql).expect("gold executes");
    match run_sql(&db.db, &inference.raw_sql) {
        Ok(pred_rs) => {
            let outcome = match_result_sets(&gold_rs, &pred_rs);
            println!("\nExecution outcome: {outcome:?}");
            println!("Gold rows: {} | Predicted rows: {}", gold_rs.row_count(), pred_rs.row_count());
        }
        Err(e) => println!("\nPredicted query failed to execute: {e}"),
    }

    // 5. Schema-linking score (Equations 1–3).
    let gold_ids = snails::sql::extract_identifiers(&snails::sql::parse(&pair.sql).unwrap());
    if let Ok(stmt) = snails::sql::parse(&inference.raw_sql) {
        let pred_ids = snails::sql::extract_identifiers(&stmt);
        let scores = query_linking(&gold_ids, &pred_ids);
        println!(
            "Linking: recall {:.2}, precision {:.2}, F1 {:.2}",
            scores.recall, scores.precision, scores.f1
        );
    }
}
