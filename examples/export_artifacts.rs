//! Export the SNAILS benchmark artifacts to disk in the paper's release
//! formats — what a downstream user would check into their own repo:
//!
//! * `questions/<DB>.sql` — the NL question / gold query pairs (Artifact 6,
//!   appendix A.2 format);
//! * `crosswalks/<DB>.tsv` — the naturalness crosswalk (Artifact 4);
//! * `views/<DB>_natural_views.sql` — natural-view DDL (appendix H.2);
//! * `metadata/<DB>_data_dictionary.txt` — the expander metadata.
//!
//! ```text
//! cargo run --release --example export_artifacts -- ./artifacts CWO KIS
//! cargo run --release --example export_artifacts            # all 9, ./artifacts
//! ```

use snails::llm::views::natural_view_ddl;
use snails::prelude::*;
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args.first().map(String::as_str).unwrap_or("./artifacts");
    let names: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(String::as_str).collect()
    } else {
        snails::data::DATABASE_NAMES.to_vec()
    };

    for sub in ["questions", "crosswalks", "views", "metadata"] {
        fs::create_dir_all(Path::new(out_dir).join(sub))?;
    }

    for name in names {
        let db = build_database(name);
        let base = Path::new(out_dir);

        let questions = snails::data::sqlfile::to_sql_file(&db.questions);
        fs::write(base.join("questions").join(format!("{name}.sql")), questions)?;

        fs::write(
            base.join("crosswalks").join(format!("{name}.tsv")),
            db.crosswalk.to_tsv(),
        )?;

        let mut ddl = natural_view_ddl(&db.db, &db.crosswalk).join(";\n");
        ddl.push_str(";\n");
        fs::write(base.join("views").join(format!("{name}_natural_views.sql")), ddl)?;

        fs::write(
            base.join("metadata").join(format!("{name}_data_dictionary.txt")),
            &db.data_dictionary,
        )?;

        println!(
            "{name}: {} questions, {} crosswalk entries, {} views exported",
            db.questions.len(),
            db.crosswalk.len(),
            db.db.table_count()
        );
    }
    println!("\nArtifacts written to {out_dir}/");
    Ok(())
}
