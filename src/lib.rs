#![warn(missing_docs)]

//! # SNAILS — Schema Naming Assessments for Improved LLM-Based SQL Inference
//!
//! A complete Rust reproduction of the SIGMOD 2025 SNAILS benchmark suite
//! (Luoma & Kumar): the nine-database collection, naturalness taxonomy and
//! classifiers, identifier modifiers and crosswalks, the simulated NL-to-SQL
//! model zoo, the evaluation pipeline (execution superset matching + schema
//! linking), and the statistics behind every table and figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use snails::prelude::*;
//!
//! // Build a benchmark database and classify its naturalness.
//! let db = build_database("CWO");
//! let combined = db.combined_naturalness();
//! assert!(combined > 0.7); // CWO is the most natural schema (≈0.84)
//!
//! // Run one simulated inference and evaluate it.
//! let view = SchemaView::new(&db, SchemaVariant::Native);
//! let record = evaluate_question(
//!     Workflow::ZeroShot(ModelKind::Gpt4o),
//!     &db,
//!     &view,
//!     &db.questions[0],
//!     42,
//! );
//! assert!(record.linking.is_some());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure. Regenerate the latter
//! with `cargo run --release --bin experiments`.

pub use snails_core as core;
pub use snails_data as data;
pub use snails_engine as engine;
pub use snails_eval as eval;
pub use snails_lexicon as lexicon;
pub use snails_llm as llm;
pub use snails_modify as modify;
pub use snails_naturalness as naturalness;
pub use snails_serve as serve;
pub use snails_sql as sql;
pub use snails_tokenize as tokenize;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use snails_core::pipeline::{
        evaluate_question, run_benchmark, run_benchmark_on, BenchmarkConfig, BenchmarkRun,
        FaultSummary, QueryRecord,
    };
    pub use snails_core::telemetry::Report;
    pub use snails_data::{build_all, build_database, GoldPair, SnailsDatabase};
    pub use snails_engine::{run_sql, Database, ExecLimits, ResultSet, Value};
    pub use snails_eval::{match_result_sets, query_linking, ExecutionOutcome};
    pub use snails_llm::{
        build_prompt, infer, FailureKind, FaultProfile, ModelKind, SchemaView, Workflow,
    };
    pub use snails_modify::{abbreviate_identifier, Expander};
    pub use snails_naturalness::category::{Naturalness, SchemaVariant};
    pub use snails_naturalness::{combined_naturalness, Classifier};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let db = build_database("CWO");
        assert_eq!(db.questions.len(), 40);
        let _ = SchemaVariant::ALL;
        let _ = ModelKind::ALL;
    }
}
