//! `snails` — command-line access to the SNAILS artifacts.
//!
//! ```text
//! snails classify <identifier>...        # naturalness level per identifier
//! snails abbreviate <identifier> [low|least]
//! snails expand <identifier>...          # Artifact-5 expander (no metadata)
//! snails audit <DB>                      # schema naturalness profile
//! snails ask <DB> <question-id> [model]  # run one simulated inference
//! snails sql <DB> "<query>"              # execute SQL on a benchmark DB
//! snails list                            # the nine databases
//! ```

use snails::naturalness::{Classifier, Naturalness, NaturalnessProfile};
use snails::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_usage();
        std::process::exit(2);
    };
    match command.as_str() {
        "classify" => classify(&args[1..]),
        "abbreviate" => abbreviate(&args[1..]),
        "expand" => expand(&args[1..]),
        "audit" => audit(&args[1..]),
        "ask" => ask(&args[1..]),
        "sql" => sql(&args[1..]),
        "list" => list(),
        _ => {
            eprintln!("unknown command: {command}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "snails — Schema Naming Assessments for Improved LLM-Based SQL Inference\n\n\
         USAGE:\n  snails classify <identifier>...\n  snails abbreviate <identifier> [low|least]\n  \
         snails expand <identifier>...\n  snails audit <DB>\n  snails ask <DB> <question-id> [model]\n  \
         snails sql <DB> \"<query>\"\n  snails list"
    );
}

fn classify(identifiers: &[String]) {
    if identifiers.is_empty() {
        eprintln!("classify: at least one identifier required");
        std::process::exit(2);
    }
    eprintln!("(training the reference classifier...)");
    let clf = snails::core::dataset_figures::reference_classifier();
    for id in identifiers {
        let level = clf.classify(id);
        let probs = clf.probabilities(id);
        println!(
            "{id}\t{}\t(Regular {:.2} / Low {:.2} / Least {:.2})",
            level.display_name(),
            probs[0],
            probs[1],
            probs[2]
        );
    }
}

fn abbreviate(args: &[String]) {
    let Some(id) = args.first() else {
        eprintln!("abbreviate: identifier required");
        std::process::exit(2);
    };
    let level = match args.get(1).map(String::as_str) {
        Some("least") => Naturalness::Least,
        _ => Naturalness::Low,
    };
    println!("{}", abbreviate_identifier(id, level));
}

fn expand(identifiers: &[String]) {
    if identifiers.is_empty() {
        eprintln!("expand: at least one identifier required");
        std::process::exit(2);
    }
    let expander = Expander::new();
    for id in identifiers {
        println!("{id}\t{}", expander.expand_identifier(id));
    }
}

fn audit(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("audit: database name required (see `snails list`)");
        std::process::exit(2);
    };
    let db = build_database(name);
    let profile = NaturalnessProfile::from_labels(
        db.identifier_levels().into_iter().map(|(_, l)| l),
    );
    println!("{} ({}):", db.spec.name, db.spec.org);
    println!("  tables {}  columns {}  questions {}", db.db.table_count(), db.db.column_count(), db.questions.len());
    for level in Naturalness::ALL {
        println!(
            "  {:<8} {:>5.1}%",
            level.display_name(),
            100.0 * profile.proportion(level)
        );
    }
    println!("  combined naturalness {:.2}", profile.combined());
    println!(
        "  recommendation: {}",
        if profile.combined() < 0.69 {
            "rename to Regular (or add natural views) before NLI integration"
        } else {
            "already natural; renaming unlikely to help"
        }
    );
}

fn ask(args: &[String]) {
    let (Some(name), Some(qid)) = (args.first(), args.get(1)) else {
        eprintln!("ask: usage `snails ask <DB> <question-id> [model]`");
        std::process::exit(2);
    };
    let qid: usize = qid.parse().expect("question id must be a number");
    let model = match args.get(2).map(String::as_str) {
        None | Some("gpt-4o") => ModelKind::Gpt4o,
        Some("gemini") => ModelKind::Gemini15Pro,
        Some("gpt-3.5") => ModelKind::Gpt35,
        Some("phind") => ModelKind::PhindCodeLlama,
        Some("codes") => ModelKind::CodeS,
        Some(other) => {
            eprintln!("unknown model {other} (gpt-4o|gemini|gpt-3.5|phind|codes)");
            std::process::exit(2);
        }
    };
    let db = build_database(name);
    let Some(pair) = db.questions.iter().find(|p| p.id == qid) else {
        eprintln!("{name} has no question {qid} (1..={})", db.questions.len());
        std::process::exit(2);
    };
    let view = SchemaView::new(&db, SchemaVariant::Native);
    let record = evaluate_question(Workflow::ZeroShot(model), &db, &view, pair, 2024);
    println!("Q:    {}", pair.question);
    println!("gold: {}", pair.sql);
    let inference = infer(&model.config(), &db, &view, pair, 2024);
    println!("pred: {}", inference.raw_sql);
    println!(
        "exec: {} | linking recall {}",
        if record.exec_correct { "correct" } else { "incorrect" },
        record
            .linking
            .map(|l| format!("{:.2}", l.recall))
            .unwrap_or_else(|| "n/a".into())
    );
}

fn sql(args: &[String]) {
    let (Some(name), Some(query)) = (args.first(), args.get(1)) else {
        eprintln!("sql: usage `snails sql <DB> \"SELECT ...\"`");
        std::process::exit(2);
    };
    let db = build_database(name);
    match run_sql(&db.db, query) {
        Ok(rs) => print!("{rs}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn list() {
    println!("Database  Tables  Columns  Questions  Combined");
    for name in snails::data::DATABASE_NAMES {
        let db = build_database(name);
        println!(
            "{:<9} {:>6}  {:>7}  {:>9}  {:>8.2}",
            db.spec.name,
            db.db.table_count(),
            db.db.column_count(),
            db.questions.len(),
            db.combined_naturalness()
        );
    }
}
