//! `snails` — command-line access to the SNAILS artifacts.
//!
//! ```text
//! snails classify <identifier>...        # naturalness level per identifier
//! snails abbreviate <identifier> [low|least]
//! snails expand <identifier>...          # Artifact-5 expander (no metadata)
//! snails audit <DB>                      # schema naturalness profile
//! snails ask <DB> <question-id> [model]  # run one simulated inference
//! snails sql <DB> "<query>"              # execute SQL on a benchmark DB
//! snails explain <DB> <query|question-id> [--threads N]
//!                                        # cost-based plan, est vs actual rows
//! snails list                            # the nine databases
//! snails bench [threads] [--fault-profile none|flaky|hostile]
//!              [--telemetry <path>] [--explain]
//!                                        # wall-clock timings (JSON lines)
//! snails grid [--shard i/n] [--ckpt DIR] [--out manifest]
//!             [--kill-after N] [--no-optimize]
//!                                        # one (shardable, resumable) grid run
//! snails merge --out merged <manifest>.. # fold shard manifests into one run
//! snails serve --socket PATH [--serial] [--tenants a,b] [--dbs CWO]
//!                                        # multi-tenant NL-to-SQL server
//! snails load [--socket PATH] [--clients N] [--requests N] [--shutdown]
//!                                        # load suite (or drive a socket)
//! ```

use snails::core::telemetry;
use snails::engine::{run_sql_with, DataType, ExecOptions, TableSchema};
use snails::naturalness::{Classifier, Naturalness, NaturalnessProfile};
use snails::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Bench-only counting allocator: `snails bench` reports steady-state
/// hot-loop allocation counts for the vectorized stages (the buffer-pool
/// contract), at the cost of two relaxed atomic increments per allocation
/// everywhere in this binary.
#[global_allocator]
static ALLOC: snails_bench::CountingAlloc = snails_bench::CountingAlloc::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_usage();
        std::process::exit(2);
    };
    match command.as_str() {
        "classify" => classify(&args[1..]),
        "abbreviate" => abbreviate(&args[1..]),
        "expand" => expand(&args[1..]),
        "audit" => audit(&args[1..]),
        "ask" => ask(&args[1..]),
        "sql" => sql(&args[1..]),
        "explain" => explain(&args[1..]),
        "list" => list(),
        "bench" => bench(&args[1..]),
        "grid" => grid(&args[1..]),
        "merge" => merge(&args[1..]),
        "serve" => serve(&args[1..]),
        "load" => load(&args[1..]),
        _ => {
            eprintln!("unknown command: {command}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "snails — Schema Naming Assessments for Improved LLM-Based SQL Inference\n\n\
         USAGE:\n  snails classify <identifier>...\n  snails abbreviate <identifier> [low|least]\n  \
         snails expand <identifier>...\n  snails audit <DB>\n  snails ask <DB> <question-id> [model]\n  \
         snails sql <DB> \"<query>\"\n  \
         snails explain <DB> <query|question-id> [--threads N]\n  snails list\n  \
         snails bench [threads] [--fault-profile none|flaky|hostile] [--telemetry <path>] [--explain]\n  \
         snails grid [--seed N] [--threads N] [--fault-profile P] [--telemetry]\n              \
         [--shard i/n] [--ckpt DIR] [--kill-after N] [--out <manifest>] [--no-optimize]\n  \
         snails merge [--out <manifest>] <shard-manifest>...\n  \
         snails serve --socket <path> [--tenants a,b] [--dbs CWO] [--queue-depth N]\n              \
         [--batch N] [--threads N] [--serial] [--seed N]\n              \
         [--fault-profile none|flaky|hostile] [--telemetry <path>]\n  \
         snails load [--socket <path>] [--clients N] [--requests N] [--seed N]\n              \
         [--tenants a,b] [--dbs CWO] [--out <path>] [--shutdown]"
    );
}

/// The 1280-cell benchmark grid (CWO + KIS × 4 variants × 4 workflows × 40
/// questions) shared by `snails grid`, the `bench` checkpoint stage, and
/// the crash-recovery harness.
fn grid_config() -> BenchmarkConfig {
    BenchmarkConfig {
        seed: 2024,
        databases: vec!["CWO".into(), "KIS".into()],
        variants: SchemaVariant::ALL.to_vec(),
        workflows: vec![
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::ZeroShot(ModelKind::Gpt35),
            Workflow::DinSql,
            Workflow::CodeS,
        ],
        ..Default::default()
    }
}

/// One (shardable, resumable) grid invocation: the execution unit of the
/// checkpoint layer. Writes this shard's manifest to `--out`, so separate
/// processes — crashed-and-resumed, or sharded across machines — can be
/// reconciled with `snails merge` and compared byte-for-byte.
fn grid(args: &[String]) {
    use snails::core::checkpoint::{manifest_from_run, CheckpointSpec, Shard};

    let mut config = grid_config();
    let mut out: Option<String> = None;
    let mut kill_after: Option<u64> = None;
    let mut ckpt: Option<String> = None;
    let mut it = args.iter();
    let missing = |flag: &str| -> ! {
        eprintln!("grid: {flag} needs a value");
        std::process::exit(2);
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.seed = n,
                None => missing("--seed"),
            },
            "--threads" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.threads = Some(n),
                _ => missing("--threads"),
            },
            "--fault-profile" => {
                match it.next().and_then(|n| FaultProfile::by_name(n)) {
                    Some(p) => config.fault_profile = p,
                    None => {
                        eprintln!("grid: --fault-profile takes none|flaky|hostile");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry" => config.telemetry = true,
            "--no-optimize" => config.optimize = false,
            "--shard" => match it.next().map(|s| Shard::parse(s)) {
                Some(Ok(s)) => config.shard = s,
                Some(Err(e)) => {
                    eprintln!("grid: {e}");
                    std::process::exit(2);
                }
                None => missing("--shard"),
            },
            "--ckpt" => match it.next() {
                Some(dir) => ckpt = Some(dir.clone()),
                None => missing("--ckpt"),
            },
            "--kill-after" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => kill_after = Some(n),
                None => missing("--kill-after"),
            },
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => missing("--out"),
            },
            other => {
                eprintln!("grid: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if kill_after.is_some() && ckpt.is_none() {
        eprintln!("grid: --kill-after requires --ckpt (it counts checkpoint writes)");
        std::process::exit(2);
    }
    config.checkpoint = ckpt.map(|dir| CheckpointSpec {
        dir: dir.into(),
        kill_after_writes: kill_after,
    });

    let run = run_benchmark(&config);
    let manifest = manifest_from_run(&run, &config);
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, manifest.to_string()) {
            eprintln!("grid: could not write manifest {path}: {e}");
            std::process::exit(1);
        }
    } else {
        print!("{manifest}");
    }
    let ckpt_json = run.checkpoint.map_or("null".to_owned(), |s| {
        format!(
            "{{\"hits\":{},\"misses\":{},\"corrupt\":{},\"written\":{}}}",
            s.hits, s.misses, s.corrupt, s.written
        )
    });
    eprintln!(
        "{{\"grid\":\"done\",\"cells\":{},\"shard\":\"{}/{}\",\"records\":{},\
         \"fingerprint\":\"{:016x}\",\"checkpoint\":{ckpt_json}}}",
        run.grid_cells,
        config.shard.index,
        config.shard.count,
        run.records.len(),
        run.fingerprint,
    );
}

/// Fold shard manifests (from `snails grid --shard i/n --out ...`) into the
/// single-run manifest. The merge validates that the shards belong to the
/// same grid and tile it exactly; the output is byte-identical to the
/// manifest an uninterrupted single-process run would have written.
fn merge(args: &[String]) {
    use snails::core::checkpoint::{merge_manifests, ShardManifest};

    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("merge: --out needs a path");
                    std::process::exit(2);
                }
            }
        } else {
            inputs.push(arg.clone());
        }
    }
    if inputs.is_empty() {
        eprintln!("merge: usage `snails merge [--out <path>] <shard-manifest>...`");
        std::process::exit(2);
    }
    let mut shards = Vec::new();
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("merge: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match ShardManifest::parse(&text) {
            Ok(m) => shards.push(m),
            Err(e) => {
                eprintln!("merge: {path} is not a valid shard manifest: {e}");
                std::process::exit(1);
            }
        }
    }
    let merged = match merge_manifests(shards) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("merge: {e}");
            std::process::exit(1);
        }
    };
    let text = merged.to_string();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("merge: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
        None => print!("{text}"),
    }
    eprintln!(
        "{{\"merge\":\"done\",\"shards\":{},\"cells\":{},\"failed_cells\":{}}}",
        inputs.len(),
        merged.total_cells,
        merged.faults.total_failures()
    );
}

fn classify(identifiers: &[String]) {
    if identifiers.is_empty() {
        eprintln!("classify: at least one identifier required");
        std::process::exit(2);
    }
    eprintln!("(training the reference classifier...)");
    let clf = snails::core::dataset_figures::reference_classifier();
    for id in identifiers {
        let level = clf.classify(id);
        let probs = clf.probabilities(id);
        println!(
            "{id}\t{}\t(Regular {:.2} / Low {:.2} / Least {:.2})",
            level.display_name(),
            probs[0],
            probs[1],
            probs[2]
        );
    }
}

fn abbreviate(args: &[String]) {
    let Some(id) = args.first() else {
        eprintln!("abbreviate: identifier required");
        std::process::exit(2);
    };
    let level = match args.get(1).map(String::as_str) {
        Some("least") => Naturalness::Least,
        _ => Naturalness::Low,
    };
    println!("{}", abbreviate_identifier(id, level));
}

fn expand(identifiers: &[String]) {
    if identifiers.is_empty() {
        eprintln!("expand: at least one identifier required");
        std::process::exit(2);
    }
    let expander = Expander::new();
    for id in identifiers {
        println!("{id}\t{}", expander.expand_identifier(id));
    }
}

fn audit(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("audit: database name required (see `snails list`)");
        std::process::exit(2);
    };
    let db = build_database(name);
    let profile = NaturalnessProfile::from_labels(
        db.identifier_levels().into_iter().map(|(_, l)| l),
    );
    println!("{} ({}):", db.spec.name, db.spec.org);
    println!("  tables {}  columns {}  questions {}", db.db.table_count(), db.db.column_count(), db.questions.len());
    for level in Naturalness::ALL {
        println!(
            "  {:<8} {:>5.1}%",
            level.display_name(),
            100.0 * profile.proportion(level)
        );
    }
    println!("  combined naturalness {:.2}", profile.combined());
    println!(
        "  recommendation: {}",
        if profile.combined() < 0.69 {
            "rename to Regular (or add natural views) before NLI integration"
        } else {
            "already natural; renaming unlikely to help"
        }
    );
}

fn ask(args: &[String]) {
    let (Some(name), Some(qid)) = (args.first(), args.get(1)) else {
        eprintln!("ask: usage `snails ask <DB> <question-id> [model]`");
        std::process::exit(2);
    };
    let qid: usize = qid.parse().expect("question id must be a number");
    let model = match args.get(2).map(String::as_str) {
        None | Some("gpt-4o") => ModelKind::Gpt4o,
        Some("gemini") => ModelKind::Gemini15Pro,
        Some("gpt-3.5") => ModelKind::Gpt35,
        Some("phind") => ModelKind::PhindCodeLlama,
        Some("codes") => ModelKind::CodeS,
        Some(other) => {
            eprintln!("unknown model {other} (gpt-4o|gemini|gpt-3.5|phind|codes)");
            std::process::exit(2);
        }
    };
    let db = build_database(name);
    let Some(pair) = db.questions.iter().find(|p| p.id == qid) else {
        eprintln!("{name} has no question {qid} (1..={})", db.questions.len());
        std::process::exit(2);
    };
    let view = SchemaView::new(&db, SchemaVariant::Native);
    let record = evaluate_question(Workflow::ZeroShot(model), &db, &view, pair, 2024);
    println!("Q:    {}", pair.question);
    println!("gold: {}", pair.sql);
    let inference = infer(&model.config(), &db, &view, pair, 2024);
    println!("pred: {}", inference.raw_sql);
    println!(
        "exec: {} | linking recall {}",
        if record.exec_correct { "correct" } else { "incorrect" },
        record
            .linking
            .map(|l| format!("{:.2}", l.recall))
            .unwrap_or_else(|| "n/a".into())
    );
}

fn sql(args: &[String]) {
    let (Some(name), Some(query)) = (args.first(), args.get(1)) else {
        eprintln!("sql: usage `snails sql <DB> \"SELECT ...\"`");
        std::process::exit(2);
    };
    let db = build_database(name);
    match run_sql(&db.db, query) {
        Ok(rs) => print!("{rs}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Explain one statement's cost-based plan: join order, pushed predicates,
/// index probes, and estimated vs actual cardinality per operator
/// (DESIGN.md §10). The statement is a SQL string or a gold question id.
///
/// `--threads N` runs the same explanation concurrently on `N` threads
/// against the shared database (shared lazy statistics and index caches)
/// and asserts every copy is identical — the CLI face of the planner's
/// determinism contract. Output is byte-identical for any `N`.
fn explain(args: &[String]) {
    let mut threads = 1usize;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("explain: --threads needs a positive integer");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let [name, stmt] = positional.as_slice() else {
        eprintln!("explain: usage `snails explain <DB> <query|question-id> [--threads N]`");
        std::process::exit(2);
    };
    let db = build_database(name);
    let sql = match stmt.parse::<usize>() {
        Ok(qid) => match db.questions.iter().find(|p| p.id == qid) {
            Some(pair) => pair.sql.clone(),
            None => {
                eprintln!("{name} has no question {qid} (1..={})", db.questions.len());
                std::process::exit(2);
            }
        },
        Err(_) => stmt.to_string(),
    };
    let parsed = match snails::sql::parse(&sql) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e:?}");
            std::process::exit(1);
        }
    };
    let plan = match snails::engine::compile(&db.db, &parsed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let explain_once = || plan.explain(&db.db, ExecOptions::default());
    let first = match explain_once() {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if threads > 1 {
        let copies: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (1..threads).map(|_| s.spawn(explain_once)).collect();
            handles.into_iter().map(|h| h.join().expect("explain thread")).collect()
        });
        for copy in copies {
            match copy {
                Ok(ex) if ex == first => {}
                Ok(_) => {
                    eprintln!("error: explanation diverged across threads");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("{sql}");
    print!("{}", first.render());
    println!("{{\"explain\":{}}}", first.to_json());
}

/// Wall-clock timings for the parallel scheduler and the join kernels,
/// emitted as JSON lines (no external dependencies — `format!` only).
fn bench(args: &[String]) {
    // The parallel legs need a thread count that actually differs from the
    // serial baseline: on a 1-core detection (containers, cgroup caps) a
    // "parallel" run at 1 thread would just re-time the serial leg and
    // report a meaningless ~1.0 speedup, so floor the default at 2 and
    // record the detected count honestly in the grid stage line.
    let detected = snails::core::available_threads();
    let mut threads = detected.max(2);
    let mut profile = FaultProfile::NONE;
    let mut telemetry_path: Option<String> = None;
    let mut show_explain = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--explain" {
            show_explain = true;
        } else if arg == "--fault-profile" {
            let Some(p) = it.next().and_then(|n| FaultProfile::by_name(n)) else {
                eprintln!("bench: --fault-profile takes none|flaky|hostile");
                std::process::exit(2);
            };
            profile = p;
        } else if arg == "--telemetry" {
            let Some(p) = it.next() else {
                eprintln!("bench: --telemetry takes an output path");
                std::process::exit(2);
            };
            telemetry_path = Some(p.clone());
        } else {
            match arg.parse() {
                Ok(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("bench: thread count must be a positive integer, got {arg:?}");
                    std::process::exit(2);
                }
            }
        }
    }
    let ms = |t: Instant| t.elapsed().as_secs_f64() * 1e3;

    // Every stage line goes to stdout and into the BENCH_engine.json
    // artifact written at the end of the run.
    let mut stages: Vec<String> = Vec::new();
    let mut emit = |line: String| {
        println!("{line}");
        stages.push(line);
    };

    // Benchmark grid: the same (database × variant × workflow × question)
    // cells serially and on `threads` workers. The record comparison
    // doubles as a determinism check on every bench run.
    let names = ["CWO", "KIS"];
    let collection: Vec<SnailsDatabase> =
        names.iter().map(|n| build_database(n)).collect();
    let config = |t: usize| BenchmarkConfig {
        seed: 2024,
        databases: names.iter().map(|s| s.to_string()).collect(),
        variants: SchemaVariant::ALL.to_vec(),
        workflows: vec![
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::ZeroShot(ModelKind::Gpt35),
            Workflow::DinSql,
            Workflow::CodeS,
        ],
        threads: Some(t),
        fault_profile: profile,
        telemetry: telemetry_path.is_some(),
        ..Default::default()
    };
    // Untimed warm-up pass so the serial baseline is not billed for page
    // faults and allocator warm-up the parallel run then gets for free.
    let _ = run_benchmark_on(&collection, &config(threads));
    let t0 = Instant::now();
    let serial = run_benchmark_on(&collection, &config(1));
    let serial_ms = ms(t0);
    let t1 = Instant::now();
    let parallel = run_benchmark_on(&collection, &config(threads));
    let parallel_ms = ms(t1);
    // Under a fault profile this comparison also proves the resilience
    // layer's determinism: same plans, failures, and retry counts at any
    // thread count.
    // Deterministic telemetry sections must also be byte-identical at any
    // thread count (volatile sections — scheduler shape — are exempt).
    let det_json =
        |run: &BenchmarkRun| run.telemetry.as_ref().map(telemetry::Report::deterministic_json);
    let serial_telemetry = det_json(&serial);
    let mut telemetry_identical = det_json(&parallel) == serial_telemetry;
    let mut records_match =
        serial.records == parallel.records && serial.faults == parallel.faults;
    emit(format!(
        "{{\"bench\":\"grid\",\"cells\":{},\"threads\":1,\"ms\":{serial_ms:.1}}}",
        serial.records.len()
    ));
    emit(format!(
        "{{\"bench\":\"grid\",\"cells\":{},\"threads\":{threads},\
         \"threads_detected\":{detected},\"ms\":{parallel_ms:.1},\
         \"speedup\":{:.2},\"records_match\":{records_match}}}",
        parallel.records.len(),
        serial_ms / parallel_ms
    ));
    // Determinism grid: records (and fault accounting) must be
    // bit-identical at 1, 2, and 8 workers. The serial and `threads` runs
    // above already cover their thread counts; fill in the rest.
    for t in [2usize, 8] {
        if t == threads {
            continue;
        }
        let run = run_benchmark_on(&collection, &config(t));
        records_match &= run.records == serial.records && run.faults == serial.faults;
        telemetry_identical &= det_json(&run) == serial_telemetry;
    }
    emit(format!(
        "{{\"bench\":\"grid_determinism\",\"threads\":[1,2,8],\
         \"identical\":{records_match}}}"
    ));
    // Fault accounting for the parallel run. Every planned cell must have
    // produced a record (failures become records; nothing aborts), so
    // aborted_cells is the completeness check CI asserts on.
    let aborted = parallel.faults.cells - parallel.records.len();
    emit(format!(
        "{{\"bench\":\"fault_summary\",\"profile\":\"{}\",\"aborted_cells\":{aborted},\
         \"summary\":{}}}",
        profile.name,
        parallel.faults.to_json()
    ));
    if aborted > 0 {
        eprintln!("error: {aborted} grid cells aborted without a record");
        std::process::exit(1);
    }
    // Structured telemetry report: the parallel run's full report (metrics
    // + sim-clock span rollup) goes to the requested path; the stage line
    // carries the headline numbers into BENCH_engine.json.
    if let Some(path) = &telemetry_path {
        let report = parallel.telemetry.as_ref().expect("telemetry was enabled");
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: could not write telemetry report {path}: {e}");
            std::process::exit(1);
        }
        let hit_rate = report.plan_cache_hit_rate().unwrap_or(0.0);
        emit(format!(
            "{{\"bench\":\"telemetry\",\"path\":{path:?},\
             \"identical_across_threads\":{telemetry_identical},\
             \"plan_cache_hit_rate\":{hit_rate:.3},\"statements\":{},\
             \"resilience_attempts\":{},\"resilience_retries\":{},\"breaker_trips\":{}}}",
            report.counter("engine.exec.statements"),
            report.counter("llm.resilience.attempts"),
            report.counter("llm.resilience.retries"),
            report.counter("llm.breaker.trips"),
        ));
    }

    // Checkpoint layer on the same 1280-cell grid: a cold write-through
    // run, a resume after losing half the stored records, and a 4-way
    // shard + merge. Each path must reproduce the cold run byte-for-byte
    // (records, fault summary, and deterministic telemetry, all folded
    // into the canonical manifest rendering).
    {
        use snails::core::checkpoint::{
            manifest_from_run, merge_manifests, CheckpointSpec, Shard,
        };
        let base = |dir: &std::path::Path| BenchmarkConfig {
            threads: Some(threads),
            fault_profile: profile,
            telemetry: true,
            checkpoint: Some(CheckpointSpec::at(dir)),
            ..grid_config()
        };
        let root =
            std::env::temp_dir().join(format!("snails-bench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cold_dir = root.join("cold");
        let cfg = base(&cold_dir);
        let t = Instant::now();
        let cold = run_benchmark_on(&collection, &cfg);
        let cold_ms = ms(t);
        let cold_manifest = snails::core::checkpoint::manifest_from_run(&cold, &cfg).to_string();
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(cold_dir.join("cells"))
            .expect("checkpoint cells dir exists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        files.sort();
        for (i, f) in files.iter().enumerate() {
            if i % 2 == 0 {
                let _ = std::fs::remove_file(f);
            }
        }
        let t = Instant::now();
        let resumed = run_benchmark_on(&collection, &cfg);
        let resume_ms = ms(t);
        let resume_stats = resumed.checkpoint.expect("checkpoint stats present");
        let mut ckpt_identical = manifest_from_run(&resumed, &cfg).to_string() == cold_manifest;
        let shard_dir = root.join("shards");
        let t = Instant::now();
        let manifests: Vec<_> = (0..4)
            .map(|index| {
                let cfg = BenchmarkConfig {
                    shard: Shard { index, count: 4 },
                    ..base(&shard_dir)
                };
                let run = run_benchmark_on(&collection, &cfg);
                manifest_from_run(&run, &cfg)
            })
            .collect();
        let shard_ms = ms(t);
        let t = Instant::now();
        let merged = merge_manifests(manifests).expect("complete disjoint shards merge");
        let merge_ms = ms(t);
        ckpt_identical &= merged.to_string() == cold_manifest;
        let _ = std::fs::remove_dir_all(&root);
        emit(format!(
            "{{\"bench\":\"checkpoint_resume\",\"cells\":{},\"cold_ms\":{cold_ms:.1},\
             \"resume50_ms\":{resume_ms:.1},\"resume_hits\":{},\"resume_speedup\":{:.2},\
             \"shard4_ms\":{shard_ms:.1},\"merge_ms\":{merge_ms:.2},\
             \"identical\":{ckpt_identical}}}",
            cold.grid_cells,
            resume_stats.hits,
            cold_ms / resume_ms,
        ));
        if !ckpt_identical {
            eprintln!("error: checkpoint resume or shard merge diverged from the cold run");
            std::process::exit(1);
        }
    }

    // Join kernels on the join-heavy gold queries (NTSB: composite-key
    // joins, Table 3): the full gold suite with the hash join off and on.
    let db = build_database("NTSB");
    let joins: Vec<&GoldPair> = db
        .questions
        .iter()
        .filter(|p| p.sql.to_ascii_uppercase().contains(" JOIN "))
        .collect();
    let time_suite = |opts: ExecOptions| {
        let t = Instant::now();
        for p in &joins {
            let _ = run_sql_with(&db.db, &p.sql, opts);
        }
        ms(t)
    };
    // Baseline stages (gold_joins, plan_exec, vector_exec, the batch
    // sweep, synthetic_join) pin `optimize: false` so they keep measuring
    // the raw kernels they are named for; the cost-based planner gets its
    // own `multi_join` stage below.
    let nested_ms =
        time_suite(ExecOptions { hash_join: false, optimize: false, ..Default::default() });
    let hash_ms =
        time_suite(ExecOptions { hash_join: true, optimize: false, ..Default::default() });
    emit(format!(
        "{{\"bench\":\"gold_joins\",\"database\":\"NTSB\",\"queries\":{},\
         \"nested_ms\":{nested_ms:.1},\"hash_ms\":{hash_ms:.1},\"speedup\":{:.1}}}",
        joins.len(),
        nested_ms / hash_ms
    ));

    // Plan-once-execute-many: the full NTSB gold workload executed `REPS`
    // times — lex/parse/name-resolve on every execution (interpret) vs
    // lowering each statement once and replaying its compiled plan from a
    // warm cache. The warm-up pass below doubles as a result-identity
    // check between the two paths.
    // The row-at-a-time plan runner is the `plan_exec` baseline; the
    // vectorized engine gets its own `vector_exec` stage below.
    let opts = ExecOptions { vectorized: false, optimize: false, ..Default::default() };
    let plans = snails::engine::PlanCache::new();
    let mut gold_rows = 0usize;
    let mut plans_identical = true;
    for p in &db.questions {
        let interpreted = run_sql(&db.db, &p.sql);
        let planned = plans.run(&db.db, &p.sql, opts);
        plans_identical &= planned == interpreted;
        if let Ok(rs) = &planned {
            gold_rows += rs.row_count();
        }
    }
    const REPS: usize = 25;
    let mut interp_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..REPS {
            for p in &db.questions {
                let _ = run_sql(&db.db, &p.sql);
            }
        }
        interp_ms = interp_ms.min(ms(t));
    }
    let run_plans = || {
        for _ in 0..REPS {
            for p in &db.questions {
                let _ = plans.run(&db.db, &p.sql, opts);
            }
        }
    };
    // Telemetry overhead on the same workload: the identical compiled-plan
    // loop with a metrics scope installed, so every per-operator observe
    // and cache-hit counter fires. The two loops alternate and each takes
    // its best of three passes, so scheduling drift cannot masquerade as
    // overhead. The contract is ≤5% overhead; the measured ratio is
    // recorded in the artifact either way.
    let obs = Arc::new(telemetry::ObsCtx::new(telemetry::ClockMode::Sim));
    let (mut plan_ms, mut telemetry_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let t = Instant::now();
        run_plans();
        plan_ms = plan_ms.min(ms(t));
        let t = Instant::now();
        {
            let _scope = telemetry::scope(&obs);
            run_plans();
        }
        telemetry_ms = telemetry_ms.min(ms(t));
    }
    let telemetry_overhead_pct = (telemetry_ms / plan_ms - 1.0) * 100.0;
    let rows_per_s = (gold_rows * REPS) as f64 / (plan_ms / 1e3);
    let (cache_hits, cache_misses) = (plans.hits(), plans.misses());
    emit(format!(
        "{{\"bench\":\"plan_exec\",\"database\":\"NTSB\",\"queries\":{},\"reps\":{REPS},\
         \"interpret_ms\":{interp_ms:.1},\"plan_ms\":{plan_ms:.1},\"speedup\":{:.2},\
         \"rows_per_s\":{rows_per_s:.0},\"cache_hits\":{cache_hits},\
         \"cache_misses\":{cache_misses},\"results_identical\":{plans_identical},\
         \"telemetry_ms\":{telemetry_ms:.1},\
         \"telemetry_overhead_pct\":{telemetry_overhead_pct:.1}}}",
        db.questions.len(),
        interp_ms / plan_ms
    ));

    // Batch-at-a-time columnar execution of the same gold workload: the
    // same warm plan cache, executed through the vectorized engine. The
    // warm-up pass is the result-identity check against the interpreter.
    let vec_opts = ExecOptions { optimize: false, ..Default::default() };
    let mut vec_identical = true;
    for p in &db.questions {
        vec_identical &= plans.run(&db.db, &p.sql, vec_opts) == run_sql(&db.db, &p.sql);
    }
    let time_plans = |o: ExecOptions| {
        let t = Instant::now();
        for _ in 0..REPS {
            for p in &db.questions {
                let _ = plans.run(&db.db, &p.sql, o);
            }
        }
        ms(t)
    };
    let mut vec_ms = f64::INFINITY;
    for _ in 0..3 {
        vec_ms = vec_ms.min(time_plans(vec_opts));
    }
    let vec_rows_per_s = (gold_rows * REPS) as f64 / (vec_ms / 1e3);
    // Steady-state allocation accounting (cache, pool stash, and page
    // tables are warm after the timing loops): one obs-scoped pass counts
    // the batches executed, one unscoped pass is measured by the counting
    // allocator. Materializing the result rows is the one per-row
    // allocation the buffer pool cannot absorb, so it is subtracted.
    let ctx = Arc::new(telemetry::ObsCtx::new(telemetry::ClockMode::Sim));
    {
        let _scope = telemetry::scope(&ctx);
        for p in &db.questions {
            let _ = plans.run(&db.db, &p.sql, vec_opts);
        }
    }
    let vec_batches = ctx.report().counter("engine.vec.batches").max(1);
    let before = ALLOC.snapshot();
    for p in &db.questions {
        let _ = plans.run(&db.db, &p.sql, vec_opts);
    }
    let d = ALLOC.snapshot().since(before);
    let vec_allocs_per_batch =
        d.allocs.saturating_sub(gold_rows as u64) as f64 / vec_batches as f64;
    emit(format!(
        "{{\"bench\":\"vector_exec\",\"database\":\"NTSB\",\"queries\":{},\"reps\":{REPS},\
         \"vector_ms\":{vec_ms:.1},\"speedup_vs_interpreter\":{:.2},\
         \"speedup_vs_row_plan\":{:.2},\"rows_per_s\":{vec_rows_per_s:.0},\
         \"batches\":{vec_batches},\"hot_allocs\":{},\
         \"allocs_per_batch\":{vec_allocs_per_batch:.2},\
         \"results_identical\":{vec_identical}}}",
        db.questions.len(),
        interp_ms / vec_ms,
        plan_ms / vec_ms,
        d.allocs
    ));
    // Batch-size sweep over the same workload. The default is no longer a
    // fixed 1024: `batch_size: None` picks per query from the plan's row
    // width (DESIGN.md §11), and the sweep records the adaptive run next
    // to the fixed sizes — plus the picks at representative widths — so a
    // mistuned default can't silently return.
    let sweep: Vec<String> = [256usize, 1024, 4096]
        .iter()
        .map(|&b| {
            let o = ExecOptions { batch_size: Some(b), optimize: false, ..Default::default() };
            format!("\"ms_{b}\":{:.1}", time_plans(o))
        })
        .collect();
    let adaptive_ms = time_plans(vec_opts);
    emit(format!(
        "{{\"bench\":\"vector_batch_sweep\",{},\"ms_adaptive\":{adaptive_ms:.1},\
         \"adaptive_pick_width2\":{},\"adaptive_pick_width8\":{},\
         \"adaptive_pick_width32\":{}}}",
        sweep.join(","),
        snails::engine::adaptive_batch_size(2),
        snails::engine::adaptive_batch_size(8),
        snails::engine::adaptive_batch_size(32)
    ));

    // Synthetic equi join scaled past a million rows: 1.2M-row probe side
    // against a 100K-row build side, grouped back down to 100K keys. The
    // quadratic nested loop is infeasible here (1.2×10^11 comparisons), so
    // the contest is the row-at-a-time hash join against the vectorized
    // engine, with a result-identity check between the two.
    const PROBE_ROWS: i64 = 1_200_000;
    const BUILD_ROWS: i64 = 100_000;
    let mut sdb = Database::new("bench");
    sdb.create_table(TableSchema::new("a").column("k", DataType::Int).column("v", DataType::Int));
    sdb.create_table(TableSchema::new("b").column("k", DataType::Int).column("w", DataType::Int));
    for i in 0..PROBE_ROWS {
        sdb.insert("a", vec![Value::Int(i % BUILD_ROWS), Value::Int(i)]).expect("insert");
    }
    for i in 0..BUILD_ROWS {
        sdb.insert("b", vec![Value::Int(i), Value::Int(i * 2)]).expect("insert");
    }
    let sql = "SELECT a.k, COUNT(*), MAX(b.w) FROM a JOIN b ON a.k = b.k \
               WHERE a.v >= 200000 GROUP BY a.k";
    let row_opts = ExecOptions { vectorized: false, optimize: false, ..Default::default() };
    let vec_join_opts = ExecOptions { optimize: false, ..Default::default() };
    let join_plans = snails::engine::PlanCache::new();
    // Warm-up doubles as the three-way identity check: interpreter,
    // row-at-a-time plan, vectorized plan.
    let interp_rs = run_sql_with(&sdb, sql, vec_join_opts);
    let join_identical = join_plans.run(&sdb, sql, row_opts) == interp_rs
        && join_plans.run(&sdb, sql, vec_join_opts) == interp_rs;
    let time_one = |opts: ExecOptions| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            join_plans.run(&sdb, sql, opts).expect("synthetic join runs");
            best = best.min(ms(t));
        }
        best
    };
    let row_ms = time_one(row_opts);
    let vec_join_ms = time_one(vec_join_opts);
    let join_rows_per_s = PROBE_ROWS as f64 / (vec_join_ms / 1e3);
    // Steady-state allocation accounting, as in `vector_exec` above. One
    // statement spread over thousands of batches: per-statement setup
    // amortizes away and what remains is the per-batch hot loop, which
    // the buffer pool must keep allocation-free (check.sh gates ≤ 2).
    let ctx = Arc::new(telemetry::ObsCtx::new(telemetry::ClockMode::Sim));
    {
        let _scope = telemetry::scope(&ctx);
        join_plans.run(&sdb, sql, vec_join_opts).expect("synthetic join runs");
    }
    let join_batches = ctx.report().counter("engine.vec.batches").max(1);
    let join_out_rows = interp_rs.as_ref().map_or(0, snails::engine::ResultSet::row_count) as u64;
    let before = ALLOC.snapshot();
    join_plans.run(&sdb, sql, vec_join_opts).expect("synthetic join runs");
    let d = ALLOC.snapshot().since(before);
    let join_allocs_per_batch =
        d.allocs.saturating_sub(join_out_rows) as f64 / join_batches as f64;
    emit(format!(
        "{{\"bench\":\"synthetic_join\",\"rows\":{PROBE_ROWS},\
         \"row_plan_ms\":{row_ms:.1},\"vector_ms\":{vec_join_ms:.1},\"speedup\":{:.1},\
         \"rows_per_s\":{join_rows_per_s:.0},\"batches\":{join_batches},\
         \"hot_allocs\":{},\"allocs_per_batch\":{join_allocs_per_batch:.2},\
         \"results_identical\":{join_identical}}}",
        row_ms / vec_join_ms,
        d.allocs
    ));

    // Cost-based planner on a star-shaped three-table join (DESIGN.md
    // §10): a 300K-row fact table against two dimensions, with a
    // selective predicate on the *last* dimension in FROM order. The
    // unoptimized pipeline joins fact×d1 first (1.2M intermediate rows)
    // and filters at the end; the planner pushes the predicate into an
    // index probe on d2 and joins fact×d2 first (~150 rows), so the
    // speedup is the cost of the wasted intermediate. Results must be
    // identical — the optimized path's whole contract.
    const FACT_ROWS: i64 = 300_000;
    let mut mdb = Database::new("bench_mj");
    mdb.create_table(
        TableSchema::new("fact")
            .column("k1", DataType::Int)
            .column("k2", DataType::Int)
            .column("v", DataType::Int),
    );
    mdb.create_table(
        TableSchema::new("d1").column("k1", DataType::Int).column("a", DataType::Varchar),
    );
    mdb.create_table(
        TableSchema::new("d2").column("k2", DataType::Int).column("b", DataType::Varchar),
    );
    for i in 0..FACT_ROWS {
        mdb.insert("fact", vec![Value::Int(i % 1000), Value::Int(i % 2000), Value::Int(i)])
            .expect("insert");
    }
    for j in 0..4000i64 {
        mdb.insert("d1", vec![Value::Int(j % 1000), Value::Str(format!("a{j}").into())])
            .expect("insert");
    }
    for j in 0..2000i64 {
        mdb.insert("d2", vec![Value::Int(j), Value::Str(format!("code{j}").into())])
            .expect("insert");
    }
    let mj_sql = "SELECT COUNT(*), SUM(fact.v) FROM fact \
                  JOIN d1 ON fact.k1 = d1.k1 \
                  JOIN d2 ON fact.k2 = d2.k2 \
                  WHERE d2.b = 'code7'";
    let mj_plans = snails::engine::PlanCache::new();
    let mj_off = ExecOptions { optimize: false, ..Default::default() };
    let mj_on = ExecOptions::default();
    let mj_identical = mj_plans.run(&mdb, mj_sql, mj_off) == mj_plans.run(&mdb, mj_sql, mj_on);
    let time_mj = |o: ExecOptions| {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            mj_plans.run(&mdb, mj_sql, o).expect("multi-join runs");
            best = best.min(ms(t));
        }
        best
    };
    let mj_off_ms = time_mj(mj_off);
    let mj_on_ms = time_mj(mj_on);
    emit(format!(
        "{{\"bench\":\"multi_join\",\"rows\":{FACT_ROWS},\"unoptimized_ms\":{mj_off_ms:.1},\
         \"optimized_ms\":{mj_on_ms:.1},\"speedup\":{:.1},\"results_identical\":{mj_identical}}}",
        mj_off_ms / mj_on_ms
    ));
    if show_explain {
        let parsed = snails::sql::parse(mj_sql).expect("multi-join SQL parses");
        let plan = snails::engine::compile(&mdb, &parsed).expect("multi-join SQL compiles");
        let ex = plan.explain(&mdb, ExecOptions::default()).expect("explain runs");
        print!("{}", ex.render());
    }

    // Plan-cache capacity: the same grid once at a bounded capacity and
    // once at twice that capacity. If doubling the cache barely moves the
    // hit rate, the misses are compulsory (first sight of each distinct
    // statement) rather than capacity evictions — the artifact records
    // the verdict so the unbounded default is a documented choice, not an
    // assumption.
    let cache_cap = 64usize;
    let cap_run = |cap: usize| {
        let run = run_benchmark_on(
            &collection,
            &BenchmarkConfig {
                cache_capacity: Some(cap),
                telemetry: true,
                ..config(threads)
            },
        );
        let report = run.telemetry.as_ref().expect("telemetry enabled");
        (
            report.plan_cache_hit_rate().unwrap_or(0.0),
            report.counter("engine.plan.cache_eviction"),
            run,
        )
    };
    let (hit_rate, evictions, cap_records) = cap_run(cache_cap);
    let (hit_rate_2x, evictions_2x, cap2_records) = cap_run(cache_cap * 2);
    let bounded_match =
        cap_records.records == serial.records && cap2_records.records == serial.records;
    let verdict =
        if hit_rate_2x - hit_rate < 0.02 { "compulsory" } else { "capacity" };
    emit(format!(
        "{{\"bench\":\"plan_cache_capacity\",\"capacity\":{cache_cap},\
         \"hit_rate\":{hit_rate:.3},\"evictions\":{evictions},\
         \"hit_rate_2x\":{hit_rate_2x:.3},\"evictions_2x\":{evictions_2x},\
         \"records_match\":{bounded_match},\"misses_are\":\"{verdict}\"}}",
    ));
    records_match &= bounded_match;

    // Grid-workload verdict: the unbounded grid runs at a ~0.50 hit rate.
    // Reuse the capacity machinery — an unbounded run's miss count is the
    // number of distinct statement keys D; a cache bounded at exactly D
    // can then only miss on first sight. If its hit rate matches the
    // unbounded run, every grid miss is compulsory (genuinely distinct
    // SQL across naturalness variants), not a capacity or keying
    // artifact.
    let (unb_rate, _, unb_run) = cap_run(usize::MAX);
    let unb_report = unb_run.telemetry.as_ref().expect("telemetry enabled");
    let distinct = unb_report.counter("engine.plan.cache_miss").max(1);
    let (rate_d, ev_d, _) = cap_run(distinct as usize);
    let grid_verdict = if (unb_rate - rate_d).abs() < 0.02 && ev_d == 0 {
        "compulsory"
    } else {
        "capacity"
    };
    emit(format!(
        "{{\"bench\":\"grid_cache_verdict\",\"distinct_statements\":{distinct},\
         \"hit_rate_unbounded\":{unb_rate:.3},\"hit_rate_at_distinct\":{rate_d:.3},\
         \"evictions_at_distinct\":{ev_d},\"compulsory_vs_capacity\":\"{grid_verdict}\"}}",
    ));

    // Machine-readable artifact: every stage line above, wrapped in one
    // JSON document (hand-assembled — each stage is already valid JSON).
    let artifact = format!(
        "{{\n  \"bench\": \"engine\",\n  \"threads\": {threads},\n  \"stages\": [\n    {}\n  ]\n}}\n",
        stages.join(",\n    ")
    );
    if let Err(e) = std::fs::write("BENCH_engine.json", &artifact) {
        eprintln!("error: could not write BENCH_engine.json: {e}");
        std::process::exit(1);
    }

    if !records_match {
        eprintln!("error: records diverged across thread counts");
        std::process::exit(1);
    }
    if !telemetry_identical {
        eprintln!("error: deterministic telemetry diverged across thread counts");
        std::process::exit(1);
    }
    if !plans_identical || !vec_identical || !join_identical {
        eprintln!("error: compiled-plan results diverged from the interpreter");
        std::process::exit(1);
    }
}

fn list() {
    println!("Database  Tables  Columns  Questions  Combined");
    for name in snails::data::DATABASE_NAMES {
        let db = build_database(name);
        println!(
            "{:<9} {:>6}  {:>7}  {:>9}  {:>8.2}",
            db.spec.name,
            db.db.table_count(),
            db.db.column_count(),
            db.questions.len(),
            db.combined_naturalness()
        );
    }
}

// ---------------------------------------------------------------------------
// Serving layer (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Shared flag state for `snails serve` / `snails load`.
struct ServeArgs {
    socket: Option<String>,
    tenants: Vec<String>,
    dbs: Vec<String>,
    queue_depth: usize,
    batch: usize,
    threads: usize,
    serial: bool,
    seed: u64,
    fault_profile: FaultProfile,
    telemetry: Option<String>,
    clients: usize,
    requests: usize,
    out: Option<String>,
    shutdown: bool,
}

impl ServeArgs {
    fn parse(cmd: &str, args: &[String]) -> ServeArgs {
        let mut a = ServeArgs {
            socket: None,
            tenants: vec!["alpha".into(), "beta".into()],
            dbs: vec!["CWO".into()],
            queue_depth: 4096,
            batch: 64,
            threads: 0,
            serial: false,
            seed: 2024,
            fault_profile: FaultProfile::NONE,
            telemetry: None,
            clients: 1024,
            requests: 8,
            out: None,
            shutdown: false,
        };
        let missing = |flag: &str| -> ! {
            eprintln!("{cmd}: {flag} needs a value");
            std::process::exit(2);
        };
        let list = |v: Option<&String>, flag: &str| -> Vec<String> {
            let Some(v) = v else { missing(flag) };
            v.split(',').filter(|s| !s.is_empty()).map(str::to_owned).collect()
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--socket" => match it.next() {
                    Some(p) => a.socket = Some(p.clone()),
                    None => missing("--socket"),
                },
                "--tenants" => a.tenants = list(it.next(), "--tenants"),
                "--dbs" => a.dbs = list(it.next(), "--dbs"),
                "--queue-depth" => match it.next().and_then(|n| n.parse().ok()) {
                    Some(n) => a.queue_depth = n,
                    None => missing("--queue-depth"),
                },
                "--batch" => match it.next().and_then(|n| n.parse().ok()) {
                    Some(n) => a.batch = n,
                    None => missing("--batch"),
                },
                "--threads" => match it.next().and_then(|n| n.parse().ok()) {
                    Some(n) => a.threads = n,
                    None => missing("--threads"),
                },
                "--serial" => a.serial = true,
                "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                    Some(n) => a.seed = n,
                    None => missing("--seed"),
                },
                "--fault-profile" => match it.next().and_then(|n| FaultProfile::by_name(n)) {
                    Some(p) => a.fault_profile = p,
                    None => {
                        eprintln!("{cmd}: --fault-profile takes none|flaky|hostile");
                        std::process::exit(2);
                    }
                },
                "--telemetry" => match it.next() {
                    Some(p) => a.telemetry = Some(p.clone()),
                    None => missing("--telemetry"),
                },
                "--clients" => match it.next().and_then(|n| n.parse().ok()) {
                    Some(n) if n > 0 => a.clients = n,
                    _ => missing("--clients"),
                },
                "--requests" => match it.next().and_then(|n| n.parse().ok()) {
                    Some(n) if n > 0 => a.requests = n,
                    _ => missing("--requests"),
                },
                "--out" => match it.next() {
                    Some(p) => a.out = Some(p.clone()),
                    None => missing("--out"),
                },
                "--shutdown" => a.shutdown = true,
                other => {
                    eprintln!("{cmd}: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        if a.tenants.is_empty() || a.dbs.is_empty() {
            eprintln!("{cmd}: at least one tenant and one database required");
            std::process::exit(2);
        }
        a
    }

    fn config(&self) -> snails::serve::ServeConfig {
        snails::serve::ServeConfig {
            seed: self.seed,
            queue_depth: self.queue_depth,
            batch_max: self.batch,
            threads: self.threads,
            serial: self.serial,
            fault_profile: self.fault_profile,
            telemetry: true,
            ..Default::default()
        }
    }

    fn build_dbs(&self) -> Vec<Arc<SnailsDatabase>> {
        self.dbs.iter().map(|n| Arc::new(build_database(n))).collect()
    }

    fn specs(&self, dbs: &[Arc<SnailsDatabase>]) -> Vec<snails::serve::TenantSpec> {
        self.tenants
            .iter()
            .map(|t| snails::serve::TenantSpec::full(t, dbs.to_vec()))
            .collect()
    }

    fn plan(&self, dbs: &[Arc<SnailsDatabase>]) -> snails::serve::LoadPlan {
        snails::serve::LoadPlan {
            clients: self.clients,
            requests_per_client: self.requests,
            seed: self.seed,
            tenants: self
                .tenants
                .iter()
                .map(|t| snails::serve::TenantWorkload::from_full(t, dbs))
                .collect(),
        }
    }
}

/// `snails serve`: bind a unix socket and serve until a shutdown frame.
///
/// In `--serial` mode the main thread is the reactor: it drives
/// [`snails::serve::Server::poll_batch`] in a loop, so the whole server is
/// a deterministic state machine and the socket is just its inbox.
fn serve(args: &[String]) {
    use snails::serve::{Server, UnixServer};

    let a = ServeArgs::parse("serve", args);
    let Some(socket) = a.socket.clone() else {
        eprintln!("serve: --socket <path> is required");
        std::process::exit(2);
    };
    let dbs = a.build_dbs();
    let server = Server::start(a.config(), a.specs(&dbs));
    let mut unix = match UnixServer::bind(std::path::Path::new(&socket), Arc::clone(&server)) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("serve: could not bind {socket}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{{\"serve\":\"ready\",\"socket\":{socket:?},\"tenants\":{},\"databases\":{},\
         \"queue_depth\":{},\"serial\":{}}}",
        a.tenants.len(),
        a.dbs.len(),
        a.queue_depth,
        a.serial
    );
    if a.serial {
        while !unix.stopped() {
            if server.poll_batch() == 0 {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }
        unix.wait();
    } else {
        unix.wait();
    }
    let responses = server.shutdown();
    if let Some(path) = &a.telemetry {
        if let Some(report) = server.telemetry_report() {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("serve: could not write telemetry report {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{{\"serve\":\"goodbye\",\"responses\":{responses}}}");
}

/// `snails load`: with `--socket`, drive a running server over its unix
/// socket in lockstep (plus an optional `--shutdown` frame); otherwise run
/// the full in-process load suite and write `BENCH_serve.json`.
fn load(args: &[String]) {
    let a = ServeArgs::parse("load", args);
    match &a.socket {
        Some(socket) => load_socket(&a, socket),
        None => load_suite(&a),
    }
}

/// Lockstep drive of an external server over its unix socket.
fn load_socket(a: &ServeArgs, socket: &str) {
    use snails::serve::{Request, Response, UnixClient};

    let path = std::path::Path::new(socket);
    let dbs = a.build_dbs();
    let plan = snails::serve::LoadPlan {
        clients: if a.clients == 1024 { 8 } else { a.clients },
        ..a.plan(&dbs)
    };
    let out = match snails::serve::run_unix_lockstep(path, &plan) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("load: socket drive failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{{\"load\":\"unix\",\"clients\":{},\"total\":{},\"ok\":{},\"errors\":{},\
         \"shed\":{},\"dropped\":{},\"transcript_hash\":\"{:016x}\"}}",
        plan.clients,
        out.total,
        out.ok,
        out.errors,
        out.shed,
        out.dropped(),
        out.transcript_hash
    );
    if out.dropped() > 0 {
        eprintln!("load: {} requests never received a response", out.dropped());
        std::process::exit(1);
    }
    if a.shutdown {
        let goodbye = UnixClient::connect(path).and_then(|mut c| c.call(&Request::Shutdown));
        match goodbye {
            Ok(Response::Goodbye { responses }) => {
                println!("{{\"load\":\"shutdown\",\"responses\":{responses}}}");
            }
            Ok(other) => {
                eprintln!("load: unexpected shutdown reply: {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("load: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The in-process load suite: four staged drives against fresh servers,
/// with the same stage-line-JSON artifact convention as `snails bench`.
fn load_suite(a: &ServeArgs) {
    use snails::serve::{run_concurrent, run_serial, Request, Server};

    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut stages: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut emit = |line: String| {
        println!("{line}");
        stages.push(line);
    };
    let dbs = a.build_dbs();

    // Stage 1 — sustained concurrent load: `clients` closed-loop clients
    // (default 1024) each keeping one request in flight. The gate is
    // completeness: every request resolves (answered or typed-shed).
    {
        let server = Server::start(a.config(), a.specs(&dbs));
        let plan = a.plan(&dbs);
        let report = run_concurrent(&server, &plan, 8);
        server.shutdown();
        emit(format!(
            "{{\"serve\":\"load\",\"clients\":{},\"requests\":{},\"ok\":{},\"errors\":{},\
             \"shed\":{},\"dropped\":{},\"wall_ms\":{:.1},\"throughput_rps\":{:.0},\
             \"p50_us\":{:.1},\"p90_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1}}}",
            plan.clients,
            report.total,
            report.ok,
            report.errors,
            report.shed,
            report.dropped,
            ms(report.wall),
            report.throughput_rps,
            report.latency_ns.p50 as f64 / 1e3,
            report.latency_ns.p90 as f64 / 1e3,
            report.latency_ns.p99 as f64 / 1e3,
            report.latency_ns.max as f64 / 1e3,
        ));
        if report.dropped > 0 {
            failures.push(format!("load: {} requests never resolved", report.dropped));
        }
    }

    // Stage 2 — deterministic replay: the same serial plan twice at each
    // of 1/2/8 fan-out threads. Queue depth below the burst size forces
    // shed placement into the transcript, so determinism covers the
    // admission path too. Gate: one transcript hash, one deterministic
    // telemetry rendering, across all six runs.
    {
        let replay = snails::serve::LoadPlan {
            clients: 256,
            requests_per_client: 4,
            ..a.plan(&dbs)
        };
        let mut hashes = std::collections::BTreeSet::new();
        let mut det = std::collections::BTreeSet::new();
        let mut shed = 0u64;
        let mut ticks = 0u64;
        let mut lat = snails_bench::Percentiles::default();
        for threads in [1usize, 2, 8] {
            for _run in 0..2 {
                let cfg = snails::serve::ServeConfig {
                    serial: true,
                    threads,
                    queue_depth: 192,
                    batch_max: 32,
                    ..a.config()
                };
                let server = Server::start(cfg, a.specs(&dbs));
                let mut out = run_serial(&server, &replay, false);
                if out.dropped() > 0 {
                    failures.push(format!(
                        "serial_replay: {} requests never resolved",
                        out.dropped()
                    ));
                }
                det.insert(
                    server.telemetry_report().expect("telemetry enabled").deterministic_json(),
                );
                server.shutdown();
                hashes.insert(out.transcript_hash);
                shed = out.shed;
                ticks = out.ticks;
                lat = snails_bench::Percentiles::of(&mut out.latencies_ticks);
            }
        }
        let identical = hashes.len() == 1 && det.len() == 1;
        emit(format!(
            "{{\"serve\":\"serial_replay\",\"clients\":256,\"threads\":[1,2,8],\"runs\":6,\
             \"shed\":{shed},\"ticks\":{ticks},\"latency_ticks_p50\":{},\
             \"latency_ticks_p99\":{},\"transcripts\":{},\"telemetries\":{},\
             \"identical\":{identical}}}",
            lat.p50,
            lat.p99,
            hashes.len(),
            det.len(),
        ));
        if !identical {
            failures.push("serial_replay: transcripts or telemetry diverged".into());
        }
        if shed == 0 {
            failures.push("serial_replay: burst never exercised the shed path".into());
        }
    }

    // Stage 3 — fault soak: the flaky profile injects transient and
    // corrupting faults into execution. The gate is the serving contract
    // under faults: zero dropped requests and exact per-tenant
    // reconciliation (requests == ok + errors).
    {
        let cfg = snails::serve::ServeConfig {
            fault_profile: FaultProfile::FLAKY,
            ..a.config()
        };
        let server = Server::start(cfg, a.specs(&dbs));
        let plan = snails::serve::LoadPlan {
            clients: 512,
            requests_per_client: 8,
            ..a.plan(&dbs)
        };
        let report = run_concurrent(&server, &plan, 8);
        let stats = server.tenant_stats();
        let reconciled = stats.iter().all(|s| s.requests == s.ok + s.errors);
        let faults = server
            .telemetry_report()
            .expect("telemetry enabled")
            .counter("serve.faults.injected");
        server.shutdown();
        emit(format!(
            "{{\"serve\":\"fault_soak\",\"profile\":\"flaky\",\"requests\":{},\"ok\":{},\
             \"errors\":{},\"shed\":{},\"dropped\":{},\"faults_injected\":{faults},\
             \"tenants_reconciled\":{reconciled}}}",
            report.total, report.ok, report.errors, report.shed, report.dropped,
        ));
        if report.dropped > 0 {
            failures.push(format!("fault_soak: {} requests never resolved", report.dropped));
        }
        if !reconciled {
            failures.push("fault_soak: tenant counters do not reconcile".into());
        }
    }

    // Stage 4 — overload and drain. Serial burst: 64 single-shot clients
    // against a depth-32 queue shed exactly 64 - 32 requests and the
    // queue never exceeds its depth. Then a concurrent drain: submissions
    // in flight when `drain` lands all resolve (Draining for refused),
    // none hang.
    {
        let depth = 32usize;
        let cfg = snails::serve::ServeConfig {
            serial: true,
            threads: 1,
            queue_depth: depth,
            batch_max: 16,
            ..a.config()
        };
        let server = Server::start(cfg, a.specs(&dbs));
        let burst = snails::serve::LoadPlan {
            clients: 64,
            requests_per_client: 1,
            ..a.plan(&dbs)
        };
        let out = run_serial(&server, &burst, false);
        let report = server.telemetry_report().expect("telemetry enabled");
        let shed_counter = report.counter("serve.shed");
        let high_water = server.high_water();
        let responses = server.shutdown();
        let shed_exact = out.shed == (64 - depth) as u64 && shed_counter == out.shed;
        let bounded = high_water <= depth;
        let complete = out.dropped() == 0 && responses == out.total - out.shed;

        let drain_server = Server::start(a.config(), a.specs(&dbs));
        let client = snails::serve::InProcClient::new(Arc::clone(&drain_server));
        let tickets: Vec<_> = (0..100u32)
            .map(|i| client.call_async(Request::Ping { tag: u64::from(i) }))
            .collect();
        drain_server.drain();
        let refused = client.call_async(Request::Ping { tag: 999 });
        let drained = tickets.iter().all(|t| t.try_take().is_some())
            && matches!(
                refused.try_take(),
                Some(snails::serve::Response::Err {
                    error: snails::serve::ServeError::Draining,
                    ..
                })
            );
        drain_server.shutdown();

        emit(format!(
            "{{\"serve\":\"overload\",\"burst\":64,\"queue_depth\":{depth},\"shed\":{},\
             \"shed_exact\":{shed_exact},\"high_water\":{high_water},\
             \"bounded\":{bounded},\"complete\":{complete},\"drain_complete\":{drained}}}",
            out.shed,
        ));
        if !(shed_exact && bounded && complete && drained) {
            failures.push("overload: admission or drain invariant violated".into());
        }
    }

    let artifact = format!(
        "{{\n  \"bench\": \"serve\",\n  \"seed\": {},\n  \"stages\": [\n    {}\n  ]\n}}\n",
        a.seed,
        stages.join(",\n    ")
    );
    let out_path = a.out.clone().unwrap_or_else(|| "BENCH_serve.json".into());
    if let Err(e) = std::fs::write(&out_path, &artifact) {
        eprintln!("load: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
}
