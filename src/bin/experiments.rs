//! Regenerate every table and figure of the SNAILS paper.
//!
//! ```text
//! cargo run --release --bin experiments            # full run → stdout
//! cargo run --release --bin experiments -- --write # also writes EXPERIMENTS.md
//! cargo run --release --bin experiments -- --quick # 3 databases, faster
//! cargo run --release --bin experiments -- --fig8  # one section only
//! cargo run --release --bin experiments -- --fault-profile flaky
//!                                                  # inject simulated API faults
//! cargo run --release --bin experiments -- --telemetry telemetry.json
//!                                                  # write the benchmark's
//!                                                  # observability report
//! cargo run --release --bin experiments -- --ckpt ckpt-dir --shard 0/4
//!                                                  # checkpoint benchmark cells
//!                                                  # and run one shard of the grid
//! ```

use snails_core::checkpoint::{CheckpointSpec, Shard};
use snails_core::dataset_figures as ds;
use snails_core::pipeline::{run_benchmark_on, BenchmarkConfig, BenchmarkRun};
use snails_core::result_figures as rf;
use snails_data::SnailsDatabase;
use snails_llm::{FaultProfile, Workflow};
use snails_naturalness::category::SchemaVariant;
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    write: bool,
    quick: bool,
    only: Option<String>,
    seed: u64,
    threads: Option<usize>,
    fault_profile: FaultProfile,
    telemetry: Option<String>,
    shard: Shard,
    ckpt: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        write: false,
        quick: false,
        only: None,
        seed: 2024,
        threads: None,
        fault_profile: FaultProfile::NONE,
        telemetry: None,
        shard: Shard::FULL,
        ckpt: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--write" => args.write = true,
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--threads" => {
                args.threads = Some(
                    argv.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--threads takes a positive integer"),
                );
            }
            "--fault-profile" => {
                args.fault_profile = argv
                    .next()
                    .and_then(|s| FaultProfile::by_name(&s))
                    .expect("--fault-profile takes none|flaky|hostile");
            }
            "--telemetry" => {
                args.telemetry = Some(argv.next().expect("--telemetry takes an output path"));
            }
            "--shard" => {
                args.shard = argv
                    .next()
                    .map(|s| Shard::parse(&s).expect("--shard takes i/n with 0 <= i < n"))
                    .expect("--shard takes i/n with 0 <= i < n");
            }
            "--ckpt" => {
                args.ckpt = Some(argv.next().expect("--ckpt takes a checkpoint directory"));
            }
            flag if flag.starts_with("--") => args.only = Some(flag[2..].to_owned()),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn wants(args: &Args, section: &str) -> bool {
    args.only.as_deref().is_none_or(|o| o == section)
}

/// What the paper reports for each section — the "paper" side of the
/// paper-vs-measured record.
fn paper_note(section: &str) -> &'static str {
    match section {
        "table1" => "Paper: five example identifiers per level (airbag / AccountChk / AdCtTxIRWT, ...).",
        "fig2" => "Paper: mean token-in-dictionary decreases monotonically Regular → Low → Least (box plot, §2.1).",
        "table2" => "Paper: 9 databases, 36/28/13/18/27/40/27/21/2588 tables, 245/192/71/157/190/1611/423/196/90477 columns, 503 questions. Measured matches exactly by construction.",
        "table3" => "Paper: e.g. NTSB has 21 composite-key joins and 82 function queries; SBOD 82 WHERE and no EXISTS/negation. Measured clause counts approximate the same per-database profile from the template mixes.",
        "table4" => "Paper: 9 SAP modules (Banking 40 … Human Resources 28 … Service 40 tables) with 10–20 questions each; prompts use pruned module schemas.",
        "fig5" => "Paper combined naturalness: ASIS .77, ATBI .70, CWO .84, KIS .79, NPFM .70, NTSB .59, NYSED .68, PILB ~.75, SBOD .49. Measured values are within ±0.05 by construction.",
        "fig3" => "Paper: SNAILS is less natural than Spider/Spider-Realistic/BIRD and closest to SchemaPile; Spider/BIRD are highly natural.",
        "table5" => "Paper: heuristic < few-shot (GPT-3.5 .646, GPT-4 .742) < finetuned (.896-.899); character tagging (+TG) improves F1. Measured reproduces the ordering and the ≈0.9 finetuned ceiling.",
        "schemapile" => "Paper: >7,500 schemas (32%) with ≥10% Least identifiers; >5,000 schemas with combined ≤0.7, within which Low+Least outnumber Regular.",
        "fig26" => "Paper: more natural identifiers have more characters (CDF shifts right with naturalness).",
        "fig27" => "Paper: token count alone is NOT very sensitive to naturalness (abbreviations fragment into subtokens).",
        "fig28" => "Paper: token-to-character ratio is clearly lower for more natural identifiers, for every model tokenizer.",
        "modifiers" => "Paper (appendix C): few-shot abbreviation is reliable; expansion needs metadata; outputs were human-validated.",
        "fig8" => "Paper: slight improvement Native → Regular, significant drop at Low, worst at Least; gemini/gpt-4o ≈ .5-.6, gpt-3.5 ≈ .45, phind/codes ≈ .3 on average. Measured reproduces ordering and shape.",
        "fig9" => "Paper: IdentifierRecall increases with naturalness level for all 5 LLMs; differences visible per level with 95% CIs.",
        "fig10" => "Paper: QueryRecall equal-or-better at higher naturalness; open-source models and GPT-3.5 most sensitive; ≈20% drop Regular/Low → Least consistent across models.",
        "fig11" => "Paper: NTSB (low naturalness) improves Native→Regular for all models; PILB (natural) needs no renaming; SBOD (least natural) gains the most from Native→Regular; Least always degrades.",
        "fig12" => "Paper: subsetting recall/precision/F1 vary by naturalness for both workflows; the CodeS finetuned filter is the more sensitive, DIN-SQL less pronounced but present at Least.",
        "fig30" => "Paper: databases with native combined < 0.69 improve when modified to Regular; databases above it perform best Native. Measured grid reproduces both regimes.",
        "tau-tables" | "stats" => "Paper: τ(combined, recall) +0.11..+0.29, τ(Least, recall) -0.13..-0.31, τ(TCR, recall) -0.13..-0.27, τ(combined, exec) +0.05..+0.20 — all p<0.001; weakest for Gemini, strongest for Phind/CodeS. Measured reproduces signs, significance, and the model-sensitivity ordering.",
        "naming-patterns" => "Paper (§6): whitespace appears in <1% of identifiers (808 SchemaPile columns, 63 tables; 148 in SNAILS) and gets hallucinated into snake/camel case; 700+ SchemaPile identifiers embed the word `table`, which some LLMs drop.",
        "f1-precision" => "Paper (appendix F.2): F1/precision track recall but sit lower because tolerated extra columns are penalized; recall is the primary linking metric.",
        "fig48-51" => "Paper (appendix I): per-database box plots of linking scores across naturalness levels — medians shift down as naturalness falls, with wider spread for the weaker models.",
        "ablation" => "Not in the paper: validates the simulation design (DESIGN.md). Disabling class-dependent token decoding (uniform-decode) must erase the naturalness effect; the other components shift levels without creating the effect.",
        "fig13" => "Paper: on renamed Spider, effects are most significant between Low and Least; performance at high naturalness resembles similarly-natural SNAILS schemas.",
        _ => "",
    }
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    let mut out = String::new();

    writeln!(
        out,
        "# SNAILS experiment reproduction\n\nGenerated by `cargo run --release \
         --bin experiments`{}; global seed {}.\n\nEvery section reproduces a table \
         or figure of \"SNAILS: Schema Naming Assessments for Improved LLM-Based \
         SQL Inference\" (SIGMOD 2025). Absolute values come from the simulated \
         substrate (see DESIGN.md); the paper-matching claims are about shape: \
         orderings, sensitivity gaps, correlation signs and significance.\n",
        if args.quick { " (--quick)" } else { "" },
        args.seed
    )
    .unwrap();

    // ---- Collection ---------------------------------------------------------
    eprintln!("[{:>7.1?}] building database collection...", started.elapsed());
    let names: Vec<&str> = if args.quick {
        vec!["CWO", "PILB", "NTSB"]
    } else {
        snails_data::DATABASE_NAMES.to_vec()
    };
    let collection: Vec<SnailsDatabase> =
        names.iter().map(|n| snails_data::build_database(n)).collect();

    // ---- Dataset-level sections --------------------------------------------
    let section = |key: &str, name: &str, body: String, out: &mut String| {
        writeln!(out, "\n## {name}\n\n```text\n{}```", body).unwrap();
        let note = paper_note(key);
        if !note.is_empty() {
            writeln!(out, "\n> {note}").unwrap();
        }
        eprintln!("[{:>7.1?}] {name} done", started.elapsed());
    };

    if wants(&args, "table1") {
        section("table1", "Table 1 — example identifiers", ds::table1(), &mut out);
    }
    if wants(&args, "fig2") {
        section("fig2", "Figure 2 — mean token-in-dictionary", ds::figure2(), &mut out);
    }
    if wants(&args, "table2") {
        section("table2", "Table 2 — database schemas", ds::table2(&collection), &mut out);
    }
    if wants(&args, "table3") {
        section("table3", "Table 3 — gold query clause counts", ds::table3(&collection), &mut out);
    }
    if wants(&args, "table4") && !args.quick {
        let sbod = collection
            .iter()
            .find(|d| d.spec.name == "SBOD")
            .expect("SBOD present in full runs");
        section("table4", "Table 4 — SBOD modules", ds::table4(sbod), &mut out);
    }
    if wants(&args, "fig5") {
        section("fig5", "Figure 5 — per-database naturalness", ds::figure5(&collection), &mut out);
    }
    if wants(&args, "fig3") {
        section("fig3", "Figure 3 — collection comparison", ds::figure3(&collection), &mut out);
    }
    if wants(&args, "table5") {
        section("table5", "Table 5 — classifier comparison", ds::table5(), &mut out);
    }
    if wants(&args, "schemapile") {
        section("schemapile", "§2.2 — SchemaPile statistics", ds::schemapile_report(), &mut out);
    }
    if wants(&args, "fig26") {
        section("fig26", "Figure 26 — character counts", ds::figure26(), &mut out);
    }
    if wants(&args, "fig27") {
        section("fig27", "Figure 27 — token counts", ds::figure27(), &mut out);
    }
    if wants(&args, "fig28") {
        section("fig28", "Figure 28 — token-to-character ratio", ds::figure28(), &mut out);
    }
    if wants(&args, "modifiers") {
        section("modifiers", "Appendix C — modifier quality", ds::modifier_report(), &mut out);
    }
    if wants(&args, "naming-patterns") {
        section(
            "naming-patterns",
            "§6 — other naming patterns",
            ds::naming_patterns_report(&collection),
            &mut out,
        );
    }

    // ---- Benchmark run ------------------------------------------------------
    let needs_run = [
        "fig8", "fig9", "fig10", "fig11", "fig12", "fig30", "tau-tables", "stats",
        "f1-precision", "fig48-51",
    ]
        .iter()
        .any(|s| wants(&args, s));
    let mut run: Option<BenchmarkRun> = None;
    if needs_run {
        eprintln!("[{:>7.1?}] running the NL-to-SQL benchmark...", started.elapsed());
        let config = BenchmarkConfig {
            seed: args.seed,
            databases: names.iter().map(|s| s.to_string()).collect(),
            variants: SchemaVariant::ALL.to_vec(),
            workflows: Workflow::all(),
            threads: args.threads,
            fault_profile: args.fault_profile,
            telemetry: args.telemetry.is_some(),
            shard: args.shard,
            checkpoint: args.ckpt.as_ref().map(CheckpointSpec::at),
            ..Default::default()
        };
        let r = run_benchmark_on(&collection, &config);
        eprintln!(
            "[{:>7.1?}] benchmark complete: {} inferences",
            started.elapsed(),
            r.records.len()
        );
        if let Some(stats) = r.checkpoint {
            eprintln!(
                "[{:>7.1?}] checkpoint {}: {} restored, {} recomputed, {} corrupt, {} written",
                started.elapsed(),
                config.shard.label(),
                stats.hits,
                stats.misses,
                stats.corrupt,
                stats.written
            );
        }
        if let (Some(path), Some(report)) = (&args.telemetry, &r.telemetry) {
            std::fs::write(path, report.to_json()).expect("write telemetry report");
            eprintln!(
                "[{:>7.1?}] wrote telemetry report {path} (plan-cache hit rate {})",
                started.elapsed(),
                report
                    .plan_cache_hit_rate()
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "n/a".into())
            );
        }
        if !args.fault_profile.is_inert() {
            // JSON line so fault runs can be diffed/asserted by scripts.
            eprintln!(
                "{{\"fault_profile\":\"{}\",\"summary\":{}}}",
                args.fault_profile.name,
                r.faults.to_json()
            );
        }
        run = Some(r);
    }

    if let Some(run) = &run {
        if wants(&args, "fig8") {
            section("fig8", "Figure 8 — execution accuracy", rf::figure8(run), &mut out);
        }
        if wants(&args, "fig9") {
            section("fig9", "Figure 9 — identifier recall", rf::figure9(run, &collection), &mut out);
        }
        if wants(&args, "fig10") {
            section("fig10", "Figure 10 — query recall", rf::figure10(run), &mut out);
        }
        if wants(&args, "fig11") {
            let drill: Vec<&str> = ["NTSB", "PILB", "SBOD"]
                .into_iter()
                .filter(|d| names.contains(d))
                .collect();
            section("fig11", "Figure 11 — drill-down", rf::figure11(run, &drill), &mut out);
        }
        if wants(&args, "fig12") {
            section("fig12", "Figure 12 — schema subsetting", rf::figure12(run), &mut out);
        }
        if wants(&args, "f1-precision") {
            section(
                "f1-precision",
                "Appendix F.2 — F1 and precision",
                rf::figure_f1_precision(run),
                &mut out,
            );
        }
        if wants(&args, "fig30") {
            section("fig30", "Figure 30 — per-database accuracy", rf::figure30(run, &collection), &mut out);
        }
        if wants(&args, "fig48-51") {
            let drill: Vec<&str> = ["CWO", "NTSB", "NYSED", "PILB"]
                .into_iter()
                .filter(|d| names.contains(d))
                .collect();
            section(
                "fig48-51",
                "Figures 48–51 — per-database recall distributions",
                rf::figures_48_51(run, &drill),
                &mut out,
            );
        }
        if wants(&args, "tau-tables") || wants(&args, "stats") {
            section(
                "tau-tables",
                "Figures 31a–47b — Kendall-Tau tables",
                rf::all_tau_tables(run),
                &mut out,
            );
        }
    }

    // ---- Ablations (design-choice validation) --------------------------------
    if wants(&args, "ablation") {
        eprintln!("[{:>7.1?}] running the ablation study...", started.elapsed());
        let db = collection
            .iter()
            .find(|d| d.spec.name == "CWO")
            .expect("CWO in every run");
        let mut body = String::new();
        for model in [snails_llm::ModelKind::Gpt4o, snails_llm::ModelKind::Gpt35] {
            body.push_str(&snails_core::ablation::ablation_report(db, model, args.seed));
            body.push('\n');
        }
        section("ablation", "Ablation — simulation design choices", body, &mut out);
    }

    // ---- Spider (Figure 13) -------------------------------------------------
    if wants(&args, "fig13") {
        eprintln!("[{:>7.1?}] running the Spider-sim benchmark...", started.elapsed());
        let spider = snails_data::spider::build_spider();
        let config = BenchmarkConfig {
            seed: args.seed,
            databases: spider.iter().map(|d| d.spec.name.to_string()).collect(),
            variants: SchemaVariant::ALL.to_vec(),
            workflows: Workflow::all(),
            threads: args.threads,
            fault_profile: args.fault_profile,
            ..Default::default()
        };
        let spider_run = run_benchmark_on(&spider, &config);
        section("fig13", "Figure 13 — Spider-sim renaming", rf::figure13(&spider_run), &mut out);
    }

    writeln!(out, "\nTotal generation time: {:?}.", started.elapsed()).unwrap();
    println!("{out}");
    if args.write {
        std::fs::write("EXPERIMENTS.md", &out).expect("write EXPERIMENTS.md");
        eprintln!("[{:>7.1?}] wrote EXPERIMENTS.md", started.elapsed());
    }
}
